//! Interaction-delay prediction — the paper's Section 7 extension: predict
//! the server-side processing delay of a colocated game, not just its frame
//! rate.
//!
//! ```text
//! cargo run --release --example delay_prediction
//! ```

use gaugur::core::delay::{measure_delays, DelayModel};
use gaugur::core::{plan_colocations, Algorithm, Profiler, ProfilingConfig};
use gaugur::prelude::*;

fn main() {
    let server = Server::reference(23);
    let catalog = GameCatalog::generate(42, 16);

    println!("profiling and measuring a delay campaign …");
    let profiles = ProfileStore::new(
        Profiler::new(ProfilingConfig::default()).profile_catalog(&server, &catalog),
    );
    let plan = ColocationPlan {
        pairs: 150,
        triples: 40,
        quads: 20,
        seed: 8,
    };
    let measured = measure_delays(&server, &catalog, &plan_colocations(&catalog, &plan));
    let model = DelayModel::train(&profiles, &measured, Algorithm::GradientBoosting, 0);

    let res = Resolution::Fhd1080;
    let target = (catalog[0].id, res);
    println!(
        "\npredicted processing delay for {:?} at {res}:",
        catalog[0].name
    );
    for n in 0..=3 {
        let others: Vec<Placement> = (1..=n).map(|i| (catalog[i].id, res)).collect();
        let delay = model.predict_delay_ms(&profiles, target, &others);
        println!("  with {n} co-located game(s): {delay:.1} ms per input");
    }
}
