//! Quickstart: build GAugur end-to-end on a simulated testbed and predict
//! the performance of a colocation *before* placing it — then verify
//! against what actually happens.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gaugur::prelude::*;

fn main() {
    // The simulated cloud-gaming server (the stand-in for the paper's
    // i7-7700 + GTX 1060 testbed) and a catalog of 20 games.
    let server = Server::reference(7);
    let catalog = GameCatalog::generate(42, 20);

    // Offline phase (run once): profile every game against the seven
    // pressure microbenchmarks, measure a campaign of real colocations, and
    // train the classification + regression models.
    println!("profiling {} games and training models …", catalog.len());
    let config = GAugurConfig {
        plan: ColocationPlan {
            pairs: 250,
            triples: 60,
            quads: 30,
            seed: 1,
        },
        ..GAugurConfig::default()
    };
    let gaugur = GAugur::build(&server, &catalog, config);

    // Online phase: a player requests "Borderland2" at 1080p. Which of two
    // candidate servers should host them?
    let res = Resolution::Fhd1080;
    let game = catalog.by_name("Borderland2").expect("in catalog");
    let candidate_a = [
        (catalog.by_name("Candle").expect("in catalog").id, res),
        (catalog.by_name("BlubBlub").expect("in catalog").id, res),
    ];
    let candidate_b = [(
        catalog
            .by_name("ARK Survival Evolved")
            .expect("in catalog")
            .id,
        res,
    )];

    for (label, others) in [
        ("A (two indie games)", &candidate_a[..]),
        ("B (one AAA)", &candidate_b[..]),
    ] {
        let fps = gaugur.predict_fps((game.id, res), others);
        let ok = gaugur.predict_qos(60.0, (game.id, res), others);
        println!(
            "server {label}: predicted {fps:.0} FPS for {} → QoS 60 {}",
            game.name,
            if ok { "SATISFIED" } else { "VIOLATED" }
        );

        // Verify against the simulator's ground truth.
        let mut workloads = vec![Workload::game(game, res)];
        for &(id, r) in others {
            workloads.push(Workload::game(catalog.get(id).expect("id"), r));
        }
        let actual = server
            .measure_colocation(&workloads)
            .game_fps(0)
            .expect("game fps");
        println!("                  actual    {actual:.0} FPS");
    }
}
