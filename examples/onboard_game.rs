//! Onboarding a new game: the profiling workflow an operator runs once per
//! title (the paper's Section 3.2–3.3), printing the game's full contention
//! profile — sensitivity curves, intensities and the resolution models.
//!
//! ```text
//! cargo run --release --example onboard_game
//! cargo run --release --example onboard_game -- "Far Cry 4"
//! ```

use gaugur::core::{Profiler, ProfilingConfig};
use gaugur::prelude::*;
use gaugur_gamesim::ALL_RESOURCES;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Rise of The Tomb Raider".to_string());

    let server = Server::reference(17);
    let catalog = GameCatalog::generate(42, 100);
    let game = catalog
        .by_name(&name)
        .unwrap_or_else(|| panic!("{name:?} is not in the catalog"));

    println!("profiling {:?} ({}) …\n", game.name, game.genre);
    let profiler = Profiler::new(ProfilingConfig::default());
    let profile = profiler.profile_game(&server, game);

    println!("sensitivity curves (FPS retention at pressure 0.0 … 1.0):");
    for r in ALL_RESOURCES {
        let curve = profile.sensitivity_for(r);
        let cells: Vec<String> = curve.samples.iter().map(|v| format!("{v:.2}")).collect();
        println!("  {:>8}: {}", r.short_name(), cells.join(" "));
    }

    println!("\nintensity (pressure exerted on each resource's benchmark):");
    for res in [Resolution::Hd720, Resolution::Fhd1080, Resolution::Qhd1440] {
        let i = profile.intensity_at(res);
        let cells: Vec<String> = ALL_RESOURCES
            .iter()
            .map(|&r| format!("{}={:.2}", r.short_name(), i[r]))
            .collect();
        println!("  {:>6}: {}", res.label(), cells.join(" "));
    }

    println!("\nEq. 2 solo-FPS model (fitted from two profiled resolutions):");
    for res in [
        Resolution::Hd720,
        Resolution::Hd900,
        Resolution::Fhd1080,
        Resolution::Qhd1440,
    ] {
        println!(
            "  {:>6}: predicted {:.0} FPS, measured {:.0} FPS",
            res.label(),
            profile.solo_fps_at(res),
            server.measure_solo_fps(game, res)
        );
    }
}
