//! Fixed-fleet performance maximization (the paper's Section 5.2 problem):
//! with a given number of servers, place requests so the average measured
//! frame rate is as high as possible.
//!
//! ```text
//! cargo run --release --example max_performance
//! ```

use gaugur::prelude::*;

fn main() {
    let server = Server::reference(13);
    let catalog = GameCatalog::generate(42, 24);

    println!("building GAugur and the baselines …");
    let config = GAugurConfig {
        plan: ColocationPlan {
            pairs: 150,
            triples: 40,
            quads: 20,
            seed: 4,
        },
        ..GAugurConfig::default()
    };
    let gaugur = GAugur::build(&server, &catalog, config);
    let vbp = VbpPolicy::from_catalog(&catalog);

    let res = Resolution::Fhd1080;
    let ids: Vec<GameId> = catalog.games().iter().take(8).map(|g| g.id).collect();
    let stream = random_requests(&ids, 600, 5).as_request_stream(6);

    for n_servers in [200usize, 300, 400] {
        // Interference-aware greedy (GAugur RM predictions).
        let smart = assign_max_fps(&GaugurRm(&gaugur), res, &stream, n_servers);
        let smart_eval = evaluate_cluster(&server, &catalog, &smart.servers, res);

        // Interference-blind worst-fit (VBP).
        let blind = assign_worst_fit(&vbp, res, &stream, n_servers);
        let blind_eval = evaluate_cluster(&server, &catalog, &blind.servers, res);

        println!(
            "{n_servers} servers: GAugur(RM) {:.1} FPS vs VBP worst-fit {:.1} FPS  (+{:.1}%)",
            smart_eval.average_fps(),
            blind_eval.average_fps(),
            (smart_eval.average_fps() / blind_eval.average_fps() - 1.0) * 100.0
        );
    }
}
