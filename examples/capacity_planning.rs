//! Capacity planning (the paper's Section 5.1 problem): how many servers
//! does a provider need to serve a request mix with a 60-FPS guarantee?
//!
//! Compares interference-aware packing (GAugur CM driving Algorithm 1)
//! against the interference-blind VBP baseline and against dedicating a
//! server to every request.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use gaugur::prelude::*;
use gaugur::sched::VbpJudge;

fn main() {
    let server = Server::reference(11);
    let catalog = GameCatalog::generate(42, 24);

    println!("building GAugur (profile + train) …");
    let config = GAugurConfig {
        plan: ColocationPlan {
            pairs: 150,
            triples: 40,
            quads: 20,
            seed: 2,
        },
        ..GAugurConfig::default()
    };
    let gaugur = GAugur::build(&server, &catalog, config);
    let vbp = VbpPolicy::from_catalog(&catalog);

    // Eight games the provider offers (all QoS-servable alone — a game that
    // cannot reach 60 FPS even on a dedicated server cannot be offered with
    // a 60-FPS guarantee), and 800 outstanding requests.
    let res = Resolution::Fhd1080;
    let ids: Vec<GameId> = catalog
        .games()
        .iter()
        .filter(|g| gaugur.profiles.get(g.id).solo_fps_at(res) > 75.0)
        .take(8)
        .map(|g| g.id)
        .collect();
    let requests = random_requests(&ids, 800, 3);

    // Measure the ground truth for every candidate colocation of ≤ 4 games
    // (the evaluation oracle — a real provider would trust the predictions).
    println!("measuring the {}-colocation ground-truth table …", 162);
    let table = ColocationTable::measure(&server, &catalog, &ids, res, 4);

    let qos = 60.0;
    for (name, report) in [
        (
            "GAugur(CM) + Algorithm 1",
            FeasibilityReport::build(&table, &GaugurCm(&gaugur), qos),
        ),
        (
            "VBP + Algorithm 1",
            FeasibilityReport::build(&table, &VbpJudge(&vbp), qos),
        ),
    ] {
        let packed = pack_requests(&table, &report.usable, &requests);
        let eval = evaluate_cluster(&server, &catalog, &packed.servers, res);
        println!(
            "{name:<26} {} servers ({} usable colocations, precision {:.0}%), \
             measured QoS satisfaction {:.1}%",
            packed.server_count(),
            report.usable.len(),
            report.confusion.precision() * 100.0,
            eval.qos_satisfaction(qos) * 100.0
        );
    }
    println!(
        "{:<26} {} servers (100% QoS)",
        "no colocation",
        requests.total()
    );
}
