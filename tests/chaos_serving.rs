//! Seeded chaos suite against the live serving stack: N scenarios, each a
//! pure function of its seed, drive a faulted daemon through connection
//! drops, torn and corrupt frames, stalls, oversized floods and failing
//! reloads — then the invariant oracles (stats conservation, no leaked
//! placements, monotone model version, byte-identical fault-free replay)
//! must all hold, and re-running a seed must reproduce the identical event
//! sequence and verdict.

mod common;

use gaugur::prelude::*;
use gaugur::serve::chaos::{run_scenario, run_suite, ChaosConfig};
use std::path::PathBuf;
use std::sync::OnceLock;

const SCENARIOS: u64 = 24;

/// The shared model artifact, persisted once per test binary.
fn artifact() -> PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("gaugur-chaos-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        common::gaugur().save_json(&path).unwrap();
        path
    })
    .clone()
}

fn games() -> Vec<GameId> {
    common::fixture()
        .catalog
        .games()
        .iter()
        .map(|g| g.id)
        .collect()
}

#[test]
fn every_seeded_scenario_passes_all_oracles() {
    let base = ChaosConfig::for_seed(0, artifact(), games());
    let reports = run_suite(&base, SCENARIOS);
    assert_eq!(reports.len() as u64, SCENARIOS);

    let mut failures = Vec::new();
    let mut kinds = std::collections::BTreeSet::new();
    let (mut confirmed, mut lost) = (0u64, 0u64);
    let (mut retrains, mut outcomes) = (0u64, 0u64);
    let mut dump_bytes = 0usize;
    for report in &reports {
        if !report.passed() {
            failures.push(format!("{report}"));
        }
        // Byte-identity of the flight-recorder dump between the faulted run
        // and its fault-free replay is an oracle inside run_scenario; a
        // divergence would land in violations and fail above. Here we only
        // check the dumps carried real events across the suite.
        dump_bytes += report.recorder_dump.len();
        confirmed += report.confirmed;
        lost += report.lost_requests + report.lost_replies;
        retrains += report.retrains_ok + report.retrains_failed;
        outcomes += report.outcomes_accepted;
        for event in &report.events {
            kinds.insert(format!("{:?}", event.action));
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {SCENARIOS} scenarios failed:\n{}",
        failures.len(),
        failures.join("\n")
    );

    // The suite exercised recovery, not just the happy path: work got done
    // *and* faults actually fired, covering every injection kind.
    assert!(confirmed > 0, "no placement survived any scenario");
    assert!(
        dump_bytes > 0,
        "no scenario produced a flight-recorder dump"
    );
    assert!(lost > 0, "no fault ever fired across {SCENARIOS} seeds");
    assert!(
        retrains > 0,
        "no retrain ever settled across {SCENARIOS} seeds"
    );
    assert!(
        outcomes > 0,
        "no outcome report was ever accepted across {SCENARIOS} seeds"
    );
    for kind in [
        "DropConnection",
        "TornFrame",
        "CorruptFrame",
        "StalledFrame",
        "OversizedFrame",
        "FailReload",
        "FailRetrain",
        "None",
    ] {
        assert!(kinds.contains(kind), "suite never drew {kind}: {kinds:?}");
    }
    assert!(
        kinds.iter().any(|k| k.starts_with("Stall(")),
        "suite never drew a reply stall: {kinds:?}"
    );
}

#[test]
fn rerunning_a_seed_reproduces_the_event_sequence_and_verdict() {
    for seed in [3u64, 11, 17] {
        let config = ChaosConfig::for_seed(seed, artifact(), games());
        let a = run_scenario(&config);
        let b = run_scenario(&config);
        assert!(a.passed(), "seed {seed} failed: {:?}", a.violations);
        assert_eq!(
            a.events, b.events,
            "seed {seed}: fault schedule changed between runs"
        );
        assert_eq!(
            a.decision_digest, b.decision_digest,
            "seed {seed}: placement decisions changed between runs"
        );
        assert_eq!(
            a.digest(),
            b.digest(),
            "seed {seed}: report digest changed between runs"
        );
        assert_eq!(a.passed(), b.passed(), "seed {seed}: verdict flipped");
    }
}
