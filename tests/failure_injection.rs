//! Failure injection: the pipeline must stay sane under hostile conditions —
//! heavy measurement noise, tiny catalogs, tiny training campaigns, and
//! degenerate colocations.

mod common;

use gaugur::core::{measure_colocations, plan_colocations};
use gaugur::prelude::*;

#[test]
fn heavy_measurement_noise_degrades_but_does_not_break() {
    let mut server = Server::reference(31);
    server.noise_sigma = 0.10; // ~7× the reference jitter
    let catalog = GameCatalog::generate(42, 10);
    let config = GAugurConfig {
        plan: ColocationPlan {
            pairs: 60,
            triples: 15,
            quads: 10,
            seed: 2,
        },
        ..GAugurConfig::default()
    };
    let gaugur = GAugur::build(&server, &catalog, config);
    let res = Resolution::Fhd1080;
    let d = gaugur.predict_degradation((catalog[0].id, res), &[(catalog[1].id, res)]);
    assert!((0.01..=1.05).contains(&d));
}

#[test]
fn tiny_training_campaign_still_produces_a_predictor() {
    let server = Server::reference(32);
    let catalog = GameCatalog::generate(42, 6);
    let config = GAugurConfig {
        plan: ColocationPlan {
            pairs: 5,
            triples: 1,
            quads: 1,
            seed: 3,
        },
        ..GAugurConfig::default()
    };
    let gaugur = GAugur::build(&server, &catalog, config);
    let res = Resolution::Hd720;
    let fps = gaugur.predict_fps((catalog[2].id, res), &[(catalog[3].id, res)]);
    assert!(fps.is_finite() && fps > 0.0);
}

#[test]
fn two_game_catalog_profiles_and_trains() {
    let server = Server::reference(33);
    let catalog = GameCatalog::generate(42, 2);
    let profiles = ProfileStore::new(
        Profiler::new(ProfilingConfig::default()).profile_catalog(&server, &catalog),
    );
    assert_eq!(profiles.len(), 2);
    // Only one possible pair; measure it a few times and train.
    let plan = ColocationPlan {
        pairs: 8,
        triples: 0,
        quads: 0,
        seed: 4,
    };
    let measured = measure_colocations(&server, &catalog, &plan_colocations(&catalog, &plan));
    assert_eq!(measured.len(), 8);
    let gaugur = GAugur::from_measurements(profiles, &measured, GAugurConfig::default());
    let res = Resolution::Fhd1080;
    let d = gaugur.predict_degradation((catalog[0].id, res), &[(catalog[1].id, res)]);
    assert!((0.01..=1.05).contains(&d));
}

#[test]
fn empty_corunner_set_predicts_no_interference_bound() {
    let f = common::fixture();
    let g = common::gaugur();
    let res = Resolution::Fhd1080;
    // With nobody else on the server the RM is extrapolating, but the
    // prediction must remain a valid ratio and the QoS guard must respect
    // the solo ceiling.
    let t = (f.catalog[0].id, res);
    let d = g.predict_degradation(t, &[]);
    assert!((0.01..=1.05).contains(&d));
    let solo = f.profiles.get(t.0).solo_fps_at(t.1);
    assert!(!g.predict_qos(solo + 1.0, t, &[]));
}

/// Hot reload racing a faulted client burst must never serve a prediction
/// from mixed old/new model state: every reply tagged with model version
/// `v` must match what the model installed as `v` — and only that model —
/// computes in-process, even while another connection floods the daemon
/// with corrupt and oversized frames.
#[test]
fn hot_reload_under_chaos_never_serves_mixed_model_state() {
    use gaugur::serve::daemon;
    use gaugur::serve::wire::{read_frame, write_frame, Request, Response};
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;
    use std::time::Duration;

    let server = Server::reference(51);
    let catalog = GameCatalog::generate(42, 6);
    let build = |seed: u64| {
        GAugur::build(
            &server,
            &catalog,
            GAugurConfig {
                plan: ColocationPlan {
                    pairs: 24,
                    triples: 6,
                    quads: 3,
                    seed,
                },
                ..GAugurConfig::default()
            },
        )
    };
    let model_a = build(3);
    let model_b = build(9);

    let probe = (catalog[0].id, Resolution::Fhd1080);
    let others = [
        (catalog[1].id, Resolution::Fhd1080),
        (catalog[2].id, Resolution::Hd720),
    ];
    let exp_a = model_a.predict_fps(probe, &others);
    let exp_b = model_b.predict_fps(probe, &others);
    assert!(
        (exp_a - exp_b).abs() > 1e-6,
        "fixture models must disagree on the probe ({exp_a} vs {exp_b})"
    );

    let dir = std::env::temp_dir().join(format!("gaugur-reload-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path_a = dir.join("a.json");
    let path_b = dir.join("b.json");
    model_a.save_json(&path_a).unwrap();
    model_b.save_json(&path_b).unwrap();

    let handle = daemon::start(
        DaemonConfig {
            n_servers: 4,
            workers: 8,
            max_frame_len: 4096,
            print_stats_on_shutdown: false,
            ..Default::default()
        },
        ModelHandle::load(&path_a).unwrap(),
    )
    .unwrap();
    let addr = handle.local_addr();

    const RELOADS: u64 = 8;
    let samples: Vec<Vec<(u64, f64)>> = std::thread::scope(|scope| {
        // Predict burst: three connections hammer the same probe and tag
        // each answer with the version the daemon claims produced it.
        let predictors: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut seen = Vec::with_capacity(80);
                    for _ in 0..80 {
                        let p = client
                            .predict(probe.0, probe.1, &others, 60.0)
                            .expect("predict under reload chaos");
                        seen.push((p.model_version, p.fps));
                    }
                    seen
                })
            })
            .collect();

        // Garbage burst: corrupt payloads (connection survives) and
        // oversized headers (connection is cut) interleaved with the
        // predict traffic and the reloads.
        let garbage = scope.spawn(move || {
            for _ in 0..25 {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(5)))
                    .unwrap();
                stream.write_all(&8u32.to_be_bytes()).unwrap();
                stream.write_all(&[0xFF; 8]).unwrap();
                match read_frame::<_, Response>(&mut stream).unwrap() {
                    Response::Error { .. } => {}
                    other => panic!("corrupt frame answered {other:?}"),
                }
                // The stream resynchronized: a real request still works.
                write_frame(&mut stream, &Request::Stats).unwrap();
                assert!(matches!(
                    read_frame::<_, Response>(&mut stream).unwrap(),
                    Response::Stats(_)
                ));
                stream.write_all(&4097u32.to_be_bytes()).unwrap();
                match read_frame::<_, Response>(&mut stream).unwrap() {
                    Response::Error { .. } => {}
                    other => panic!("oversized frame answered {other:?}"),
                }
                let mut buf = [0u8; 8];
                assert_eq!(stream.read(&mut buf).unwrap(), 0);
            }
        });

        // Meanwhile: alternate the served artifact B, A, B, A, ...
        let mut admin = Client::connect(addr).unwrap();
        for i in 0..RELOADS {
            std::thread::sleep(Duration::from_millis(8));
            let path = if i % 2 == 0 { &path_b } else { &path_a };
            let v = admin.reload(Some(path.to_str().unwrap())).unwrap();
            assert_eq!(v, i + 2, "reloads are sequential, versions dense");
        }
        garbage.join().unwrap();
        predictors.into_iter().map(|p| p.join().unwrap()).collect()
    });

    // Version v was installed by a known reload: v=1 is A, then B and A
    // alternate. Every sampled answer must match that model exactly — a
    // value between exp_a and exp_b (or A's answer tagged with B's
    // version) would mean a prediction straddled a reload.
    for (version, fps) in samples.into_iter().flatten() {
        assert!(
            (1..=1 + RELOADS).contains(&version),
            "impossible version {version}"
        );
        let expected = if version % 2 == 1 { exp_a } else { exp_b };
        assert!(
            (fps - expected).abs() < 1e-9,
            "version {version} answered {fps}, want {expected} (A={exp_a}, B={exp_b})"
        );
    }

    let stats = handle.shutdown();
    assert_eq!(stats.malformed_frames, 50, "25 corrupt + 25 oversized");
    assert_eq!(stats.model_version, 1 + RELOADS);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversubscribed_server_is_measured_not_rejected() {
    let server = Server::noiseless(34);
    let catalog = GameCatalog::generate(42, 100);
    // Pile up eight AAA games — far beyond memory capacity.
    let heavy: Vec<Workload<'_>> = catalog
        .games()
        .iter()
        .filter(|g| g.genre == Genre::AaaOpenWorld)
        .take(8)
        .map(|g| Workload::game(g, Resolution::Qhd1440))
        .collect();
    assert!(heavy.len() >= 4);
    let out = server.measure_colocation(&heavy);
    assert!(out.converged);
    for i in 0..heavy.len() {
        let fps = out.game_fps(i).unwrap();
        assert!(fps.is_finite() && fps > 0.0 && fps < 60.0);
    }
}
