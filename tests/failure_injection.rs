//! Failure injection: the pipeline must stay sane under hostile conditions —
//! heavy measurement noise, tiny catalogs, tiny training campaigns, and
//! degenerate colocations.

mod common;

use gaugur::core::{measure_colocations, plan_colocations};
use gaugur::prelude::*;

#[test]
fn heavy_measurement_noise_degrades_but_does_not_break() {
    let mut server = Server::reference(31);
    server.noise_sigma = 0.10; // ~7× the reference jitter
    let catalog = GameCatalog::generate(42, 10);
    let config = GAugurConfig {
        plan: ColocationPlan {
            pairs: 60,
            triples: 15,
            quads: 10,
            seed: 2,
        },
        ..GAugurConfig::default()
    };
    let gaugur = GAugur::build(&server, &catalog, config);
    let res = Resolution::Fhd1080;
    let d = gaugur.predict_degradation((catalog[0].id, res), &[(catalog[1].id, res)]);
    assert!((0.01..=1.05).contains(&d));
}

#[test]
fn tiny_training_campaign_still_produces_a_predictor() {
    let server = Server::reference(32);
    let catalog = GameCatalog::generate(42, 6);
    let config = GAugurConfig {
        plan: ColocationPlan {
            pairs: 5,
            triples: 1,
            quads: 1,
            seed: 3,
        },
        ..GAugurConfig::default()
    };
    let gaugur = GAugur::build(&server, &catalog, config);
    let res = Resolution::Hd720;
    let fps = gaugur.predict_fps((catalog[2].id, res), &[(catalog[3].id, res)]);
    assert!(fps.is_finite() && fps > 0.0);
}

#[test]
fn two_game_catalog_profiles_and_trains() {
    let server = Server::reference(33);
    let catalog = GameCatalog::generate(42, 2);
    let profiles = ProfileStore::new(
        Profiler::new(ProfilingConfig::default()).profile_catalog(&server, &catalog),
    );
    assert_eq!(profiles.len(), 2);
    // Only one possible pair; measure it a few times and train.
    let plan = ColocationPlan {
        pairs: 8,
        triples: 0,
        quads: 0,
        seed: 4,
    };
    let measured = measure_colocations(&server, &catalog, &plan_colocations(&catalog, &plan));
    assert_eq!(measured.len(), 8);
    let gaugur = GAugur::from_measurements(profiles, &measured, GAugurConfig::default());
    let res = Resolution::Fhd1080;
    let d = gaugur.predict_degradation((catalog[0].id, res), &[(catalog[1].id, res)]);
    assert!((0.01..=1.05).contains(&d));
}

#[test]
fn empty_corunner_set_predicts_no_interference_bound() {
    let f = common::fixture();
    let g = common::gaugur();
    let res = Resolution::Fhd1080;
    // With nobody else on the server the RM is extrapolating, but the
    // prediction must remain a valid ratio and the QoS guard must respect
    // the solo ceiling.
    let t = (f.catalog[0].id, res);
    let d = g.predict_degradation(t, &[]);
    assert!((0.01..=1.05).contains(&d));
    let solo = f.profiles.get(t.0).solo_fps_at(t.1);
    assert!(!g.predict_qos(solo + 1.0, t, &[]));
}

#[test]
fn oversubscribed_server_is_measured_not_rejected() {
    let server = Server::noiseless(34);
    let catalog = GameCatalog::generate(42, 100);
    // Pile up eight AAA games — far beyond memory capacity.
    let heavy: Vec<Workload<'_>> = catalog
        .games()
        .iter()
        .filter(|g| g.genre == Genre::AaaOpenWorld)
        .take(8)
        .map(|g| Workload::game(g, Resolution::Qhd1440))
        .collect();
    assert!(heavy.len() >= 4);
    let out = server.measure_colocation(&heavy);
    assert!(out.converged);
    for i in 0..heavy.len() {
        let fps = out.game_fps(i).unwrap();
        assert!(fps.is_finite() && fps > 0.0 && fps < 60.0);
    }
}
