//! Shared fixtures for the cross-crate integration tests: a small profiled
//! catalog plus a measured colocation campaign, built once per test binary.

use gaugur::core::{measure_colocations, plan_colocations, MeasuredColocation};
use gaugur::prelude::*;
use std::sync::OnceLock;

/// A small but complete experiment fixture.
///
/// Not every test binary touches every field, so dead-code analysis (which
/// runs per binary) is silenced here.
#[allow(dead_code)]
pub struct Fixture {
    pub server: Server,
    pub catalog: GameCatalog,
    pub profiles: ProfileStore,
    pub train: Vec<MeasuredColocation>,
    pub test: Vec<MeasuredColocation>,
}

/// Build (once) a 16-game fixture with a 220-colocation campaign.
pub fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let server = Server::reference(101);
        let catalog = GameCatalog::generate(42, 16);
        let profiles = ProfileStore::new(
            Profiler::new(ProfilingConfig::default()).profile_catalog(&server, &catalog),
        );
        let plan = ColocationPlan {
            pairs: 150,
            triples: 40,
            quads: 30,
            seed: 9,
        };
        let mut measured =
            measure_colocations(&server, &catalog, &plan_colocations(&catalog, &plan));
        // Deterministic split that mixes sizes in both halves.
        let test = measured
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 4 == 0)
            .map(|(_, m)| m.clone())
            .collect();
        let mut i = 0;
        measured.retain(|_| {
            let keep = i % 4 != 0;
            i += 1;
            keep
        });
        Fixture {
            server,
            catalog,
            profiles,
            train: measured,
            test,
        }
    })
}

/// The (cached) GAugur predictor trained on the fixture. Training gradient
/// ensembles is seconds of work, so property tests must share one instance.
#[allow(dead_code)]
pub fn gaugur() -> &'static GAugur {
    static GAUGUR: OnceLock<GAugur> = OnceLock::new();
    GAUGUR.get_or_init(|| {
        let f = fixture();
        GAugur::from_measurements(f.profiles.clone(), &f.train, GAugurConfig::default())
    })
}
