//! End-to-end integration: profile → train → predict, asserting the
//! paper-level quality bars on held-out colocations.

mod common;

use common::{fixture, gaugur};
use gaugur::baselines::{InterferencePredictor, SigmoidPredictor, SmitePredictor};
use gaugur::core::Placement;

/// Per-member held-out records: (target, others, actual degradation,
/// actual fps, solo fps).
fn records() -> Vec<(Placement, Vec<Placement>, f64, f64, f64)> {
    let f = fixture();
    let mut out = Vec::new();
    for m in &f.test {
        for (i, &(id, res)) in m.members.iter().enumerate() {
            let others: Vec<Placement> = m
                .members
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &p)| p)
                .collect();
            let solo = f.profiles.get(id).solo_fps_at(res);
            out.push((
                (id, res),
                others,
                (m.fps[i] / solo).clamp(0.01, 1.2),
                m.fps[i],
                solo,
            ));
        }
    }
    out
}

#[test]
fn rm_beats_both_baselines_on_held_out_colocations() {
    let f = fixture();
    let g = gaugur();
    let sigmoid = SigmoidPredictor::train(f.profiles.clone(), &f.train);
    let smite = SmitePredictor::train(f.profiles.clone(), &f.train);

    let recs = records();
    let err = |pred: &dyn Fn(Placement, &[Placement]) -> f64| -> f64 {
        let es: Vec<f64> = recs
            .iter()
            .map(|(t, o, d, _, _)| (pred(*t, o) - d).abs() / d)
            .collect();
        es.iter().sum::<f64>() / es.len() as f64
    };

    let e_gaugur = err(&|t, o| g.predict_degradation(t, o));
    let e_sigmoid = err(&|t, o| sigmoid.predict_degradation(t, o));
    let e_smite = err(&|t, o| smite.predict_degradation(t, o));

    assert!(e_gaugur < 0.20, "GAugur(RM) error too high: {e_gaugur}");
    assert!(
        e_gaugur < e_sigmoid,
        "GAugur {e_gaugur} should beat Sigmoid {e_sigmoid}"
    );
    assert!(
        e_gaugur < e_smite,
        "GAugur {e_gaugur} should beat SMiTe {e_smite}"
    );
}

#[test]
fn cm_classifies_held_out_qos_accurately() {
    let g = gaugur();
    let recs = records();
    let qos = 60.0;
    let correct = recs
        .iter()
        .filter(|(t, o, _, fps, _)| g.predict_qos(qos, *t, o) == (*fps >= qos))
        .count();
    let acc = correct as f64 / recs.len() as f64;
    assert!(acc > 0.85, "CM accuracy too low: {acc}");
}

#[test]
fn predicted_fps_tracks_actual_fps() {
    let g = gaugur();
    let recs = records();
    // Rank correlation proxy: predictions and actuals should agree on
    // pairwise ordering most of the time.
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in (0..recs.len()).step_by(7) {
        for j in (i + 1..recs.len()).step_by(11) {
            let (ti, oi, _, fi, _) = &recs[i];
            let (tj, oj, _, fj, _) = &recs[j];
            if (fi - fj).abs() < 5.0 {
                continue;
            }
            let pi = g.predict_fps(*ti, oi);
            let pj = g.predict_fps(*tj, oj);
            agree += usize::from((pi > pj) == (fi > fj));
            total += 1;
        }
    }
    let rate = agree as f64 / total.max(1) as f64;
    assert!(
        rate > 0.85,
        "ordering agreement too low: {rate} ({total} pairs)"
    );
}

#[test]
fn whole_predictor_serializes_and_roundtrips() {
    let g = gaugur();
    let f = fixture();
    let json = serde_json::to_string(&g).expect("serialize GAugur");
    let back: gaugur::core::GAugur = serde_json::from_str(&json).expect("deserialize GAugur");
    let res = gaugur::gamesim::Resolution::Fhd1080;
    let t = (f.catalog[0].id, res);
    let o = [(f.catalog[1].id, res)];
    assert_eq!(
        g.predict_degradation(t, &o),
        back.predict_degradation(t, &o)
    );
    assert_eq!(g.predict_qos(60.0, t, &o), back.predict_qos(60.0, t, &o));
}
