//! Facade-level serving test: train through `gaugur::prelude`, persist the
//! artifact, serve it from the daemon, and drive it over real TCP — the
//! full offline→online loop an operator would run.

mod common;

use gaugur::prelude::*;
use gaugur::serve::{daemon, load};

#[test]
fn offline_build_serves_online_placements() {
    let model = common::gaugur().clone();
    let games: Vec<GameId> = common::fixture()
        .catalog
        .games()
        .iter()
        .map(|g| g.id)
        .collect();

    // Persist and reload through the artifact, exactly like `gaugur build`
    // followed by `gaugur serve`.
    let dir = std::env::temp_dir().join(format!("gaugur-facade-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let artifact = dir.join("model.json");
    model.save_json(&artifact).unwrap();

    let handle = daemon::start(
        DaemonConfig {
            n_servers: 8,
            print_stats_on_shutdown: false,
            ..Default::default()
        },
        ModelHandle::load(&artifact).unwrap(),
    )
    .unwrap();
    let addr = handle.local_addr();

    // A placement's predicted FPS must agree with the in-process model.
    let mut client = Client::connect(addr).unwrap();
    let placed = client.place(games[0], Resolution::Fhd1080).unwrap();
    let solo = model
        .profiles
        .get(games[0])
        .solo_fps_at(Resolution::Fhd1080);
    assert!(
        (placed.predicted_fps - solo).abs() < 1e-9,
        "first placement on an empty fleet is solo: {} vs {}",
        placed.predicted_fps,
        solo
    );
    let second = client.place(games[1], Resolution::Fhd1080).unwrap();
    let expected = model.predict_fps(
        (games[1], Resolution::Fhd1080),
        &[(games[0], Resolution::Fhd1080)],
    );
    if second.server == placed.server {
        assert!((second.predicted_fps - expected).abs() < 1e-9);
    }
    client.depart(placed.session).unwrap();
    client.depart(second.session).unwrap();

    // A short driver run through the same daemon ends fully reconciled.
    let report = load::run(&LoadConfig {
        addr: addr.to_string(),
        seed: 5,
        connections: 2,
        requests: 100,
        rate: f64::INFINITY,
        mean_session_arrivals: 5.0,
        games,
        resolutions: vec![Resolution::Hd720, Resolution::Fhd1080],
        qos: 60.0,
        batch: 1,
        report_outcomes: false,
        observe_noise: 0.0,
        drift: 1.0,
        verify_trace: true,
        expect_shards: Some(1),
        // Scrape the SLO engine after the run (Ok = no minimum severity
        // demanded; the state itself is asserted below).
        expect_slo: Some(gaugur::serve::AlertState::Ok),
    });
    assert_eq!(report.errors, 0);
    assert_eq!(report.placed + report.rejected, 100);
    assert_eq!(report.placed, report.departed);
    assert!(report.traced_requests > 0);
    assert_eq!(
        report.trace_violation, None,
        "per-stage accounting must reconcile after a drained run"
    );
    assert_eq!(
        report.shard_violation, None,
        "a default daemon is one shard and conserves its sessions"
    );
    assert_eq!(report.slo_violation, None);
    assert!(
        report.slo_state.is_some(),
        "the post-run scrape must record the fleet alert state"
    );

    let stats = client.stats().unwrap();
    assert_eq!(stats.active_sessions, 0);
    assert!(stats.cache_hit_rate() > 0.0);

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
