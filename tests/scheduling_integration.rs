//! Scheduling integration: the full Section 5 loop — judge feasibility,
//! pack requests, place on a fleet, and verify the measured outcome.

mod common;

use common::{fixture, gaugur};
use gaugur::prelude::*;

fn servable_games(n: usize) -> Vec<GameId> {
    let f = fixture();
    f.catalog
        .games()
        .iter()
        .filter(|g| f.profiles.get(g.id).solo_fps_at(Resolution::Fhd1080) > 75.0)
        .take(n)
        .map(|g| g.id)
        .collect()
}

#[test]
fn algorithm1_packing_preserves_qos_on_remeasurement() {
    let f = fixture();
    let g = gaugur();
    let ids = servable_games(6);
    assert!(ids.len() >= 4, "fixture needs enough servable games");
    let table = ColocationTable::measure(&f.server, &f.catalog, &ids, Resolution::Fhd1080, 4);
    let report = FeasibilityReport::build(&table, &GaugurCm(g), 60.0);
    let requests = random_requests(&ids, 300, 5);
    let packed = pack_requests(&table, &report.usable, &requests);

    // Every request is served exactly once.
    let mut served = std::collections::HashMap::new();
    for s in &packed.servers {
        for &game in s {
            *served.entry(game).or_insert(0usize) += 1;
        }
    }
    for id in &ids {
        assert_eq!(served.get(id).copied().unwrap_or(0), requests.get(*id));
    }

    // TP-only packing must hold QoS when the cluster is re-measured (the
    // fixture server is deterministic, so TP sets re-measure identically;
    // fallback singletons are the only permitted violations).
    let eval = evaluate_cluster(&f.server, &f.catalog, &packed.servers, Resolution::Fhd1080);
    let violations = eval.fps.iter().filter(|&&v| v < 60.0).count();
    assert!(
        violations <= packed.fallback_servers,
        "{violations} violations > {} fallbacks",
        packed.fallback_servers
    );
}

#[test]
fn interference_aware_assignment_beats_blind_worst_fit() {
    let f = fixture();
    let g = gaugur();
    let vbp = VbpPolicy::from_catalog(&f.catalog);
    let ids = servable_games(8);
    let stream = random_requests(&ids, 400, 6).as_request_stream(7);

    let smart = assign_max_fps(&GaugurRm(g), Resolution::Fhd1080, &stream, 150);
    let blind = assign_worst_fit(&vbp, Resolution::Fhd1080, &stream, 150);
    let smart_eval = evaluate_cluster(&f.server, &f.catalog, &smart.servers, Resolution::Fhd1080);
    let blind_eval = evaluate_cluster(&f.server, &f.catalog, &blind.servers, Resolution::Fhd1080);

    assert_eq!(smart.unplaced, 0);
    assert_eq!(blind.unplaced, 0);
    assert!(
        smart_eval.average_fps() > blind_eval.average_fps(),
        "GAugur {:.1} should beat VBP {:.1}",
        smart_eval.average_fps(),
        blind_eval.average_fps()
    );
}

#[test]
fn colocation_always_beats_dedicated_servers_on_count() {
    let f = fixture();
    let g = gaugur();
    let ids = servable_games(6);
    let table = ColocationTable::measure(&f.server, &f.catalog, &ids, Resolution::Fhd1080, 4);
    let report = FeasibilityReport::build(&table, &GaugurCm(g), 60.0);
    let requests = random_requests(&ids, 300, 8);
    let packed = pack_requests(&table, &report.usable, &requests);
    assert!(
        packed.server_count() < requests.total(),
        "colocation should use fewer than {} servers, used {}",
        requests.total(),
        packed.server_count()
    );
}

#[test]
fn feasibility_reports_are_internally_consistent() {
    let f = fixture();
    let g = gaugur();
    let ids = servable_games(6);
    let table = ColocationTable::measure(&f.server, &f.catalog, &ids, Resolution::Fhd1080, 4);
    for qos in [50.0, 60.0] {
        let report = FeasibilityReport::build(&table, &GaugurCm(g), qos);
        let c = report.confusion;
        assert_eq!(c.total(), table.len());
        assert_eq!(report.predicted_feasible.len(), c.tp + c.fp);
        assert_eq!(report.usable.len(), c.tp);
        // Usable ⊆ predicted-feasible ∩ actually-feasible.
        for &i in &report.usable {
            assert!(report.predicted_feasible.contains(&i));
            assert!(table.actually_feasible(i, qos));
        }
    }
}

#[test]
fn dynamic_stream_interference_aware_policy_is_competitive() {
    use gaugur::sched::{simulate_dynamic, DynamicConfig, Policy};
    let f = fixture();
    let g = gaugur();
    let games = servable_games(8);
    let config = DynamicConfig {
        n_servers: 15,
        arrival_rate: 0.15,
        mean_session_seconds: 400.0,
        duration_seconds: 2000.0,
        qos: 60.0,
        seed: 12,
    };
    let rm = GaugurRm(g);
    let smart = simulate_dynamic(
        &f.server,
        &f.catalog,
        &games,
        Resolution::Fhd1080,
        &Policy::MaxPredictedFps(&rm),
        &config,
    );
    let naive = simulate_dynamic(
        &f.server,
        &f.catalog,
        &games,
        Resolution::Fhd1080,
        &Policy::FirstFit,
        &config,
    );
    assert!(smart.sessions_served > 0);
    // Interference-aware placement must not lose to blind first-fit on the
    // metric it optimizes.
    assert!(
        smart.mean_fps >= naive.mean_fps * 0.98,
        "GAugur {:.1} vs first-fit {:.1}",
        smart.mean_fps,
        naive.mean_fps
    );
}
