//! Cross-crate property tests: invariants that must hold for *any* input,
//! checked with proptest over the fixture's games.

mod common;

use common::{fixture, gaugur};
use gaugur::core::Placement;
use gaugur::prelude::*;
use proptest::prelude::*;

fn res_from(i: u8) -> Resolution {
    match i % 4 {
        0 => Resolution::Hd720,
        1 => Resolution::Hd900,
        2 => Resolution::Fhd1080,
        _ => Resolution::Qhd1440,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Predictions must not depend on the order co-runners are listed in
    /// (the Eq. 5 aggregate is symmetric by construction).
    #[test]
    fn prediction_is_corunner_permutation_invariant(
        target in 0usize..16,
        mut others in proptest::collection::vec((0usize..16, 0u8..4), 1..4),
    ) {
        let f = fixture();
        let g = gaugur();
        others.retain(|(i, _)| *i != target);
        prop_assume!(!others.is_empty());
        let t: Placement = (f.catalog[target].id, Resolution::Fhd1080);
        let fwd: Vec<Placement> = others.iter().map(|&(i, r)| (f.catalog[i].id, res_from(r))).collect();
        let mut rev = fwd.clone();
        rev.reverse();
        prop_assert_eq!(g.predict_degradation(t, &fwd), g.predict_degradation(t, &rev));
        prop_assert_eq!(g.predict_qos(60.0, t, &fwd), g.predict_qos(60.0, t, &rev));
    }

    /// Degradation predictions are always physically valid ratios and FPS
    /// predictions finite and positive.
    #[test]
    fn predictions_are_physically_valid(
        target in 0usize..16,
        others in proptest::collection::vec((0usize..16, 0u8..4), 0..5),
        tres in 0u8..4,
    ) {
        let f = fixture();
        let g = gaugur();
        let t: Placement = (f.catalog[target].id, res_from(tres));
        let os: Vec<Placement> = others
            .iter()
            .filter(|(i, _)| *i != target)
            .map(|&(i, r)| (f.catalog[i].id, res_from(r)))
            .collect();
        let d = g.predict_degradation(t, &os);
        prop_assert!((0.01..=1.05).contains(&d), "degradation {d}");
        let fps = g.predict_fps(t, &os);
        prop_assert!(fps.is_finite() && fps > 0.0);
    }

    /// An impossible QoS bar is never judged satisfiable; a trivial one
    /// never judged unsatisfiable.
    #[test]
    fn qos_extremes_are_respected(
        target in 0usize..16,
        other in 0usize..16,
    ) {
        prop_assume!(target != other);
        let f = fixture();
        let g = gaugur();
        let res = Resolution::Fhd1080;
        let t: Placement = (f.catalog[target].id, res);
        let os = [(f.catalog[other].id, res)];
        prop_assert!(!g.predict_qos(100_000.0, t, &os));
        prop_assert!(g.predict_qos(0.1, t, &os) || g.predict_fps(t, &os) < 0.1);
    }

    /// With a single shard the daemon must reproduce the classic
    /// single-lock placement loop bit for bit: same accept/reject stream,
    /// same server choices, same predicted-FPS bits, same departed-server
    /// replies and same score-cache hit/miss counts, for any interleaving
    /// of places and departs. This pins the `shards = 1` fast path to the
    /// pre-sharding semantics.
    #[test]
    fn single_shard_daemon_is_bit_identical_to_single_lock_reference(
        ops in proptest::collection::vec((any::<bool>(), 0usize..16, 0u8..4, 0usize..64), 1..40),
    ) {
        use gaugur::sched::{select_server_incremental_with, PlacementScratch, ScoreCache};
        use gaugur::serve::model::{LoadedModel, MemoizedFps, PredictionMemo};
        use gaugur::serve::{daemon, ClientError, ClusterState};

        let f = fixture();
        let g = gaugur();
        const N_SERVERS: usize = 3;
        const QOS: f64 = 60.0;

        // The pre-refactor reference: one occupancy map, one score cache,
        // driven inline — exactly what the daemon did under its global lock.
        let model = LoadedModel {
            gaugur: g.clone(),
            version: 1,
            source: std::path::PathBuf::from("<reference>"),
        };
        let memo = PredictionMemo::new(1 << 16);
        let fps_model = MemoizedFps { model: &model, memo: &memo, qos: QOS };
        let mut cluster = ClusterState::new(N_SERVERS);
        let mut scores = ScoreCache::new(N_SERVERS);
        let mut scratch = PlacementScratch::new();

        let handle = daemon::start(
            DaemonConfig {
                n_servers: N_SERVERS,
                shards: 1,
                workers: 1,
                qos: QOS,
                print_stats_on_shutdown: false,
                ..Default::default()
            },
            ModelHandle::from_model(g.clone()),
        )
        .unwrap();
        let mut client = Client::connect(handle.local_addr()).unwrap();

        let mut live: Vec<u64> = Vec::new();
        for &(is_place, gi, ri, pick) in &ops {
            if is_place || live.is_empty() {
                let placement: Placement = (f.catalog[gi].id, res_from(ri));
                let sel = select_server_incremental_with(
                    &cluster, placement, &fps_model, model.version, &mut scores, &mut scratch,
                );
                match sel {
                    Some(sel) => {
                        let (prediction, _) = memo.predict_with(
                            &model, QOS, placement, cluster.members(sel.server),
                            &mut scratch.predict,
                        );
                        let session = cluster.admit(sel.server, placement);
                        let placed = client.place(placement.0, placement.1).unwrap();
                        prop_assert_eq!(placed.session, session);
                        prop_assert_eq!(placed.server, sel.server);
                        prop_assert_eq!(
                            placed.predicted_fps.to_bits(),
                            prediction.fps.to_bits(),
                            "predicted FPS diverged: daemon {} vs reference {}",
                            placed.predicted_fps,
                            prediction.fps
                        );
                        live.push(session);
                    }
                    None => {
                        let reply = client.place(placement.0, placement.1);
                        prop_assert!(
                            matches!(reply, Err(ClientError::Rejected { .. })),
                            "reference rejected but daemon replied {reply:?}"
                        );
                    }
                }
            } else {
                let id = live.swap_remove(pick % live.len());
                let placed = cluster.depart(id).expect("reference owns every live id");
                scores.invalidate(placed.server);
                let server = client.depart(id).unwrap();
                prop_assert_eq!(server, placed.server);
            }
        }

        let stats = client.stats().unwrap();
        let (hits, misses) = scores.counts();
        prop_assert_eq!(stats.score_hits, hits);
        prop_assert_eq!(stats.score_misses, misses);
        prop_assert_eq!(stats.active_sessions, live.len() as u64);
        prop_assert_eq!(stats.shards, 1);
        prop_assert_eq!(stats.place_admit_retries, 0);
        prop_assert_eq!(stats.place_admit_fallbacks, 0);
        handle.shutdown();
    }

    /// The simulator degrades (never improves) games under added load, and
    /// measurement is deterministic.
    #[test]
    fn simulator_is_monotone_and_deterministic(
        a in 0usize..16,
        b in 0usize..16,
        c in 0usize..16,
    ) {
        prop_assume!(a != b && b != c && a != c);
        let f = fixture();
        let res = Resolution::Fhd1080;
        let ga = &f.catalog[a];
        let gb = &f.catalog[b];
        let gc = &f.catalog[c];
        let noiseless = Server::noiseless(f.server.seed);
        let solo = noiseless.measure_solo_fps(ga, res);
        let pair = noiseless
            .measure_colocation(&[Workload::game(ga, res), Workload::game(gb, res)])
            .game_fps(0)
            .unwrap();
        let triple = noiseless
            .measure_colocation(&[
                Workload::game(ga, res),
                Workload::game(gb, res),
                Workload::game(gc, res),
            ])
            .game_fps(0)
            .unwrap();
        prop_assert!(pair <= solo + 1e-9, "pair {pair} > solo {solo}");
        prop_assert!(triple <= pair + 1e-9, "triple {triple} > pair {pair}");

        let again = noiseless
            .measure_colocation(&[Workload::game(ga, res), Workload::game(gb, res)])
            .game_fps(0)
            .unwrap();
        prop_assert_eq!(pair, again);
    }
}
