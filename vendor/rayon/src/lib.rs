//! Offline sequential shim for the `rayon` API surface this workspace uses.
//!
//! The build container cannot fetch crates, so `par_iter`/`into_par_iter`
//! are provided as thin wrappers returning the corresponding *sequential*
//! standard iterators. Every adapter the callers chain (`map`, `filter`,
//! `collect`, `sum`, …) is then the ordinary `Iterator` machinery. This
//! trades parallel speedup for zero dependencies; call sites stay 100%
//! source-compatible, and determinism actually improves (no nondeterministic
//! reduction order).

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude::*`.

    /// `.par_iter()` on slices and vectors.
    pub trait IntoParallelRefIterator<'a> {
        /// The sequential iterator standing in for a parallel one.
        type Iter: Iterator;

        /// Sequential stand-in for rayon's `par_iter`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    /// `.par_iter_mut()` on slices and vectors.
    pub trait IntoParallelRefMutIterator<'a> {
        /// The sequential iterator standing in for a parallel one.
        type Iter: Iterator;

        /// Sequential stand-in for rayon's `par_iter_mut`.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// `.into_par_iter()` on owned collections and ranges.
    pub trait IntoParallelIterator {
        /// The sequential iterator standing in for a parallel one.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type.
        type Item;

        /// Sequential stand-in for rayon's `into_par_iter`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        type Item = T;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        type Item = usize;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    impl IntoParallelIterator for std::ops::Range<u32> {
        type Iter = std::ops::Range<u32>;
        type Item = u32;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    /// `.par_chunks()` on slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for rayon's `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `.par_chunks_mut()` on slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for rayon's `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let s: usize = (0..10usize).into_par_iter().sum();
        assert_eq!(s, 45);
    }
}
