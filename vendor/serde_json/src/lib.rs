//! Offline vendored `serde_json`: JSON text ⇄ the vendored serde data model.
//!
//! Hand-written recursive-descent parser and printer. Design points that
//! matter to this workspace:
//!
//! * **Round-trip fidelity** — floats are printed in Rust's shortest
//!   round-trip form, so `save_json` → `load_json` reproduces every `f64`
//!   bit-for-bit; integers (including `u64` beyond 2^53) are kept exact.
//! * **Hostile input safety** — the parser is fully iterative on bytes with
//!   an explicit nesting-depth cap, so arbitrary untrusted frames (the
//!   `gaugur-serve` daemon feeds network bytes straight in) return `Err`
//!   instead of panicking or blowing the stack.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{Read, Write};

/// Maximum nesting depth accepted by the parser. Deeper input is rejected
/// (matches serde_json's recursion limit in spirit).
pub const MAX_DEPTH: usize = 128;

/// JSON error (parse or data-model mismatch).
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.0)
    }
}

/// Result alias matching the real crate's signature shapes.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialize a value to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Serialize a value as compact JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("io error: {e}")))
}

/// Serialize a value as pretty JSON into a writer.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string_pretty(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("io error: {e}")))
}

/// Serialize straight to the `Value` tree (identity on the data model).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize())
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => out.push_str(&serde::format_float(*f)),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    Ok(T::deserialize(&value)?)
}

/// Deserialize a value from a reader (reads to end first).
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader
        .read_to_string(&mut buf)
        .map_err(|e| Error::new(format!("io error: {e}")))?;
    from_str(&buf)
}

/// Deserialize a value from a byte slice.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Parse JSON text into the raw data model.
pub fn parse_value_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(Error::new(format!(
                "expected {:?}, found {:?} at byte {}",
                b as char,
                got as char,
                self.pos - 1
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::new("nesting depth limit exceeded"));
        }
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => self.literal("null").map(|_| Value::Null),
            Some(b't') => self.literal("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Value::Seq(items)),
                        Some(other) => {
                            return Err(Error::new(format!(
                                "expected ',' or ']', found {:?} at byte {}",
                                other as char,
                                self.pos - 1
                            )))
                        }
                        None => return Err(Error::new("unexpected end of input in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Value::Map(entries)),
                        Some(other) => {
                            return Err(Error::new(format!(
                                "expected ',' or '}}', found {:?} at byte {}",
                                other as char,
                                self.pos - 1
                            )))
                        }
                        None => return Err(Error::new("unexpected end of input in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pair handling.
                        if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                            );
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(Error::new("unexpected low surrogate"));
                        } else {
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(Error::new("unescaped control character in string"))
                }
                Some(b) => {
                    // Re-decode UTF-8: walk back and take the full char.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if width == 0 || end > self.bytes.len() {
                        return Err(Error::new("invalid utf-8 in string"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .ok()
            .filter(|f| f.is_finite())
            .map(Value::Float)
            .ok_or_else(|| Error::new(format!("invalid number {text:?}")))
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(from_str::<f64>("-1.5").unwrap(), -1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(
            to_string(&"a\"b\\c\n".to_string()).unwrap(),
            r#""a\"b\\c\n""#
        );
        assert_eq!(from_str::<String>(r#""a\"b\\c\n""#).unwrap(), "a\"b\\c\n");
    }

    #[test]
    fn floats_roundtrip_bit_exact() {
        for f in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
        ] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} via {s}");
        }
    }

    #[test]
    fn integral_floats_keep_their_type_marker() {
        assert_eq!(to_string(&60.0f64).unwrap(), "60.0");
        assert_eq!(from_str::<f64>("60.0").unwrap(), 60.0);
    }

    #[test]
    fn big_u64_is_exact() {
        let big = u64::MAX - 1;
        let s = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), big);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>("[1, 2 ,3]").unwrap(), v);

        let m: std::collections::BTreeMap<String, f64> =
            [("a".to_string(), 1.5)].into_iter().collect();
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"a":1.5}"#);
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, f64>>(&s).unwrap(),
            m
        );
    }

    #[test]
    fn unicode_and_escapes() {
        assert_eq!(from_str::<String>(r#""\u00e9\u2603""#).unwrap(), "é☃");
        assert_eq!(from_str::<String>(r#""\ud83d\ude00""#).unwrap(), "😀");
        let s = to_string(&"héllo ☃".to_string()).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), "héllo ☃");
    }

    #[test]
    fn depth_limit_rejects_instead_of_overflowing() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(from_str::<serde::Value>(&deep).is_err());
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "01x",
            "\"\\q\"",
            "[1 2]",
            "{\"a\":1,}",
            "nul",
            "--1",
            "\u{7f}",
        ] {
            assert!(from_str::<serde::Value>(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u32], vec![2, 3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);
    }
}
