//! Offline vendored subset of the `rand` crate.
//!
//! The build container has no access to a crates.io mirror, so the
//! workspace vendors the thin slice of `rand`'s API it actually relies on:
//! [`RngCore`], [`SeedableRng`] (with the standard PCG32 `seed_from_u64`
//! expansion), the [`Rng`] extension methods (`gen`, `gen_range`,
//! `gen_bool`) and [`seq::SliceRandom::shuffle`]. Algorithms follow the
//! upstream documentation (53-bit float conversion, Fisher–Yates) but the
//! byte streams are only guaranteed stable *within* this workspace, which
//! is all the reproduction needs: every seed-derived quantity is compared
//! against values produced by the same vendored implementation.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit seed into a full seed with the PCG32 stream rand
    /// 0.8 documents for this method, so seeds mix well even when callers
    /// pass small integers.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
              usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits (the upstream convention).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample(rng); // [0, 1)
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { <$t>::max(self.start, self.end - (self.end - self.start) * 1e-9) } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$t as Standard>::sample(rng);
                // Stretch [0,1) to [0,1] so the top endpoint is reachable.
                let u = u * (1.0 + 1.0 / (1u64 << 53) as $t);
                (lo + u * (hi - lo)).clamp(lo, hi)
            }
        }
    )*};
}
range_float!(f64);

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = <f32 as Standard>::sample(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start.max(self.end - (self.end - self.start) * 1e-6)
        } else {
            v
        }
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        let u = <f32 as Standard>::sample(rng);
        // Stretch [0,1) to [0,1] so the top endpoint is reachable.
        let u = u * (1.0 + 1.0 / (1u32 << 24) as f32);
        (lo + u * (hi - lo)).clamp(lo, hi)
    }
}

/// Multiply-shift uniform draw in `[0, bound)`; `bound = 0` means the full
/// 64-bit domain. Lemire's method without the rejection step — the bias is
/// at most `bound / 2^64`, far below anything the simulator can resolve.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    if bound == 0 {
        return rng.next_u64();
    }
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// Extension methods every `RngCore` gets (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value uniformly over `T`'s standard domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p}");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence helpers (`SliceRandom`).

    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod rngs {
    //! Minimal `rngs` namespace for API parity.
}

/// Prelude in the spirit of `rand::prelude`.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Counter(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
