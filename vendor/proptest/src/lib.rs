//! Offline vendored `proptest`: the subset of the property-testing API this
//! workspace uses, backed by a deterministic RNG.
//!
//! Differences from upstream worth knowing:
//!
//! * **No shrinking** — a failing case reports the generated inputs via the
//!   assertion message but is not minimised.
//! * **Deterministic seeds** — each test's RNG is seeded from a hash of the
//!   test name, so failures reproduce exactly across runs.
//! * Strategies are plain generators (`Strategy::generate`), implemented for
//!   numeric ranges, tuples of strategies, `Just`, `any::<T>()`, and
//!   `collection::vec`.

pub mod test_runner {
    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections per accepted case.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Outcome of a single generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; the case is re-drawn.
        Reject(String),
        /// `prop_assert!`-style failure; aborts the whole test.
        Fail(String),
    }

    impl TestCaseError {
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Deterministic RNG for case generation (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }

    /// Drive `cases` accepted executions of `f`, panicking on the first
    /// failure. Called by the `proptest!` macro expansion.
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::from_name(name);
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        while accepted < config.cases {
            match f(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest '{name}': too many prop_assume! rejections \
                             ({rejected}) before reaching {} cases",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed at case {accepted}: {msg}");
                }
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;

    /// A value generator. Upstream proptest separates strategies from value
    /// trees (for shrinking); here a strategy just draws a value.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::{Rng, RngCore};

    /// Types with a canonical "whole domain" strategy, via `any::<T>()`.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite floats over a wide range; NaN/inf are not produced.
            let mag: f64 = rng.gen::<f64>() * 1e9;
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    /// Strategy wrapper returned by `any::<T>()`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty proptest size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declare property tests. Supports the upstream surface used here:
/// an optional `#![proptest_config(expr)]` header followed by `#[test]`
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                __outcome
            });
        }
    )*};
}

/// Assert within a proptest body; failure aborts the run with the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Assert inequality within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Filter a generated case; the runner redraws inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, f in 0.0f64..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn tuples_and_vecs(
            mut items in crate::collection::vec((0usize..16, 0u8..4), 1..5),
        ) {
            prop_assume!(!items.is_empty());
            items.sort();
            prop_assert!(items.len() < 5);
            for (a, b) in &items {
                prop_assert!(*a < 16 && *b < 4);
            }
        }

        #[test]
        fn any_bytes(b in any::<u8>()) {
            let _ = b;
            prop_assert_eq!(b as u16 + 1, b as u16 + 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut r1 = crate::test_runner::TestRng::from_name("seed");
        let mut r2 = crate::test_runner::TestRng::from_name("seed");
        let s = 0u64..1_000_000;
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
