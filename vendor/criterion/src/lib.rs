//! Offline vendored `criterion`: same API surface, much simpler engine.
//!
//! Each benchmark is timed with `std::time::Instant` over an adaptively
//! chosen iteration count (targets ~200 ms of measurement per benchmark,
//! bounded by `sample_size`), and a one-line summary (mean, min, max per
//! iteration) is printed. There is no statistical analysis, HTML report,
//! or baseline comparison — the numbers are honest wall-clock means,
//! which is what the workspace's throughput acceptance checks need.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-batch setup output is sized; only affects batch sizing here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_count: usize,
}

impl Bencher<'_> {
    /// Time `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up / calibration: find an iteration count that takes long
        // enough for the clock to resolve it well.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break elapsed / (iters as u32).max(1);
            }
            iters *= 4;
        };
        // Size each sample at ~total_budget / samples.
        let budget_per_sample = Duration::from_millis(200) / self.sample_count as u32;
        let sample_iters = if per_iter.is_zero() {
            iters
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
        };
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..sample_iters {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / (sample_iters as u32).max(1));
        }
    }

    /// Time `routine` on fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count {
            // One timed call per sample: batching exists upstream to amortise
            // clock overhead; the routines in this workspace are µs-scale or
            // larger, so per-call timing is adequate.
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{name:<50} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max)
    );
}

/// Benchmark registry/runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            sample_count: self.sample_size,
        });
        report(name, &samples);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            sample_count: self.sample_size,
        });
        report(&format!("{}/{}", self.name, id), &samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut samples = Vec::new();
        f(
            &mut Bencher {
                samples: &mut samples,
                sample_count: self.sample_size,
            },
            input,
        );
        report(&format!("{}/{}", self.name, id), &samples);
        self
    }

    pub fn finish(self) {}
}

/// Group benchmark functions under a single entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("f", |b| b.iter(|| black_box(2) * 2));
        g.bench_with_input(BenchmarkId::new("with", 7), &7u32, |b, &x| {
            b.iter_batched(|| x, |v| v + 1, BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
