//! Offline shim for `parking_lot` backed by `std::sync`.
//!
//! Provides the non-poisoning `Mutex`/`RwLock`/`Condvar` API this workspace
//! uses. Poisoning is translated into panics-on-propagation: a lock poisoned
//! by a panicking holder yields its inner data anyway (`into_inner` on the
//! poison error), matching parking_lot's semantics of not poisoning at all.

use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutual exclusion primitive (non-poisoning facade over `std`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard.
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// A reader–writer lock (non-poisoning facade over `std`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Result of a timed wait: did it time out?
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        guard.guard = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.guard = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        self.wait_for(guard, timeout)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = Arc::new(RwLock::new(0u64));
        {
            let _r1 = l.read();
            let _r2 = l.read();
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        h.join().unwrap();
        assert!(*done);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
