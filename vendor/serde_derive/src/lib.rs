//! Offline vendored `#[derive(Serialize, Deserialize)]`.
//!
//! The real `serde_derive` (and its `syn`/`quote` dependency tree) is not
//! available in this build container, so the derives are implemented
//! directly on `proc_macro::TokenStream`: a small hand-rolled parser
//! extracts the item's shape (field names / variant shapes — types are
//! never needed, trait dispatch handles them) and the impls are emitted as
//! source text following serde's standard data model:
//!
//! * named-field structs → maps keyed by field name;
//! * newtype structs → transparent (the inner value);
//! * tuple structs → sequences;
//! * enums → externally tagged (`"Unit"`, `{"Newtype": v}`,
//!   `{"Tuple": [..]}`, `{"Struct": {..}}`).
//!
//! Generic items are not supported (the workspace derives only on concrete
//! types); encountering one produces a compile error rather than bad code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of one enum variant.
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

/// Shape of the deriving item.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kw = ident_at(&tokens, i).ok_or("expected `struct` or `enum`")?;
    i += 1;
    let name = ident_at(&tokens, i).ok_or("expected item name")?;
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive (vendored) does not support generic type `{name}`"
        ));
    }

    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            _ => Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            _ => Err(format!("expected enum body for `{name}`")),
        },
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Advance past `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a `{ ... }` struct body. Types are skipped with
/// angle-bracket awareness so `HashMap<K, V>` commas don't split fields.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i).ok_or("expected field name")?;
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(fields)
}

/// Skip one type: everything until a top-level (angle-depth 0) comma.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Arity of a `( ... )` tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        arity += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i).ok_or("expected variant name")?;
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            while i < tokens.len()
                && !matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}",
                entries = entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::serialize(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(vec![{elems}])\n\
                     }}\n\
                 }}",
                elems = elems.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Map(vec![(::std::string::String::from({vn:?}), ::serde::Serialize::serialize(x0))])"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::serialize(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Map(vec![(::std::string::String::from({vn:?}), ::serde::Value::Seq(vec![{elems}]))])",
                                binds = binds.join(", "),
                                elems = elems.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::serialize({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(::std::string::String::from({vn:?}), ::serde::Value::Map(vec![{entries}]))])",
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}",
                arms = arms.join(",\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(v, {f:?}, {name:?})?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if v.as_map().is_none() {{\n\
                             return Err(::serde::Error::expected(\"map\", v, {name:?}));\n\
                         }}\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}",
                inits = inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::deserialize(v)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize(&seq[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let seq = v.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence\", v, {name:?}))?;\n\
                         if seq.len() != {arity} {{\n\
                             return Err(::serde::Error::custom(format!(\"expected {arity} elements for {name}, got {{}}\", seq.len())));\n\
                         }}\n\
                         Ok({name}({elems}))\n\
                     }}\n\
                 }}",
                elems = elems.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     match v {{\n\
                         ::serde::Value::Null => Ok({name}),\n\
                         other => Err(::serde::Error::expected(\"null\", other, {name:?})),\n\
                     }}\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("{vn:?} => Ok({name}::{vn})", vn = v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::deserialize(inner)?))"
                        )),
                        VariantShape::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::deserialize(&seq[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let seq = inner.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence\", inner, {name:?}))?;\n\
                                     if seq.len() != {n} {{\n\
                                         return Err(::serde::Error::custom(format!(\"variant {name}::{vn} expects {n} values, got {{}}\", seq.len())));\n\
                                     }}\n\
                                     Ok({name}::{vn}({elems}))\n\
                                 }}",
                                elems = elems.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(inner, {f:?}, {name:?})?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => Ok({name}::{vn} {{ {inits} }})",
                                inits = inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::Error::custom(format!(\"unknown variant {{other:?}} of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => Err(::serde::Error::custom(format!(\"unknown variant {{other:?}} of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::Error::expected(\"enum\", other, {name:?})),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                tagged_arms = if tagged_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", tagged_arms.join(",\n"))
                },
            )
        }
    }
}
