//! Offline vendored ChaCha-based RNG.
//!
//! Implements the genuine ChaCha stream cipher core (D. J. Bernstein) with
//! 8 double-rounds driving [`ChaCha8Rng`]. The keystream is deterministic
//! and platform-independent — exactly the property `gamesim::rng` relies
//! on — though it is not guaranteed to be byte-identical to the upstream
//! `rand_chacha` crate's stream (word ordering conventions differ between
//! implementations; this workspace only ever compares against itself).

use rand::{RngCore, SeedableRng};

/// One 64-byte ChaCha block with `DOUBLE_ROUNDS` double-rounds.
fn chacha_block(key: &[u32; 8], counter: u64, stream: u64, double_rounds: usize) -> [u32; 16] {
    // "expand 32-byte k"
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = stream as u32;
    state[15] = (stream >> 32) as u32;

    let mut x = state;
    #[inline(always)]
    fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }
    for _ in 0..double_rounds {
        // Column round.
        quarter(&mut x, 0, 4, 8, 12);
        quarter(&mut x, 1, 5, 9, 13);
        quarter(&mut x, 2, 6, 10, 14);
        quarter(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut x, 0, 5, 10, 15);
        quarter(&mut x, 1, 6, 11, 12);
        quarter(&mut x, 2, 7, 8, 13);
        quarter(&mut x, 3, 4, 9, 14);
    }
    for i in 0..16 {
        x[i] = x[i].wrapping_add(state[i]);
    }
    x
}

macro_rules! chacha_rng {
    ($name:ident, $double_rounds:expr, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            stream: u64,
            block: [u32; 16],
            /// Next word index within `block`; 16 means exhausted.
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.block = chacha_block(&self.key, self.counter, self.stream, $double_rounds);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> Self {
                let mut key = [0u32; 8];
                for (i, w) in key.iter_mut().enumerate() {
                    *w = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
                }
                $name {
                    key,
                    counter: 0,
                    stream: 0,
                    block: [0; 16],
                    index: 16,
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let w = self.block[self.index];
                self.index += 1;
                w
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 4, "ChaCha with 8 rounds (4 double-rounds).");
chacha_rng!(ChaCha12Rng, 6, "ChaCha with 12 rounds (6 double-rounds).");
chacha_rng!(ChaCha20Rng, 10, "ChaCha with 20 rounds (10 double-rounds).");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha20_matches_rfc7539_block_function_shape() {
        // RFC 7539 test vector 2.3.2: key 00..1f, counter 1, nonce
        // 00:00:00:09:00:00:00:4a:00:00:00:00 — our layout packs the
        // counter/stream differently (64/64 as rand_chacha does), so
        // instead of the full vector we check the core invariants: the
        // block function is deterministic and counter-sensitive.
        let key = [0u32; 8];
        let a = chacha_block(&key, 0, 0, 10);
        let b = chacha_block(&key, 0, 0, 10);
        let c = chacha_block(&key, 1, 0, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn streams_reproduce_and_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
