//! Offline vendored serde: a value-model serialization framework.
//!
//! The real `serde` is unavailable in this build container (no crates.io
//! access), so the workspace vendors a compatible-in-spirit replacement:
//! [`Serialize`] converts a value into a self-describing [`Value`] tree and
//! [`Deserialize`] reconstructs it. The derive macros (feature `derive`,
//! crate `serde_derive`) generate impls following serde's standard data
//! model: structs as maps, newtype structs transparently, enums externally
//! tagged (`"Unit"`, `{"Newtype": v}`, `{"Tuple": [..]}`,
//! `{"Struct": {..}}`). `serde_json` (also vendored) renders [`Value`]
//! to/from JSON text, so persisted artifacts look exactly like the real
//! stack's output.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the serde data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / `Option::None` / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (also covers unsigned values ≤ `i64::MAX`).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with string keys, preserving insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view (lossy for huge u64s, exact otherwise).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// Look up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// "expected X, found Y while reading T" constructor.
    pub fn expected(what: &str, found: &Value, ty: &str) -> Error {
        Error(format!(
            "expected {what}, found {} while reading {ty}",
            found.kind()
        ))
    }

    /// Free-form constructor.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be rendered into the serde data model.
pub trait Serialize {
    /// Convert `self` into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// A type that can be reconstructed from the serde data model.
pub trait Deserialize: Sized {
    /// Rebuild from a [`Value`] tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other, "bool")),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let ty = stringify!($t);
                let n: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("{u} out of range for {ty}")))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    // Map keys arrive as strings; accept digit strings.
                    Value::Str(s) => s
                        .parse::<i64>()
                        .map_err(|_| Error::expected("integer", v, ty))?,
                    other => return Err(Error::expected("integer", other, ty)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range for {ty}")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let u = *self as u64;
                if let Ok(i) = i64::try_from(u) { Value::Int(i) } else { Value::UInt(u) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let ty = stringify!($t);
                let n: u64 = match v {
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| Error::custom(format!("{i} is negative, not a {ty}")))?,
                    Value::UInt(u) => *u,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    Value::Str(s) => s
                        .parse::<u64>()
                        .map_err(|_| Error::expected("unsigned integer", v, ty))?,
                    other => return Err(Error::expected("unsigned integer", other, ty)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range for {ty}")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::expected("number", v, "f64"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(f64::deserialize(v)? as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other, "String")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::expected("string", v, "char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::expected("null", other, "()")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(t) => t.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let seq = v
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", v, "Vec"))?;
        seq.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$i.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::expected("sequence", v, "tuple"))?;
                let expect = [$($i,)+].len();
                if seq.len() != expect {
                    return Err(Error::custom(format!(
                        "expected tuple of length {expect}, got {}", seq.len()
                    )));
                }
                Ok(($($t::deserialize(&seq[$i])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// Render a serialized key as the string JSON maps require.
fn key_to_string(v: Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s),
        Value::Int(i) => Ok(i.to_string()),
        Value::UInt(u) => Ok(u.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        Value::Float(f) => Ok(format_float(f)),
        other => Err(Error::custom(format!(
            "map key must be scalar, got {}",
            other.kind()
        ))),
    }
}

/// Parse a map-key string back into a value a key type can deserialize.
fn key_value(k: &str) -> Value {
    Value::Str(k.to_string())
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        // Sort for output determinism: HashMap iteration order is random
        // per process, and persisted artifacts should be stable.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (
                    key_to_string(k.serialize()).expect("scalar map key"),
                    v.serialize(),
                )
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let m = v
            .as_map()
            .ok_or_else(|| Error::expected("map", v, "HashMap"))?;
        m.iter()
            .map(|(k, val)| Ok((K::deserialize(&key_value(k))?, V::deserialize(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_to_string(k.serialize()).expect("scalar map key"),
                        v.serialize(),
                    )
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let m = v
            .as_map()
            .ok_or_else(|| Error::expected("map", v, "BTreeMap"))?;
        m.iter()
            .map(|(k, val)| Ok((K::deserialize(&key_value(k))?, V::deserialize(val)?)))
            .collect()
    }
}

impl<T: Serialize + Eq + std::hash::Hash, S> Serialize for std::collections::HashSet<T, S> {
    fn serialize(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::serialize).collect();
        items.sort_by_key(|v| format!("{v:?}"));
        Value::Seq(items)
    }
}

impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let seq = v
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", v, "HashSet"))?;
        seq.iter().map(T::deserialize).collect()
    }
}

// ---------------------------------------------------------------------------
// Derive-support helpers (referenced by serde_derive-generated code)
// ---------------------------------------------------------------------------

/// Fetch and deserialize a struct field. A missing key is only legal for
/// types (like `Option`) that deserialize from `Null` — the same trick the
/// real serde uses for optional fields.
pub fn field<T: Deserialize>(map: &Value, name: &str, ty: &str) -> Result<T, Error> {
    match map.get(name) {
        Some(v) => T::deserialize(v).map_err(|e| Error(format!("field `{name}` of {ty}: {e}"))),
        None => T::deserialize(&Value::Null)
            .map_err(|_| Error(format!("missing field `{name}` of {ty}"))),
    }
}

/// Numeric formatting shared with `serde_json`: shortest round-trip form.
pub fn format_float(f: f64) -> String {
    if f.is_finite() {
        let s = format!("{f}");
        // `{}` omits the decimal point for integral floats; keep JSON
        // consumers honest about the type the way serde_json does.
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // JSON has no non-finite literals; serde_json writes null.
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::deserialize(&42u32.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn options_respect_null() {
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::deserialize(&Value::Int(3)).unwrap(), Some(3));
        assert_eq!(Some(3u32).serialize(), Value::Int(3));
        assert_eq!(None::<u32>.serialize(), Value::Null);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);

        let t = (1u32, 2.5f64);
        assert_eq!(<(u32, f64)>::deserialize(&t.serialize()).unwrap(), t);

        let mut m = HashMap::new();
        m.insert(7u32, "x".to_string());
        let back: HashMap<u32, String> = HashMap::deserialize(&m.serialize()).unwrap();
        assert_eq!(back, m);

        let a = [1.0f64, 2.0, 3.0];
        let back: [f64; 3] = <[f64; 3]>::deserialize(&a.serialize()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn large_u64_is_exact() {
        let big = u64::MAX - 3;
        assert_eq!(u64::deserialize(&big.serialize()).unwrap(), big);
    }

    #[test]
    fn missing_field_behaviour() {
        let obj = Value::Map(vec![("a".into(), Value::Int(1))]);
        assert_eq!(field::<u32>(&obj, "a", "T").unwrap(), 1);
        assert_eq!(field::<Option<u32>>(&obj, "b", "T").unwrap(), None);
        assert!(field::<u32>(&obj, "b", "T").is_err());
    }
}
