//! Non-additive aggregation of contention pressure across colocated
//! workloads.
//!
//! Observation 5 of the paper: *"Game intensity on the same shared resource
//! is not additive"* — the aggregate pressure that a set of colocated
//! workloads exerts on a resource can be smaller or larger than the sum of
//! their individual pressures (paper Figure 6). The direction depends on the
//! resource class:
//!
//! * **Cores** time-share: the probability that "someone else holds the unit"
//!   is `1 − Π(1 − pᵢ)`, which is *sub-additive*.
//! * **Bandwidth** adds up, but queueing delay blows up super-linearly once
//!   the link approaches saturation — *super-additive near the knee*.
//! * **Caches** share capacity: two working sets evict each other, so the
//!   effective footprint pressure follows an `L^q` norm with `q < 1`
//!   (*super-additive below saturation*, saturating at 1).

use crate::resource::{Resource, ResourceClass};
use serde::{Deserialize, Serialize};

/// How individual pressures on one resource combine into effective
/// contention.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Combiner {
    /// `1 − Π(1 − pᵢ)` — probabilistic busy-share for time-shared units.
    Probabilistic,
    /// Linear up to `knee`, then amplified by `amp`, clamped to `[0, 1]`.
    Queueing {
        /// Utilization at which queueing effects kick in (e.g. `0.65`).
        knee: f64,
        /// Amplification slope beyond the knee (e.g. `1.9`).
        amp: f64,
    },
    /// `min(1, (Σ pᵢ^q)^(1/q))` with `q < 1` — capacity competition.
    Capacity {
        /// Norm exponent in `(0, 1]`; smaller = more super-additive.
        q: f64,
    },
}

impl Combiner {
    /// The simulator's default combiner for each resource, by class.
    pub fn for_resource(r: Resource) -> Combiner {
        match r.class() {
            ResourceClass::Core => Combiner::Probabilistic,
            ResourceClass::Bandwidth => Combiner::Queueing {
                knee: 0.75,
                amp: 1.6,
            },
            ResourceClass::Cache => Combiner::Capacity { q: 0.85 },
        }
    }

    /// Combine a set of individual pressures (each in `[0, 1]`) into the
    /// effective contention level in `[0, 1]`.
    pub fn combine(&self, pressures: &[f64]) -> f64 {
        match *self {
            Combiner::Probabilistic => {
                let free: f64 = pressures.iter().map(|p| 1.0 - p.clamp(0.0, 1.0)).product();
                1.0 - free
            }
            Combiner::Queueing { knee, amp } => {
                let load: f64 = pressures.iter().map(|p| p.clamp(0.0, 1.0)).sum();
                let eff = if load <= knee {
                    load
                } else {
                    knee + (load - knee) * amp
                };
                eff.clamp(0.0, 1.0)
            }
            Combiner::Capacity { q } => {
                let s: f64 = pressures
                    .iter()
                    .map(|p| p.clamp(0.0, 1.0).powf(q))
                    .sum::<f64>();
                s.powf(1.0 / q).clamp(0.0, 1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_set_exerts_no_pressure() {
        for c in [
            Combiner::Probabilistic,
            Combiner::Queueing {
                knee: 0.65,
                amp: 1.9,
            },
            Combiner::Capacity { q: 0.85 },
        ] {
            assert_eq!(c.combine(&[]), 0.0);
        }
    }

    #[test]
    fn singleton_probabilistic_is_identity() {
        let c = Combiner::Probabilistic;
        for i in 0..=10 {
            let p = i as f64 / 10.0;
            assert!((c.combine(&[p]) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn singleton_queueing_below_knee_is_identity() {
        let c = Combiner::Queueing {
            knee: 0.65,
            amp: 1.9,
        };
        assert!((c.combine(&[0.4]) - 0.4).abs() < 1e-12);
        // Above the knee even a single workload is amplified.
        assert!(c.combine(&[0.8]) > 0.8);
    }

    #[test]
    fn probabilistic_is_sub_additive() {
        let c = Combiner::Probabilistic;
        let agg = c.combine(&[0.4, 0.4]);
        assert!(agg < 0.8, "expected sub-additive, got {agg}");
        assert!(agg > 0.4);
    }

    #[test]
    fn capacity_is_super_additive_below_saturation() {
        let c = Combiner::Capacity { q: 0.85 };
        let agg = c.combine(&[0.3, 0.3]);
        assert!(agg > 0.6, "expected super-additive, got {agg}");
        assert!(agg <= 1.0);
    }

    #[test]
    fn queueing_blows_up_past_knee() {
        let c = Combiner::Queueing {
            knee: 0.65,
            amp: 1.9,
        };
        let below = c.combine(&[0.3, 0.3]);
        assert!((below - 0.6).abs() < 1e-12, "additive below knee");
        let above = c.combine(&[0.45, 0.45]);
        assert!(above > 0.9, "super-additive past knee, got {above}");
    }

    #[test]
    fn capacity_singleton_is_identity() {
        let c = Combiner::Capacity { q: 0.85 };
        for i in 0..=10 {
            let p = i as f64 / 10.0;
            assert!((c.combine(&[p]) - p).abs() < 1e-9, "at {p}");
        }
    }

    proptest! {
        #[test]
        fn combine_is_bounded_and_monotone_in_each_pressure(
            mut ps in proptest::collection::vec(0.0f64..=1.0, 1..6),
            idx in 0usize..6,
            bump in 0.0f64..=0.3,
        ) {
            let idx = idx % ps.len();
            for c in [
                Combiner::Probabilistic,
                Combiner::Queueing { knee: 0.65, amp: 1.9 },
                Combiner::Capacity { q: 0.85 },
            ] {
                let before = c.combine(&ps);
                prop_assert!((0.0..=1.0).contains(&before));
                let old = ps[idx];
                ps[idx] = (ps[idx] + bump).min(1.0);
                let after = c.combine(&ps);
                ps[idx] = old;
                prop_assert!(after + 1e-12 >= before, "monotone violated for {c:?}");
            }
        }

        #[test]
        fn combine_is_permutation_invariant(ps in proptest::collection::vec(0.0f64..=1.0, 2..6)) {
            let mut rev = ps.clone();
            rev.reverse();
            for c in [
                Combiner::Probabilistic,
                Combiner::Queueing { knee: 0.65, amp: 1.9 },
                Combiner::Capacity { q: 0.85 },
            ] {
                prop_assert!((c.combine(&ps) - c.combine(&rev)).abs() < 1e-12);
            }
        }

        #[test]
        fn aggregate_at_least_max_individual(ps in proptest::collection::vec(0.0f64..=1.0, 1..6)) {
            let maxp = ps.iter().copied().fold(0.0_f64, f64::max);
            for c in [
                Combiner::Probabilistic,
                Combiner::Queueing { knee: 0.65, amp: 1.9 },
                Combiner::Capacity { q: 0.85 },
            ] {
                // Queueing can exceed 1 internally but is clamped; even so the
                // effective level never drops below any single contributor
                // (clamped to 1).
                prop_assert!(c.combine(&ps) + 1e-12 >= maxp.min(1.0), "{c:?}");
            }
        }
    }
}
