//! # gaugur-gamesim — the cloud-gaming server simulator substrate
//!
//! The GAugur paper (HPDC '19) measures real commercial games on a physical
//! i7-7700 / GTX 1060 server. That testbed is not reproducible in software, so
//! this crate implements the closest synthetic equivalent: a deterministic
//! simulator of a cloud-gaming server on which *synthetic games* and *pressure
//! microbenchmarks* can be colocated and measured, exposing exactly the same
//! observables the paper's methodology consumes:
//!
//! * per-game **frame rate** (solo and colocated, with measurement noise),
//! * per-benchmark **slowdown** under colocation,
//! * per-game solo **resource-demand vectors** (for the VBP baseline),
//! * tunable **pressure levels** on each of the seven shared resources.
//!
//! The contention physics deliberately reproduce the paper's qualitative
//! findings (Observations 1–8 of Section 3): games are sensitive to many
//! resources with diverse, *nonlinear* sensitivity shapes; intensity is *not
//! additive* across colocated workloads; resolution rescales GPU-side
//! intensity roughly linearly in pixel count while leaving sensitivity shapes
//! untouched; and a frame-pipeline `max(cpu, gpu) + transfer` coupling makes
//! interference non-separable across resources.
//!
//! Nothing outside this crate can observe a game's hidden ground truth — the
//! prediction stack (`gaugur-core`) only sees what a real profiling harness
//! would see, through [`Server::measure_colocation`].
//!
//! ## Quick example
//!
//! ```
//! use gaugur_gamesim::{GameCatalog, Server, Workload, Resolution};
//!
//! let catalog = GameCatalog::generate(42, 100);
//! let server = Server::reference(7);
//! let outcome = server.measure_colocation(&[
//!     Workload::game(&catalog[0], Resolution::Fhd1080),
//!     Workload::game(&catalog[1], Resolution::Fhd1080),
//! ]);
//! let fps = outcome.game_fps(0).unwrap();
//! assert!(fps > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bench;
pub mod catalog;
pub mod combine;
pub mod demand;
pub mod encode;
pub mod game;
pub mod genre;
pub mod hetero;
pub mod pipeline;
pub mod resource;
pub mod rng;
pub mod scene;
pub mod server;
pub mod shape;

pub use bench::Microbenchmark;
pub use catalog::GameCatalog;
pub use combine::Combiner;
pub use demand::DemandVector;
pub use encode::EncoderModel;
pub use game::{Game, GameId, Resolution};
pub use genre::Genre;
pub use hetero::{ServerClass, ALL_SERVER_CLASSES};
pub use resource::{Resource, ResourceVec, ALL_RESOURCES, NUM_RESOURCES};
pub use scene::{FpsTimeseries, SceneTrajectory};
pub use server::{ColocationOutcome, Server, ServerSpec, Workload, WorkloadOutcome};
