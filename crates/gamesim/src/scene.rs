//! Dynamic game scenes: frame-rate variation over time.
//!
//! Section 7 of the paper: "the frame rate may change during game play,
//! because game scenes vary dynamically which generates different amounts of
//! rendering workload … This could lead to temporary QoS violations when all
//! the colocated games render complex game scenes simultaneously."
//!
//! Each game gets a deterministic *scene-complexity trajectory* — a smooth
//! multi-period oscillation around 1.0 — that scales both its frame cost and
//! the pressure it exerts. [`crate::Server::measure_timeseries`] replays a
//! colocation tick by tick, re-solving the contention fixed point under the
//! momentary complexities, which reproduces exactly the correlated-worst-case
//! dips the paper warns about.

use crate::game::Game;
use crate::rng::{rng_for, uniform};
use serde::{Deserialize, Serialize};

/// A deterministic scene-complexity trajectory for one game.
///
/// `complexity(t)` multiplies the game's frame cost and pressure at time `t`
/// (seconds); it averages ≈1.0 over long windows so the steady-state model
/// remains the mean behaviour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SceneTrajectory {
    amp1: f64,
    period1: f64,
    phase1: f64,
    amp2: f64,
    period2: f64,
    phase2: f64,
    floor: f64,
    ceil: f64,
}

impl SceneTrajectory {
    /// Derive a game's trajectory deterministically from its identity.
    pub fn for_game(game: &Game, seed: u64) -> SceneTrajectory {
        let mut rng = rng_for(seed, &[0x5343_454e, game.id.0 as u64]);
        // Long slow arcs (travelling between areas) plus short bursts
        // (combat). Amplitudes vary by genre weight: action-heavy titles
        // swing harder.
        SceneTrajectory {
            amp1: uniform(&mut rng, 0.05, 0.18),
            period1: uniform(&mut rng, 45.0, 180.0),
            phase1: uniform(&mut rng, 0.0, std::f64::consts::TAU),
            amp2: uniform(&mut rng, 0.03, 0.12),
            period2: uniform(&mut rng, 6.0, 20.0),
            phase2: uniform(&mut rng, 0.0, std::f64::consts::TAU),
            floor: 0.65,
            ceil: 1.45,
        }
    }

    /// Scene complexity at time `t` seconds.
    pub fn complexity(&self, t: f64) -> f64 {
        let v = 1.0
            + self.amp1 * (std::f64::consts::TAU * t / self.period1 + self.phase1).sin()
            + self.amp2 * (std::f64::consts::TAU * t / self.period2 + self.phase2).sin();
        v.clamp(self.floor, self.ceil)
    }
}

/// A per-game FPS time series measured over a window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FpsTimeseries {
    /// One FPS sample per tick, per game (placement order).
    pub samples: Vec<Vec<f64>>,
    /// Tick spacing in seconds.
    pub tick_seconds: f64,
}

impl FpsTimeseries {
    /// Mean FPS of one game over the window.
    pub fn mean(&self, game_idx: usize) -> f64 {
        let s = &self.samples[game_idx];
        s.iter().sum::<f64>() / s.len().max(1) as f64
    }

    /// Minimum FPS of one game over the window.
    pub fn min(&self, game_idx: usize) -> f64 {
        self.samples[game_idx]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// The `q`-quantile FPS of one game (`q ∈ [0, 1]`, nearest rank).
    pub fn quantile(&self, game_idx: usize, q: f64) -> f64 {
        let mut s = self.samples[game_idx].clone();
        s.sort_by(f64::total_cmp);
        let rank = ((s.len() as f64 * q.clamp(0.0, 1.0)).ceil() as usize).clamp(1, s.len());
        s[rank - 1]
    }

    /// Fraction of ticks during which the game fell below `qos` FPS — the
    /// "temporary QoS violation" rate of Section 7.
    pub fn violation_rate(&self, game_idx: usize, qos: f64) -> f64 {
        let s = &self.samples[game_idx];
        s.iter().filter(|&&f| f < qos).count() as f64 / s.len().max(1) as f64
    }

    /// Number of ticks in the window.
    pub fn len(&self) -> usize {
        self.samples.first().map_or(0, Vec::len)
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::GameCatalog;

    #[test]
    fn complexity_is_bounded_and_deterministic() {
        let cat = GameCatalog::generate(42, 4);
        let t1 = SceneTrajectory::for_game(&cat[0], 5);
        let t2 = SceneTrajectory::for_game(&cat[0], 5);
        let t3 = SceneTrajectory::for_game(&cat[1], 5);
        let mut differs = false;
        for step in 0..200 {
            let t = step as f64 * 0.7;
            let c = t1.complexity(t);
            assert!((0.65..=1.45).contains(&c));
            assert_eq!(c, t2.complexity(t));
            differs |= (c - t3.complexity(t)).abs() > 1e-9;
        }
        assert!(differs, "different games should get different trajectories");
    }

    #[test]
    fn complexity_averages_near_one() {
        let cat = GameCatalog::generate(42, 6);
        for g in cat.games() {
            let traj = SceneTrajectory::for_game(g, 9);
            let mean: f64 = (0..2000)
                .map(|i| traj.complexity(i as f64 * 0.5))
                .sum::<f64>()
                / 2000.0;
            assert!((mean - 1.0).abs() < 0.05, "{}: mean {mean}", g.name);
        }
    }

    #[test]
    fn timeseries_statistics() {
        let ts = FpsTimeseries {
            samples: vec![vec![60.0, 50.0, 70.0, 40.0]],
            tick_seconds: 1.0,
        };
        assert_eq!(ts.mean(0), 55.0);
        assert_eq!(ts.min(0), 40.0);
        assert_eq!(ts.quantile(0, 0.5), 50.0);
        assert_eq!(ts.violation_rate(0, 55.0), 0.5);
        assert_eq!(ts.len(), 4);
        assert!(!ts.is_empty());
    }
}
