//! Pressure microbenchmarks, one per shared resource (paper Section 3.2).
//!
//! Each benchmark can "progressively increase the amount of pressure for the
//! shared resource, from no pressure to almost the maximum possible
//! pressure", while causing as little contention as possible on the others.
//! As the paper notes, perfect isolation is impossible on GPUs — "there is no
//! instruction available on modern GPUs to access memory bypassing cache" —
//! so the GPU-BW benchmark also leaks pressure into the GPU caches. The
//! simulator models those leakages explicitly.
//!
//! A benchmark at level `x` is *calibrated*: it holds its pressure at `x`
//! regardless of contention (the paper tunes sleep times until the observed
//! utilization equals `x`). What contention does change is the benchmark's
//! **runtime** — the slowdown the paper records as the colocated game's
//! *intensity*.

use crate::resource::{Resource, ResourceVec};
use serde::{Deserialize, Serialize};

/// A tunable single-resource pressure benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Microbenchmark {
    /// The resource this benchmark targets.
    pub resource: Resource,
}

impl Microbenchmark {
    /// The benchmark for one resource.
    pub fn for_resource(resource: Resource) -> Microbenchmark {
        Microbenchmark { resource }
    }

    /// The full suite, one benchmark per resource, in resource order.
    pub fn suite() -> [Microbenchmark; crate::resource::NUM_RESOURCES] {
        crate::resource::ALL_RESOURCES.map(Microbenchmark::for_resource)
    }

    /// Pressure the benchmark exerts at level `x ∈ [0, 1]`: `x` on its
    /// primary resource plus unavoidable leakage onto neighbours.
    pub(crate) fn pressures(&self, level: f64) -> ResourceVec {
        let x = level.clamp(0.0, 1.0);
        let mut p = ResourceVec::ZERO;
        p[self.resource] = x;
        for &(r, frac) in self.leakage() {
            p[r] = (p[r] + frac * x).clamp(0.0, 0.95);
        }
        p
    }

    /// Cross-resource leakage fractions `(resource, fraction of level)`.
    fn leakage(&self) -> &'static [(Resource, f64)] {
        use Resource::*;
        match self.resource {
            CpuCore => &[(Llc, 0.03)],
            Llc => &[(CpuCore, 0.15), (MemBw, 0.10)],
            MemBw => &[(Llc, 0.20), (CpuCore, 0.10)],
            GpuCore => &[(GpuL2, 0.10)],
            // Streaming GPU memory traffic cannot bypass the cache hierarchy.
            GpuBw => &[(GpuL2, 0.35), (GpuCore, 0.15)],
            GpuL2 => &[(GpuCore, 0.10), (GpuBw, 0.05)],
            PcieBw => &[(GpuBw, 0.10), (MemBw, 0.10)],
        }
    }

    /// Runtime slowdown of the benchmark (≥ 1) under effective contention
    /// from the colocated workloads, at its own level `x`.
    ///
    /// Only the busy fraction of the benchmark's loop inflates — a benchmark
    /// sleeping 70% of the time feels 30% of the contention — hence the `x`
    /// factor. The per-resource gain `β` reflects how violently each
    /// resource's microbenchmark reacts to sharing.
    pub(crate) fn slowdown(&self, effective: &ResourceVec, level: f64) -> f64 {
        let x = level.clamp(0.0, 1.0);
        let beta = self.beta();
        let mut s = 1.0 + beta * effective[self.resource] * x;
        // Mild sensitivity to the resources it leaks onto.
        for (r, frac) in self.leakage() {
            s += 0.5 * beta * frac * effective[*r] * x;
        }
        s
    }

    /// Contention gain of this benchmark's primary resource.
    fn beta(&self) -> f64 {
        use Resource::*;
        match self.resource {
            CpuCore => 2.4,
            Llc => 2.2,
            MemBw => 2.8,
            GpuCore => 2.5,
            GpuBw => 3.0,
            GpuL2 => 2.3,
            PcieBw => 2.7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ALL_RESOURCES;
    use proptest::prelude::*;

    #[test]
    fn suite_covers_every_resource_once() {
        let suite = Microbenchmark::suite();
        for (i, b) in suite.iter().enumerate() {
            assert_eq!(b.resource.index(), i);
        }
    }

    #[test]
    fn primary_pressure_equals_level() {
        for b in Microbenchmark::suite() {
            for i in 0..=10 {
                let x = i as f64 / 10.0;
                let p = b.pressures(x);
                assert!((p[b.resource] - x).abs() < 1e-12, "{b:?} at {x}");
            }
        }
    }

    #[test]
    fn leakage_is_small_relative_to_primary() {
        for b in Microbenchmark::suite() {
            let p = b.pressures(1.0);
            for r in ALL_RESOURCES {
                if r != b.resource {
                    assert!(p[r] <= 0.4, "{b:?} leaks too much onto {r}");
                }
            }
        }
    }

    #[test]
    fn gpu_bw_leaks_into_gpu_cache() {
        // The paper calls this out explicitly: no cache-bypassing streaming
        // exists on GPUs.
        let b = Microbenchmark::for_resource(Resource::GpuBw);
        let p = b.pressures(1.0);
        assert!(p[Resource::GpuL2] > 0.2);
    }

    #[test]
    fn slowdown_is_one_without_contention_or_at_level_zero() {
        for b in Microbenchmark::suite() {
            assert_eq!(b.slowdown(&ResourceVec::ZERO, 1.0), 1.0);
            let full = ResourceVec::from_fn(|_| 0.8);
            assert_eq!(b.slowdown(&full, 0.0), 1.0);
            assert!(b.slowdown(&full, 1.0) > 1.5);
        }
    }

    proptest! {
        #[test]
        fn slowdown_monotone_in_contention(
            e1 in 0.0f64..=1.0,
            e2 in 0.0f64..=1.0,
            level in 0.0f64..=1.0,
            ridx in 0usize..7,
        ) {
            let b = Microbenchmark::suite()[ridx];
            let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
            let elo = ResourceVec::from_fn(|_| lo);
            let ehi = ResourceVec::from_fn(|_| hi);
            prop_assert!(b.slowdown(&ehi, level) + 1e-12 >= b.slowdown(&elo, level));
        }

        #[test]
        fn pressures_clamped(level in -1.0f64..=2.0, ridx in 0usize..7) {
            let b = Microbenchmark::suite()[ridx];
            let p = b.pressures(level);
            // The primary resource may reach the full 1.0; leakage targets
            // are clamped to 0.95.
            for r in ALL_RESOURCES {
                prop_assert!((0.0..=1.0).contains(&p[r]));
                if r != b.resource {
                    prop_assert!(p[r] <= 0.95);
                }
            }
        }
    }
}
