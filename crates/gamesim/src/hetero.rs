//! Heterogeneous server hardware — the paper's first future-work item:
//! "GAugur is only tested on one server type in this paper. We wish to test
//! GAugur on more server types in the future."
//!
//! A [`ServerClass`] scales the simulated machine in two ways:
//!
//! * **speed** — faster CPU/GPU/PCIe shrink the per-frame stage times, so
//!   solo frame rates rise;
//! * **headroom** — wider execution/bandwidth/cache resources mean the same
//!   game exerts *less relative pressure*, so colocations interfere less.
//!
//! The reproduction's transfer experiment (see `reproduce ext`) trains
//! GAugur on one class and evaluates on another.

use crate::resource::{Resource, ResourceClass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A server hardware generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ServerClass {
    /// The paper's testbed class (i7-7700 + GTX 1060): the reference all
    /// ground truths are calibrated to.
    #[default]
    Reference,
    /// A mid-generation upgrade (~GTX 1080 class): noticeably faster GPU,
    /// modestly faster CPU.
    Performance,
    /// A flagship box (~RTX class): much faster on both sides with wide
    /// bandwidth headroom.
    Flagship,
}

/// All server classes.
pub const ALL_SERVER_CLASSES: [ServerClass; 3] = [
    ServerClass::Reference,
    ServerClass::Performance,
    ServerClass::Flagship,
];

impl ServerClass {
    /// CPU-stage speedup relative to the reference class.
    pub fn cpu_speed(self) -> f64 {
        match self {
            ServerClass::Reference => 1.0,
            ServerClass::Performance => 1.15,
            ServerClass::Flagship => 1.35,
        }
    }

    /// GPU-stage speedup relative to the reference class.
    pub fn gpu_speed(self) -> f64 {
        match self {
            ServerClass::Reference => 1.0,
            ServerClass::Performance => 1.40,
            ServerClass::Flagship => 1.90,
        }
    }

    /// Transfer-stage (PCIe) speedup relative to the reference class.
    pub fn pcie_speed(self) -> f64 {
        match self {
            ServerClass::Reference => 1.0,
            ServerClass::Performance => 1.20,
            ServerClass::Flagship => 1.60,
        }
    }

    /// Pressure divisor for a resource: a wider machine absorbs the same
    /// absolute load at lower relative utilization. Caches grow less than
    /// raw throughput across generations.
    pub fn headroom(self, r: Resource) -> f64 {
        let (core, bw, cache) = match self {
            ServerClass::Reference => (1.0, 1.0, 1.0),
            ServerClass::Performance => (1.25, 1.30, 1.10),
            ServerClass::Flagship => (1.60, 1.70, 1.25),
        };
        match r.class() {
            ResourceClass::Core => core,
            ResourceClass::Bandwidth => bw,
            ResourceClass::Cache => cache,
        }
    }
}

impl fmt::Display for ServerClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ServerClass::Reference => "reference (GTX 1060 class)",
            ServerClass::Performance => "performance (GTX 1080 class)",
            ServerClass::Flagship => "flagship (RTX class)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ALL_RESOURCES;

    #[test]
    fn reference_class_is_identity() {
        let c = ServerClass::Reference;
        assert_eq!(c.cpu_speed(), 1.0);
        assert_eq!(c.gpu_speed(), 1.0);
        assert_eq!(c.pcie_speed(), 1.0);
        for r in ALL_RESOURCES {
            assert_eq!(c.headroom(r), 1.0);
        }
    }

    #[test]
    fn classes_are_strictly_ordered() {
        for r in ALL_RESOURCES {
            assert!(ServerClass::Performance.headroom(r) > ServerClass::Reference.headroom(r));
            assert!(ServerClass::Flagship.headroom(r) > ServerClass::Performance.headroom(r));
        }
        assert!(ServerClass::Flagship.gpu_speed() > ServerClass::Performance.gpu_speed());
        assert!(ServerClass::Performance.gpu_speed() > 1.0);
    }

    #[test]
    fn default_is_reference() {
        assert_eq!(ServerClass::default(), ServerClass::Reference);
    }
}
