//! The seven shared resources the paper identifies as the ones that matter
//! for game interference (Section 3.2), plus a small fixed-size vector type
//! indexed by resource.
//!
//! > "We identify seven shared resources which are most important for games,
//! > including CPU cores (CPU-CE), last level cache (LLC), memory bandwidth
//! > (MEM-BW), GPU cores (GPU-CE), GPU memory bandwidth (GPU-BW), GPU L2
//! > cache (GPU-L2), and PCIe bandwidth (PCIe-BW)."

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Number of shared resources tracked by the simulator (the paper's `R`).
pub const NUM_RESOURCES: usize = 7;

/// A shared server resource contended by colocated games.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum Resource {
    /// CPU cores / execution engines (CPU-CE).
    CpuCore = 0,
    /// CPU last-level cache (LLC).
    Llc = 1,
    /// CPU memory bandwidth (MEM-BW).
    MemBw = 2,
    /// GPU cores / streaming multiprocessors (GPU-CE).
    GpuCore = 3,
    /// GPU memory bandwidth (GPU-BW).
    GpuBw = 4,
    /// GPU L2 cache (GPU-L2).
    GpuL2 = 5,
    /// PCIe bandwidth between host and device (PCIe-BW).
    PcieBw = 6,
}

/// All resources in index order; iterate this instead of hand-writing lists.
pub const ALL_RESOURCES: [Resource; NUM_RESOURCES] = [
    Resource::CpuCore,
    Resource::Llc,
    Resource::MemBw,
    Resource::GpuCore,
    Resource::GpuBw,
    Resource::GpuL2,
    Resource::PcieBw,
];

/// The broad contention class of a resource, which determines how pressures
/// from multiple colocated workloads combine (see [`crate::combine`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceClass {
    /// Time-shared execution units (CPU-CE, GPU-CE): pressures combine
    /// probabilistically and sub-additively.
    Core,
    /// Bandwidth-like resources (MEM-BW, GPU-BW, PCIe-BW): pressures add, but
    /// queueing blows contention up super-linearly past a knee.
    Bandwidth,
    /// Capacity-shared caches (LLC, GPU-L2): footprints combine
    /// super-additively below saturation (mutual eviction / thrashing).
    Cache,
}

/// The pipeline stage of a game frame that a resource slows down when
/// contended. The frame-time model is `max(cpu, gpu) + transfer`
/// (see [`crate::pipeline`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Game-logic / simulation stage on the CPU.
    Cpu,
    /// Rendering stage on the GPU.
    Gpu,
    /// Host↔device transfer stage over PCIe.
    Transfer,
}

impl Resource {
    /// Stable index of the resource in `0..NUM_RESOURCES`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Build a resource from its stable index. Panics if out of range.
    #[inline]
    pub fn from_index(i: usize) -> Resource {
        ALL_RESOURCES[i]
    }

    /// The contention class of this resource.
    pub fn class(self) -> ResourceClass {
        match self {
            Resource::CpuCore | Resource::GpuCore => ResourceClass::Core,
            Resource::MemBw | Resource::GpuBw | Resource::PcieBw => ResourceClass::Bandwidth,
            Resource::Llc | Resource::GpuL2 => ResourceClass::Cache,
        }
    }

    /// The frame-pipeline stage this resource slows down.
    pub fn stage(self) -> Stage {
        match self {
            Resource::CpuCore | Resource::Llc | Resource::MemBw => Stage::Cpu,
            Resource::GpuCore | Resource::GpuBw | Resource::GpuL2 => Stage::Gpu,
            Resource::PcieBw => Stage::Transfer,
        }
    }

    /// True for resources on the GPU side whose intensity scales with the
    /// rendered pixel count (Observation 8: GPU-CE, GPU-BW, GPU-L2, PCIe-BW).
    pub fn scales_with_pixels(self) -> bool {
        matches!(
            self,
            Resource::GpuCore | Resource::GpuBw | Resource::GpuL2 | Resource::PcieBw
        )
    }

    /// The short name used in the paper's figures.
    pub fn short_name(self) -> &'static str {
        match self {
            Resource::CpuCore => "CPU-CE",
            Resource::Llc => "LLC",
            Resource::MemBw => "MEM-BW",
            Resource::GpuCore => "GPU-CE",
            Resource::GpuBw => "GPU-BW",
            Resource::GpuL2 => "GPU-L2",
            Resource::PcieBw => "PCIe-BW",
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A fixed-size `f64` vector indexed by [`Resource`].
///
/// Used throughout for pressures, sensitivities, intensities and effective
/// contention levels.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceVec(pub [f64; NUM_RESOURCES]);

impl ResourceVec {
    /// The all-zero vector.
    pub const ZERO: ResourceVec = ResourceVec([0.0; NUM_RESOURCES]);

    /// Build a vector from a function of each resource.
    pub fn from_fn(mut f: impl FnMut(Resource) -> f64) -> ResourceVec {
        let mut v = [0.0; NUM_RESOURCES];
        for r in ALL_RESOURCES {
            v[r.index()] = f(r);
        }
        ResourceVec(v)
    }

    /// Iterate `(resource, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Resource, f64)> + '_ {
        ALL_RESOURCES.iter().map(move |&r| (r, self.0[r.index()]))
    }

    /// Element-wise map.
    pub fn map(&self, mut f: impl FnMut(Resource, f64) -> f64) -> ResourceVec {
        ResourceVec::from_fn(|r| f(r, self[r]))
    }

    /// Sum of all components.
    pub fn sum(&self) -> f64 {
        self.0.iter().sum()
    }

    /// Largest component.
    pub fn max(&self) -> f64 {
        self.0.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Clamp every component into `[lo, hi]`.
    pub fn clamp(&self, lo: f64, hi: f64) -> ResourceVec {
        self.map(|_, v| v.clamp(lo, hi))
    }

    /// The raw array (in [`Resource`] index order).
    pub fn as_array(&self) -> &[f64; NUM_RESOURCES] {
        &self.0
    }
}

impl Index<Resource> for ResourceVec {
    type Output = f64;
    #[inline]
    fn index(&self, r: Resource) -> &f64 {
        &self.0[r.index()]
    }
}

impl IndexMut<Resource> for ResourceVec {
    #[inline]
    fn index_mut(&mut self, r: Resource) -> &mut f64 {
        &mut self.0[r.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_stable_and_dense() {
        for (i, r) in ALL_RESOURCES.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Resource::from_index(i), *r);
        }
    }

    #[test]
    fn classes_match_paper_taxonomy() {
        assert_eq!(Resource::CpuCore.class(), ResourceClass::Core);
        assert_eq!(Resource::GpuCore.class(), ResourceClass::Core);
        assert_eq!(Resource::Llc.class(), ResourceClass::Cache);
        assert_eq!(Resource::GpuL2.class(), ResourceClass::Cache);
        assert_eq!(Resource::MemBw.class(), ResourceClass::Bandwidth);
        assert_eq!(Resource::GpuBw.class(), ResourceClass::Bandwidth);
        assert_eq!(Resource::PcieBw.class(), ResourceClass::Bandwidth);
    }

    #[test]
    fn stages_partition_resources() {
        let cpu: Vec<_> = ALL_RESOURCES
            .iter()
            .filter(|r| r.stage() == Stage::Cpu)
            .collect();
        let gpu: Vec<_> = ALL_RESOURCES
            .iter()
            .filter(|r| r.stage() == Stage::Gpu)
            .collect();
        let xfer: Vec<_> = ALL_RESOURCES
            .iter()
            .filter(|r| r.stage() == Stage::Transfer)
            .collect();
        assert_eq!(cpu.len(), 3);
        assert_eq!(gpu.len(), 3);
        assert_eq!(xfer.len(), 1);
    }

    #[test]
    fn pixel_scaling_resources_match_observation_8() {
        let scaling: Vec<_> = ALL_RESOURCES
            .iter()
            .filter(|r| r.scales_with_pixels())
            .map(|r| r.short_name())
            .collect();
        assert_eq!(scaling, vec!["GPU-CE", "GPU-BW", "GPU-L2", "PCIe-BW"]);
    }

    #[test]
    fn resource_vec_ops() {
        let v = ResourceVec::from_fn(|r| r.index() as f64);
        assert_eq!(v.sum(), 21.0);
        assert_eq!(v.max(), 6.0);
        assert_eq!(v[Resource::PcieBw], 6.0);
        let c = v.clamp(1.0, 3.0);
        assert_eq!(c[Resource::CpuCore], 1.0);
        assert_eq!(c[Resource::PcieBw], 3.0);
        let mut m = v;
        m[Resource::Llc] = 9.0;
        assert_eq!(m[Resource::Llc], 9.0);
    }

    #[test]
    fn display_matches_short_name() {
        assert_eq!(Resource::GpuBw.to_string(), "GPU-BW");
    }
}
