//! The 100-game catalog.
//!
//! The paper evaluates 100 popular games whose titles are listed in its
//! reference \[3\]. The synthetic catalog reuses those titles (two garbled
//! entries in the published list are replaced by two well-known titles) and
//! assigns each a genre, from which the generator draws the game's hidden
//! ground truth deterministically.

use crate::game::{Game, GameId};
use crate::genre::Genre;
use serde::{Deserialize, Serialize};
use std::ops::Index;

/// `(title, genre)` for the catalog, reconstructed from the paper's game
/// list (reference \[3\]).
pub const GAME_LIST: [(&str, Genre); 100] = [
    ("A Walk in the Woods", Genre::Indie),
    ("After Dreams", Genre::Indie),
    ("AirMech Strike", Genre::Action),
    ("Ancestors Legacy", Genre::Strategy),
    ("ARK Survival Evolved", Genre::AaaOpenWorld),
    ("Battlerite", Genre::Moba),
    ("Black Squad", Genre::Shooter),
    ("BlubBlub", Genre::Indie),
    ("Borderland2", Genre::Shooter),
    ("Call to Arms", Genre::Strategy),
    ("Candle", Genre::Indie),
    ("Cities: Skylines", Genre::Strategy),
    ("CoD14", Genre::Shooter),
    ("Cognizer", Genre::Indie),
    ("Craft The World", Genre::Strategy),
    ("DARK SOULS III", Genre::Action),
    ("Dragon's Dogma: Dark Arisen", Genre::Action),
    ("Delicious 12", Genre::Indie),
    ("Destined", Genre::Indie),
    ("Divinity: Original Sin 2", Genre::Strategy),
    ("DmC: Devil May Cry", Genre::Action),
    ("Dota2", Genre::Moba),
    ("Dragon Ball Xenoverse 2", Genre::Action),
    ("Empire Earth III", Genre::Strategy),
    ("Endless Fables: The Minotaur's Curse", Genre::Indie),
    ("Far Cry 4", Genre::AaaOpenWorld),
    ("FAR: Lone Sails", Genre::Indie),
    ("Final Fantasy XII: The Zodiac Age", Genre::Action),
    ("Frightened Beetles", Genre::Indie),
    ("Gems of War", Genre::Indie),
    ("Getting Over It with Bennett Foddy", Genre::Indie),
    ("Granado Espada", Genre::Mmo),
    ("GUNS UP!", Genre::Strategy),
    ("H1Z1", Genre::Shooter),
    ("Hand of Fate 2", Genre::Action),
    ("Heroes and Generals", Genre::Shooter),
    ("Hobo: Tough Life", Genre::Action),
    ("Human: Fall Flat", Genre::Indie),
    ("Impact Winter", Genre::Indie),
    ("Kingdom Come: Deliverance", Genre::AaaOpenWorld),
    ("Life is Strange: Before the Storm", Genre::Action),
    ("Little Nightmares", Genre::Action),
    ("Little Witch Academia", Genre::Action),
    ("League of Legends", Genre::Moba),
    ("Maries Room", Genre::Indie),
    ("Naruto Shippuden: Ultimate Ninja Storm 4", Genre::Action),
    ("NBA 2K17", Genre::Sports),
    ("NBA Playgrounds", Genre::Sports),
    ("Need for Speed: Hot Pursuit", Genre::Sports),
    ("NieR: Automata", Genre::Action),
    ("Northgard", Genre::Strategy),
    ("Ori and the Blind Forest", Genre::Indie),
    ("Oxygen Not Included", Genre::Strategy),
    ("PES 2017", Genre::Sports),
    ("PlanetSide 2", Genre::Shooter),
    ("PES 2015", Genre::Sports),
    ("Project RAT", Genre::Indie),
    ("Project CARS", Genre::Sports),
    ("Radical Heights", Genre::Shooter),
    ("RiME", Genre::Indie),
    ("RimWorld", Genre::Strategy),
    ("Robocraft", Genre::Shooter),
    ("Russian Fishing 4", Genre::Sports),
    ("Salt and Sanctuary", Genre::Indie),
    ("Shop Heroes", Genre::Indie),
    ("Slay the Spire", Genre::Indie),
    ("StarCraft 2", Genre::Strategy),
    ("Stardew Valley", Genre::Indie),
    ("Stellaris", Genre::Strategy),
    ("Tactical Monsters Rumble Arena", Genre::Strategy),
    ("Team Fortress 2", Genre::Shooter),
    ("TEKKEN 7", Genre::Action),
    ("The Long Dark", Genre::AaaOpenWorld),
    ("The Sibling Experiment", Genre::Indie),
    ("The Walking Dead: A New Frontier", Genre::Action),
    ("The Will of a Single Tale", Genre::Indie),
    ("The Witcher 3: Wild Hunt", Genre::AaaOpenWorld),
    ("Tiger Knight", Genre::Action),
    ("Torchlight II", Genre::Action),
    ("The Legend of Heroes: Trails of Cold Steel", Genre::Action),
    ("Unturned", Genre::Shooter),
    ("VEGA Conflict", Genre::Mmo),
    ("War Robots", Genre::Shooter),
    ("War Thunder", Genre::Shooter),
    ("Warface", Genre::Shooter),
    ("Warframe", Genre::Shooter),
    ("World of Warships", Genre::Shooter),
    ("WRC 5", Genre::Sports),
    ("Assassin's Creed Origins", Genre::AaaOpenWorld),
    ("Rise of The Tomb Raider", Genre::AaaOpenWorld),
    ("Hearthstone", Genre::Indie),
    ("Mahou Arms", Genre::Action),
    ("World of Warcraft", Genre::Mmo),
    ("Warcraft", Genre::Strategy),
    ("Romance of the Three Kingdoms 11", Genre::Strategy),
    ("The Elder Scrolls V: Skyrim", Genre::AaaOpenWorld),
    ("PES 2012", Genre::Sports),
    ("Dynasty Warriors 5", Genre::Action),
    ("Counter-Strike: Global Offensive", Genre::Shooter),
    ("Overwatch", Genre::Shooter),
];

/// A generated game library.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GameCatalog {
    seed: u64,
    games: Vec<Game>,
}

impl GameCatalog {
    /// Generate the first `n` games of the catalog (up to 100) with ground
    /// truths drawn deterministically from `seed`.
    ///
    /// The same `(seed, n)` always produces the same catalog; different
    /// seeds produce statistically fresh game populations with the same
    /// genre structure.
    pub fn generate(seed: u64, n: usize) -> GameCatalog {
        assert!(n <= GAME_LIST.len(), "catalog holds at most 100 games");
        let games = GAME_LIST[..n]
            .iter()
            .enumerate()
            .map(|(i, (name, genre))| Game::generate(seed, GameId(i as u32), name, *genre))
            .collect();
        GameCatalog { seed, games }
    }

    /// The seed the catalog was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All games, ordered by id.
    pub fn games(&self) -> &[Game] {
        &self.games
    }

    /// Number of games.
    pub fn len(&self) -> usize {
        self.games.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.games.is_empty()
    }

    /// Look a game up by id.
    pub fn get(&self, id: GameId) -> Option<&Game> {
        self.games.get(id.0 as usize)
    }

    /// Look a game up by exact title.
    pub fn by_name(&self, name: &str) -> Option<&Game> {
        self.games.iter().find(|g| g.name == name)
    }
}

impl Index<usize> for GameCatalog {
    type Output = Game;
    fn index(&self, i: usize) -> &Game {
        &self.games[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::Resolution;
    use crate::genre::ALL_GENRES;
    use std::collections::HashSet;

    #[test]
    fn list_has_exactly_100_unique_titles() {
        let names: HashSet<_> = GAME_LIST.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 100);
    }

    #[test]
    fn every_genre_is_represented() {
        for genre in ALL_GENRES {
            assert!(
                GAME_LIST.iter().any(|(_, g)| *g == genre),
                "{genre:?} missing from catalog"
            );
        }
    }

    #[test]
    fn figure_games_are_present() {
        let cat = GameCatalog::generate(42, 100);
        for name in [
            "Dota2",
            "Far Cry 4",
            "Granado Espada",
            "Rise of The Tomb Raider",
            "The Elder Scrolls V: Skyrim",
            "World of Warcraft",
            "Ancestors Legacy",
            "Borderland2",
            "H1Z1",
            "ARK Survival Evolved",
            "AirMech Strike",
            "Hobo: Tough Life",
            "Little Witch Academia",
            "Dragon's Dogma: Dark Arisen",
        ] {
            assert!(cat.by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = GameCatalog::generate(42, 10);
        let b = GameCatalog::generate(42, 10);
        let c = GameCatalog::generate(43, 10);
        for i in 0..10 {
            assert_eq!(
                a[i].solo_utilization(Resolution::Fhd1080),
                b[i].solo_utilization(Resolution::Fhd1080)
            );
        }
        assert_ne!(
            a[0].solo_utilization(Resolution::Fhd1080),
            c[0].solo_utilization(Resolution::Fhd1080)
        );
    }

    #[test]
    fn ids_are_dense_and_lookup_works() {
        let cat = GameCatalog::generate(1, 20);
        assert_eq!(cat.len(), 20);
        for (i, g) in cat.games().iter().enumerate() {
            assert_eq!(g.id, GameId(i as u32));
            assert_eq!(cat.get(g.id).unwrap().name, g.name);
        }
        assert!(cat.get(GameId(20)).is_none());
    }

    #[test]
    fn genre_templates_shape_the_catalog() {
        let cat = GameCatalog::generate(42, 100);
        let server = crate::server::Server::noiseless(1);
        let mean_fps = |genre: crate::genre::Genre| -> f64 {
            let games: Vec<_> = cat.games().iter().filter(|g| g.genre == genre).collect();
            games
                .iter()
                .map(|g| server.measure_solo_fps(g, Resolution::Fhd1080))
                .sum::<f64>()
                / games.len().max(1) as f64
        };
        // Indies render far faster than AAA open-world titles.
        assert!(
            mean_fps(crate::genre::Genre::Indie)
                > 2.0 * mean_fps(crate::genre::Genre::AaaOpenWorld)
        );
        // AAA titles demand far more GPU than indies.
        let mean_gpu = |genre: crate::genre::Genre| -> f64 {
            let games: Vec<_> = cat.games().iter().filter(|g| g.genre == genre).collect();
            games
                .iter()
                .map(|g| g.solo_demand(Resolution::Fhd1080).gpu)
                .sum::<f64>()
                / games.len().max(1) as f64
        };
        assert!(
            mean_gpu(crate::genre::Genre::AaaOpenWorld)
                > 2.0 * mean_gpu(crate::genre::Genre::Indie)
        );
    }

    #[test]
    #[should_panic(expected = "at most 100")]
    fn oversize_catalog_panics() {
        let _ = GameCatalog::generate(1, 101);
    }
}
