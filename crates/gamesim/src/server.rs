//! The simulated cloud-gaming server: colocate workloads, solve the mutual
//! contention fixed point, and return noisy measurements.
//!
//! This is the only gateway through which the prediction stack can observe
//! game behaviour — exactly like the physical i7-7700/GTX-1060 testbed in
//! the paper, which exposes frame rates and benchmark runtimes and nothing
//! else.

use crate::bench::Microbenchmark;
use crate::combine::Combiner;
use crate::game::{Game, Resolution};
use crate::hetero::ServerClass;
use crate::resource::{ResourceVec, NUM_RESOURCES};
use crate::rng::{clipped_normal, mix, rng_for};
use crate::scene::{FpsTimeseries, SceneTrajectory};
use serde::{Deserialize, Serialize};

/// Static description of a server's capacity limits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Host memory capacity (demand vectors are normalized to this = 1.0).
    pub cpu_mem_capacity: f64,
    /// GPU memory capacity (normalized, 1.0).
    pub gpu_mem_capacity: f64,
    /// Multiplier applied to game performance when host memory is
    /// oversubscribed (swap thrash).
    pub cpu_mem_thrash: f64,
    /// Multiplier applied when GPU memory is oversubscribed (VRAM eviction
    /// over PCIe).
    pub gpu_mem_thrash: f64,
    /// Hardware video encoder attached to every game session (paper
    /// Section 7); `None` ignores encoding, as the paper's evaluation does.
    pub encoder: Option<crate::encode::EncoderModel>,
}

impl Default for ServerSpec {
    fn default() -> Self {
        ServerSpec {
            cpu_mem_capacity: 1.0,
            gpu_mem_capacity: 1.0,
            cpu_mem_thrash: 0.40,
            gpu_mem_thrash: 0.45,
            encoder: None,
        }
    }
}

/// A workload placed on the server: a game at a resolution, or a pressure
/// microbenchmark at a level.
#[derive(Debug, Clone, Copy)]
pub enum Workload<'a> {
    /// A game running at a player-selected resolution.
    Game {
        /// The game.
        game: &'a Game,
        /// The selected resolution.
        resolution: Resolution,
    },
    /// A calibrated pressure benchmark.
    Bench {
        /// The benchmark.
        bench: Microbenchmark,
        /// Pressure level in `[0, 1]`.
        level: f64,
    },
}

impl<'a> Workload<'a> {
    /// Convenience constructor for a game workload.
    pub fn game(game: &'a Game, resolution: Resolution) -> Workload<'a> {
        Workload::Game { game, resolution }
    }

    /// Convenience constructor for a benchmark workload.
    pub fn bench(bench: Microbenchmark, level: f64) -> Workload<'a> {
        Workload::Bench { bench, level }
    }

    /// A stable 64-bit descriptor used to derive measurement-noise seeds.
    fn descriptor(&self) -> u64 {
        match self {
            Workload::Game { game, resolution } => {
                mix(0x47 ^ ((game.id.0 as u64) << 8) ^ ((resolution.pixels() as u64) << 32))
            }
            Workload::Bench { bench, level } => mix(0x42
                ^ ((bench.resource.index() as u64) << 8)
                ^ (((level * 1000.0).round() as u64) << 16)),
        }
    }
}

/// The measured result for one workload in a colocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadOutcome {
    /// Measured game performance.
    Game {
        /// Average frame rate over the measurement window (noisy).
        fps: f64,
        /// Server-side processing delay per input, in milliseconds (noisy).
        /// Used by the interaction-delay extension (paper Section 7).
        processing_delay_ms: f64,
    },
    /// Measured benchmark performance.
    Bench {
        /// Runtime slowdown relative to running alone (≥ 1, noisy).
        slowdown: f64,
    },
}

/// The result of measuring one colocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColocationOutcome {
    /// Per-workload outcome, in placement order.
    pub outcomes: Vec<WorkloadOutcome>,
    /// Fixed-point iterations the contention solver used.
    pub iterations: usize,
    /// Whether the solver converged (it always should; exposed for tests).
    pub converged: bool,
}

impl ColocationOutcome {
    /// Frame rate of the `i`-th workload, if it is a game.
    pub fn game_fps(&self, i: usize) -> Option<f64> {
        match self.outcomes.get(i)? {
            WorkloadOutcome::Game { fps, .. } => Some(*fps),
            WorkloadOutcome::Bench { .. } => None,
        }
    }

    /// Processing delay of the `i`-th workload, if it is a game.
    pub fn game_delay_ms(&self, i: usize) -> Option<f64> {
        match self.outcomes.get(i)? {
            WorkloadOutcome::Game {
                processing_delay_ms,
                ..
            } => Some(*processing_delay_ms),
            WorkloadOutcome::Bench { .. } => None,
        }
    }

    /// Slowdown of the `i`-th workload, if it is a benchmark.
    pub fn bench_slowdown(&self, i: usize) -> Option<f64> {
        match self.outcomes.get(i)? {
            WorkloadOutcome::Bench { slowdown } => Some(*slowdown),
            WorkloadOutcome::Game { .. } => None,
        }
    }
}

/// A simulated cloud-gaming server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Server {
    /// Capacity limits.
    pub spec: ServerSpec,
    /// Base seed for measurement noise (experiments with different seeds see
    /// different noise realizations).
    pub seed: u64,
    /// Relative standard deviation of FPS / slowdown measurements.
    pub noise_sigma: f64,
    /// Hardware generation of the machine (future-work extension; the
    /// paper's testbed corresponds to [`ServerClass::Reference`]).
    pub class: ServerClass,
    combiners: [Combiner; NUM_RESOURCES],
}

/// Result of one contention-fixed-point solve.
struct SolveOutcome {
    rate: Vec<f64>,
    effective: Vec<ResourceVec>,
    iterations: usize,
    converged: bool,
}

/// Damping factor of the contention fixed point.
const DAMPING: f64 = 0.5;
/// Convergence threshold on the max rate-factor change.
const EPSILON: f64 = 1e-10;
/// Iteration cap (generously above what convergence needs).
const MAX_ITERS: usize = 200;

impl Server {
    /// The reference server configuration used throughout the reproduction
    /// (analogous to the paper's single i7-7700 + GTX 1060 testbed).
    pub fn reference(seed: u64) -> Server {
        Server {
            spec: ServerSpec::default(),
            seed,
            noise_sigma: 0.015,
            class: ServerClass::Reference,
            combiners: std::array::from_fn(|i| {
                Combiner::for_resource(crate::resource::Resource::from_index(i))
            }),
        }
    }

    /// A reference server of a different hardware generation.
    pub fn of_class(seed: u64, class: ServerClass) -> Server {
        let mut s = Server::reference(seed);
        s.class = class;
        s
    }

    /// A noise-free server, for tests and ground-truth evaluation.
    pub fn noiseless(seed: u64) -> Server {
        let mut s = Server::reference(seed);
        s.noise_sigma = 0.0;
        s
    }

    /// Measure a colocation of workloads: returns the noisy steady-state
    /// frame rate of every game and slowdown of every benchmark.
    pub fn measure_colocation(&self, workloads: &[Workload<'_>]) -> ColocationOutcome {
        if workloads.is_empty() {
            return ColocationOutcome {
                outcomes: Vec::new(),
                iterations: 0,
                converged: true,
            };
        }

        // --- memory oversubscription check (games only) ------------------
        let mut cpu_mem = 0.0;
        let mut gpu_mem = 0.0;
        for w in workloads {
            if let Workload::Game { game, .. } = w {
                cpu_mem += game.truth.cpu_mem;
                gpu_mem += game.truth.gpu_mem;
            }
        }
        let mut thrash = 1.0;
        if cpu_mem > self.spec.cpu_mem_capacity {
            thrash *= self.spec.cpu_mem_thrash;
        }
        if gpu_mem > self.spec.gpu_mem_capacity {
            thrash *= self.spec.gpu_mem_thrash;
        }

        // --- contention fixed point --------------------------------------
        let complexities = vec![1.0_f64; workloads.len()];
        let solved = self.solve(workloads, &complexities, thrash);
        let (rate, effective, iterations, converged) = (
            solved.rate,
            solved.effective,
            solved.iterations,
            solved.converged,
        );

        // --- noisy observation --------------------------------------------
        let set_hash = workloads
            .iter()
            .fold(0u64, |acc, w| mix(acc ^ w.descriptor()));
        let outcomes = workloads
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let mut rng = rng_for(self.seed, &[set_hash, i as u64]);
                let noise = |rng: &mut rand_chacha::ChaCha8Rng, sigma: f64| {
                    1.0 + sigma * clipped_normal(rng, 3.0)
                };
                match w {
                    Workload::Game { game, resolution } => {
                        let fps = game.truth.solo_fps_on(*resolution, self.class)
                            * rate[i]
                            * noise(&mut rng, self.noise_sigma);
                        // Delay = frame time + command processing, the latter
                        // inflated by CPU-side contention.
                        let frame_ms = 1000.0 / fps.max(1.0);
                        let cpu_infl = game
                            .truth
                            .stage_inflation(crate::resource::Stage::Cpu, &effective[i]);
                        let encode_ms = self.spec.encoder.map_or(0.0, |e| e.latency_ms);
                        let delay = (frame_ms * 1.1 + 1.5 * cpu_infl + encode_ms)
                            * noise(&mut rng, self.noise_sigma);
                        WorkloadOutcome::Game {
                            fps,
                            processing_delay_ms: delay,
                        }
                    }
                    Workload::Bench { bench, level } => {
                        let s = bench.slowdown(&effective[i], *level)
                            * noise(&mut rng, self.noise_sigma);
                        WorkloadOutcome::Bench {
                            slowdown: s.max(1.0),
                        }
                    }
                }
            })
            .collect();

        ColocationOutcome {
            outcomes,
            iterations,
            converged,
        }
    }

    /// Solve the mutual-contention fixed point for a set of workloads under
    /// per-workload scene complexities. `rate[i]` is the achieved/solo
    /// frame-rate factor for games (1.0 for benchmarks).
    fn solve(&self, workloads: &[Workload<'_>], complexities: &[f64], thrash: f64) -> SolveOutcome {
        let n = workloads.len();
        let mut rate = vec![1.0_f64; n];
        let mut effective = vec![ResourceVec::ZERO; n];
        let mut iterations = 0;
        let mut converged = false;

        for it in 0..MAX_ITERS {
            iterations = it + 1;
            let pressures: Vec<ResourceVec> = workloads
                .iter()
                .zip(&rate)
                .zip(complexities)
                .map(|((w, &rf), &cx)| match w {
                    Workload::Game { game, resolution } => {
                        let mut p = game.truth.pressures_on(*resolution, rf, self.class, cx);
                        if let Some(enc) = &self.spec.encoder {
                            let extra = enc.session_pressure(*resolution);
                            p = p.map(|r, v| (v + extra[r]).clamp(0.0, 0.95));
                        }
                        p
                    }
                    Workload::Bench { bench, level } => bench.pressures(*level),
                })
                .collect();

            let mut max_delta = 0.0_f64;
            for i in 0..n {
                // Effective contention on each resource from everyone else.
                let eff = ResourceVec::from_fn(|r| {
                    let others: Vec<f64> = (0..n)
                        .filter(|&j| j != i)
                        .map(|j| pressures[j][r])
                        .collect();
                    self.combiners[r.index()].combine(&others)
                });
                effective[i] = eff;

                if let Workload::Game { game, resolution } = &workloads[i] {
                    let cx = complexities[i];
                    let solo_ms = 1000.0 / game.truth.solo_fps_on(*resolution, self.class) * cx;
                    let coloc_ms = game
                        .truth
                        .frame_time_ms_on(*resolution, &eff, self.class, cx);
                    let target = (solo_ms / coloc_ms * thrash).clamp(0.0, 1.0);
                    let next = DAMPING * rate[i] + (1.0 - DAMPING) * target;
                    max_delta = max_delta.max((next - rate[i]).abs());
                    rate[i] = next;
                }
            }
            if max_delta < EPSILON {
                converged = true;
                break;
            }
        }

        SolveOutcome {
            rate,
            effective,
            iterations,
            converged,
        }
    }

    /// Replay a colocation over a time window with dynamically varying game
    /// scenes (Section 7 of the paper): each tick re-solves the contention
    /// fixed point under the games\' momentary scene complexities, exposing
    /// the correlated dips that cause *temporary* QoS violations.
    ///
    /// Benchmarks in the workload list keep constant pressure.
    pub fn measure_timeseries(
        &self,
        workloads: &[Workload<'_>],
        duration_seconds: f64,
        tick_seconds: f64,
    ) -> FpsTimeseries {
        assert!(tick_seconds > 0.0, "tick must be positive");
        let n = workloads.len();
        let trajectories: Vec<Option<SceneTrajectory>> = workloads
            .iter()
            .map(|w| match w {
                Workload::Game { game, .. } => Some(SceneTrajectory::for_game(game, self.seed)),
                Workload::Bench { .. } => None,
            })
            .collect();

        // Memory thrash is scene-independent.
        let mut cpu_mem = 0.0;
        let mut gpu_mem = 0.0;
        for w in workloads {
            if let Workload::Game { game, .. } = w {
                cpu_mem += game.truth.cpu_mem;
                gpu_mem += game.truth.gpu_mem;
            }
        }
        let mut thrash = 1.0;
        if cpu_mem > self.spec.cpu_mem_capacity {
            thrash *= self.spec.cpu_mem_thrash;
        }
        if gpu_mem > self.spec.gpu_mem_capacity {
            thrash *= self.spec.gpu_mem_thrash;
        }

        let ticks = (duration_seconds / tick_seconds).ceil() as usize;
        let mut samples = vec![Vec::with_capacity(ticks); n];
        let set_hash = workloads
            .iter()
            .fold(0u64, |acc, w| mix(acc ^ w.descriptor()));
        for tick in 0..ticks {
            let t = tick as f64 * tick_seconds;
            let complexities: Vec<f64> = trajectories
                .iter()
                .map(|tr| tr.as_ref().map_or(1.0, |tr| tr.complexity(t)))
                .collect();
            let solved = self.solve(workloads, &complexities, thrash);
            for (i, w) in workloads.iter().enumerate() {
                if let Workload::Game { game, resolution } = w {
                    let coloc_ms = game.truth.frame_time_ms_on(
                        *resolution,
                        &solved.effective[i],
                        self.class,
                        complexities[i],
                    );
                    let mut rng = rng_for(self.seed, &[set_hash, i as u64, tick as u64]);
                    // Achieved FPS is the colocated frame rate, damped by
                    // memory thrash, with per-tick measurement jitter.
                    let fps = 1000.0 / coloc_ms
                        * thrash
                        * (1.0 + self.noise_sigma * clipped_normal(&mut rng, 3.0));
                    samples[i].push(fps);
                } else {
                    samples[i].push(0.0);
                }
            }
        }
        FpsTimeseries {
            samples,
            tick_seconds,
        }
    }

    /// Measure a game\'s solo frame rate at a resolution (noisy).
    pub fn measure_solo_fps(&self, game: &Game, resolution: Resolution) -> f64 {
        self.measure_colocation(&[Workload::game(game, resolution)])
            .game_fps(0)
            .expect("single game workload")
    }

    /// Ground-truth (noise-free, no-contention) solo FPS. Only meaningful for
    /// evaluation harnesses; real profiling should use
    /// [`Server::measure_solo_fps`].
    pub fn true_solo_fps(&self, game: &Game, resolution: Resolution) -> f64 {
        game.truth.solo_fps(resolution)
    }

    /// The combiner used for a resource (exposed for the Figure 6 harness
    /// and tests).
    pub fn combiner(&self, r: crate::resource::Resource) -> Combiner {
        self.combiners[r.index()]
    }
}

/// Effective contention seen by one hypothetical extra observer (used by
/// diagnostics): combine the full pressure set of `workloads` at their solo
/// rates on each resource.
pub fn nominal_pressure(server: &Server, workloads: &[Workload<'_>]) -> ResourceVec {
    ResourceVec::from_fn(|r| {
        let ps: Vec<f64> = workloads
            .iter()
            .map(|w| match w {
                Workload::Game { game, resolution } => game.truth.pressures(*resolution, 1.0)[r],
                Workload::Bench { bench, level } => bench.pressures(*level)[r],
            })
            .collect();
        server.combiners[r.index()].combine(&ps)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::GameCatalog;
    use crate::resource::Resource;

    fn catalog() -> GameCatalog {
        GameCatalog::generate(42, 100)
    }

    #[test]
    fn solo_measurement_matches_truth_within_noise() {
        let cat = catalog();
        let server = Server::reference(1);
        for g in cat.games().iter().take(20) {
            let fps = server.measure_solo_fps(g, Resolution::Fhd1080);
            let truth = g.truth.solo_fps(Resolution::Fhd1080);
            assert!(
                (fps - truth).abs() / truth < 0.06,
                "{}: {fps} vs {truth}",
                g.name
            );
        }
    }

    #[test]
    fn noiseless_solo_equals_truth_exactly() {
        let cat = catalog();
        let server = Server::noiseless(1);
        let g = &cat[0];
        let fps = server.measure_solo_fps(g, Resolution::Fhd1080);
        assert!((fps - g.truth.solo_fps(Resolution::Fhd1080)).abs() < 1e-9);
    }

    #[test]
    fn measurements_are_deterministic() {
        let cat = catalog();
        let server = Server::reference(9);
        let w = [
            Workload::game(&cat[0], Resolution::Fhd1080),
            Workload::game(&cat[1], Resolution::Hd720),
        ];
        let a = server.measure_colocation(&w);
        let b = server.measure_colocation(&w);
        assert_eq!(a.game_fps(0), b.game_fps(0));
        assert_eq!(a.game_fps(1), b.game_fps(1));
    }

    #[test]
    fn different_seeds_see_different_noise() {
        let cat = catalog();
        let w = [Workload::game(&cat[0], Resolution::Fhd1080)];
        let a = Server::reference(1).measure_colocation(&w);
        let b = Server::reference(2).measure_colocation(&w);
        assert_ne!(a.game_fps(0), b.game_fps(0));
    }

    #[test]
    fn colocation_degrades_games() {
        let cat = catalog();
        let server = Server::noiseless(1);
        // Pick two heavy games (AAA) so interference is guaranteed.
        let heavy: Vec<_> = cat
            .games()
            .iter()
            .filter(|g| g.genre == crate::genre::Genre::AaaOpenWorld)
            .take(2)
            .collect();
        assert_eq!(heavy.len(), 2);
        let solo = server.measure_solo_fps(heavy[0], Resolution::Fhd1080);
        let out = server.measure_colocation(&[
            Workload::game(heavy[0], Resolution::Fhd1080),
            Workload::game(heavy[1], Resolution::Fhd1080),
        ]);
        let coloc = out.game_fps(0).unwrap();
        assert!(out.converged);
        assert!(
            coloc < 0.9 * solo,
            "heavy pair should interfere: solo {solo}, coloc {coloc}"
        );
    }

    #[test]
    fn fixed_point_converges_for_large_colocations() {
        let cat = catalog();
        let server = Server::noiseless(3);
        let ws: Vec<_> = cat
            .games()
            .iter()
            .take(6)
            .map(|g| Workload::game(g, Resolution::Fhd1080))
            .collect();
        let out = server.measure_colocation(&ws);
        assert!(out.converged, "iterations: {}", out.iterations);
        for i in 0..ws.len() {
            let fps = out.game_fps(i).unwrap();
            assert!(fps > 0.0 && fps.is_finite());
        }
    }

    #[test]
    fn benchmark_slowdown_increases_with_game_pressure() {
        let cat = catalog();
        let server = Server::noiseless(5);
        let heavy = cat
            .games()
            .iter()
            .find(|g| g.genre == crate::genre::Genre::AaaOpenWorld)
            .unwrap();
        let light = cat
            .games()
            .iter()
            .find(|g| g.genre == crate::genre::Genre::Indie)
            .unwrap();
        let bench = Microbenchmark::for_resource(Resource::GpuCore);
        let s_heavy = server
            .measure_colocation(&[
                Workload::bench(bench, 0.5),
                Workload::game(heavy, Resolution::Fhd1080),
            ])
            .bench_slowdown(0)
            .unwrap();
        let s_light = server
            .measure_colocation(&[
                Workload::bench(bench, 0.5),
                Workload::game(light, Resolution::Fhd1080),
            ])
            .bench_slowdown(0)
            .unwrap();
        assert!(
            s_heavy > s_light,
            "AAA should slow the GPU benchmark more: {s_heavy} vs {s_light}"
        );
    }

    #[test]
    fn memory_oversubscription_thrashes() {
        let cat = catalog();
        let server = Server::noiseless(7);
        // Find a set of games whose GPU memory sums past capacity.
        let mut set = Vec::new();
        let mut gpu_mem = 0.0;
        for g in cat.games() {
            if gpu_mem <= 1.0 {
                gpu_mem += g.truth.gpu_mem;
                set.push(g);
            }
        }
        assert!(gpu_mem > 1.0, "catalog should oversubscribe eventually");
        let ws: Vec<_> = set
            .iter()
            .map(|g| Workload::game(g, Resolution::Fhd1080))
            .collect();
        let out = server.measure_colocation(&ws);
        let fps = out.game_fps(0).unwrap();
        let solo = server.measure_solo_fps(set[0], Resolution::Fhd1080);
        assert!(
            fps < 0.5 * solo,
            "thrash should crater FPS: {fps} vs {solo}"
        );
    }

    #[test]
    fn faster_server_classes_raise_solo_and_colocated_fps() {
        let cat = catalog();
        let g = &cat[0];
        let res = Resolution::Fhd1080;
        let reference = Server::noiseless(1);
        let mut perf = Server::noiseless(1);
        perf.class = crate::hetero::ServerClass::Performance;
        let mut flag = Server::noiseless(1);
        flag.class = crate::hetero::ServerClass::Flagship;

        let solo_ref = reference.measure_solo_fps(g, res);
        let solo_perf = perf.measure_solo_fps(g, res);
        let solo_flag = flag.measure_solo_fps(g, res);
        assert!(solo_perf > solo_ref);
        assert!(solo_flag > solo_perf);

        let pair = [Workload::game(&cat[0], res), Workload::game(&cat[1], res)];
        let coloc_ref = reference.measure_colocation(&pair).game_fps(0).unwrap();
        let coloc_flag = flag.measure_colocation(&pair).game_fps(0).unwrap();
        assert!(coloc_flag > coloc_ref);
        // Wider headroom also means the *relative* degradation shrinks.
        assert!(coloc_flag / solo_flag > coloc_ref / solo_ref - 1e-9);
    }

    #[test]
    fn timeseries_mean_tracks_steady_state() {
        let cat = catalog();
        let server = Server::noiseless(2);
        let res = Resolution::Fhd1080;
        let pair = [Workload::game(&cat[2], res), Workload::game(&cat[3], res)];
        let steady = server.measure_colocation(&pair).game_fps(0).unwrap();
        let ts = server.measure_timeseries(&pair, 240.0, 2.0);
        assert_eq!(ts.len(), 120);
        let mean = ts.mean(0);
        assert!(
            (mean - steady).abs() / steady < 0.12,
            "timeseries mean {mean} vs steady {steady}"
        );
        // Scenes vary, so the minimum must sit visibly below the mean.
        assert!(ts.min(0) < mean * 0.98);
        assert!(ts.quantile(0, 0.05) <= ts.quantile(0, 0.5));
    }

    #[test]
    fn timeseries_is_deterministic() {
        let cat = catalog();
        let server = Server::reference(3);
        let res = Resolution::Fhd1080;
        let pair = [Workload::game(&cat[4], res), Workload::game(&cat[5], res)];
        let a = server.measure_timeseries(&pair, 30.0, 1.0);
        let b = server.measure_timeseries(&pair, 30.0, 1.0);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn correlated_complex_scenes_cause_temporary_violations() {
        // A colocation measured as "just feasible" on mean FPS can still dip
        // below the bar when scenes align — the Section 7 phenomenon.
        let cat = catalog();
        let server = Server::noiseless(4);
        let res = Resolution::Fhd1080;
        let mut found = false;
        'outer: for i in 0..cat.len() {
            for j in (i + 1)..cat.len() {
                let pair = [Workload::game(&cat[i], res), Workload::game(&cat[j], res)];
                let steady = server.measure_colocation(&pair).game_fps(0).unwrap();
                if !(60.0..75.0).contains(&steady) {
                    continue;
                }
                let ts = server.measure_timeseries(&pair, 300.0, 2.0);
                if ts.violation_rate(0, 60.0) > 0.0 {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(
            found,
            "expected at least one borderline pair with temporary dips"
        );
    }

    #[test]
    fn encoder_overhead_is_small_but_real() {
        let cat = catalog();
        let plain = Server::noiseless(8);
        let mut encoding = Server::noiseless(8);
        encoding.spec.encoder = Some(crate::encode::EncoderModel::default());
        let res = Resolution::Fhd1080;
        let pair = [Workload::game(&cat[0], res), Workload::game(&cat[1], res)];
        let f_plain = plain.measure_colocation(&pair).game_fps(0).unwrap();
        let f_enc = encoding.measure_colocation(&pair).game_fps(0).unwrap();
        assert!(f_enc < f_plain, "encoding must cost something");
        assert!(
            f_enc > 0.90 * f_plain,
            "…but stay insignificant as Sec. 7 claims: {f_enc} vs {f_plain}"
        );
        let d_plain = plain.measure_colocation(&pair).game_delay_ms(0).unwrap();
        let d_enc = encoding.measure_colocation(&pair).game_delay_ms(0).unwrap();
        assert!(d_enc > d_plain);
    }

    #[test]
    fn empty_colocation_is_empty() {
        let server = Server::reference(1);
        let out = server.measure_colocation(&[]);
        assert!(out.outcomes.is_empty());
        assert!(out.converged);
    }

    #[test]
    fn outcome_accessors_distinguish_kinds() {
        let cat = catalog();
        let server = Server::reference(1);
        let out = server.measure_colocation(&[
            Workload::game(&cat[0], Resolution::Fhd1080),
            Workload::bench(Microbenchmark::for_resource(Resource::Llc), 0.5),
        ]);
        assert!(out.game_fps(0).is_some());
        assert!(out.bench_slowdown(0).is_none());
        assert!(out.game_fps(1).is_none());
        assert!(out.bench_slowdown(1).is_some());
        assert!(out.game_fps(2).is_none());
        assert!(out.game_delay_ms(0).unwrap() > 0.0);
    }
}
