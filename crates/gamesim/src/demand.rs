//! Solo resource-demand vectors, the currency of the VBP baseline.
//!
//! Section 2.2 of the paper describes each game "by a resource demand vector
//! which is generally measured as the resource consumptions when the game
//! runs alone on a server", covering CPU, GPU, CPU memory and GPU memory,
//! each normalized to server capacity.

use serde::{Deserialize, Serialize};

/// A game's solo resource demand `(CPU, GPU, CPU-mem, GPU-mem)`, each a
/// fraction of the server's capacity.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DemandVector {
    /// CPU utilization fraction.
    pub cpu: f64,
    /// GPU utilization fraction.
    pub gpu: f64,
    /// Host memory fraction.
    pub cpu_mem: f64,
    /// GPU memory fraction.
    pub gpu_mem: f64,
}

impl DemandVector {
    /// Component-wise sum of two demand vectors.
    pub fn add(&self, other: &DemandVector) -> DemandVector {
        DemandVector {
            cpu: self.cpu + other.cpu,
            gpu: self.gpu + other.gpu,
            cpu_mem: self.cpu_mem + other.cpu_mem,
            gpu_mem: self.gpu_mem + other.gpu_mem,
        }
    }

    /// Whether the vector fits within unit server capacity on every
    /// dimension.
    pub fn fits(&self) -> bool {
        self.cpu <= 1.0 && self.gpu <= 1.0 && self.cpu_mem <= 1.0 && self.gpu_mem <= 1.0
    }

    /// The components as an array `[cpu, gpu, cpu_mem, gpu_mem]`.
    pub fn as_array(&self) -> [f64; 4] {
        [self.cpu, self.gpu, self.cpu_mem, self.gpu_mem]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_fits() {
        let a = DemandVector {
            cpu: 0.45,
            gpu: 0.32,
            cpu_mem: 0.06,
            gpu_mem: 0.05,
        };
        let b = DemandVector {
            cpu: 0.33,
            gpu: 0.60,
            cpu_mem: 0.25,
            gpu_mem: 0.50,
        };
        // The paper's DDDA + Little Witch Academia example: sums fit under
        // VBP even though the actual colocation violates QoS.
        let sum = a.add(&b);
        assert!(sum.fits());
        assert!((sum.cpu - 0.78).abs() < 1e-12);
        let c = DemandVector {
            cpu: 0.3,
            gpu: 0.5,
            cpu_mem: 0.6,
            gpu_mem: 0.0,
        };
        assert!(!sum.add(&c).fits());
    }

    #[test]
    fn as_array_order() {
        let d = DemandVector {
            cpu: 0.1,
            gpu: 0.2,
            cpu_mem: 0.3,
            gpu_mem: 0.4,
        };
        assert_eq!(d.as_array(), [0.1, 0.2, 0.3, 0.4]);
    }
}
