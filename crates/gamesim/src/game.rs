//! The synthetic game model: public identity plus hidden ground truth.
//!
//! A [`Game`] is what the rest of the stack schedules and profiles. Its
//! *public* surface is only what a real cloud-gaming operator could observe:
//! name, genre, supported resolutions, and solo resource utilization (system
//! counters). Everything that determines how the game behaves under
//! contention — sensitivity shapes, pressure vectors, pipeline split — lives
//! in the crate-private `GroundTruth` and is reachable only through
//! measurements on a [`crate::Server`].

use crate::demand::DemandVector;
use crate::genre::{BoundBias, Genre};
use crate::resource::{Resource, ResourceVec, ALL_RESOURCES};
use crate::rng::{rng_for, uniform};
use crate::shape::Shape;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Reference pixel count (1920×1080) at which base pressures are defined.
pub const REF_PIXELS: f64 = 2_073_600.0;

/// A display resolution a player may select (Section 3.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resolution {
    /// 1280×720.
    Hd720,
    /// 1600×900.
    Hd900,
    /// 1920×1080 (the reference resolution).
    Fhd1080,
    /// 2560×1440.
    Qhd1440,
}

/// All supported resolutions, ascending in pixel count.
pub const ALL_RESOLUTIONS: [Resolution; 4] = [
    Resolution::Hd720,
    Resolution::Hd900,
    Resolution::Fhd1080,
    Resolution::Qhd1440,
];

impl Resolution {
    /// Total pixel count `N_pixels`.
    pub fn pixels(self) -> f64 {
        match self {
            Resolution::Hd720 => 1280.0 * 720.0,
            Resolution::Hd900 => 1600.0 * 900.0,
            Resolution::Fhd1080 => 1920.0 * 1080.0,
            Resolution::Qhd1440 => 2560.0 * 1440.0,
        }
    }

    /// Pixel count in megapixels (the unit used for Eq. 2 fits).
    pub fn megapixels(self) -> f64 {
        self.pixels() / 1.0e6
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Resolution::Hd720 => "720p",
            Resolution::Hd900 => "900p",
            Resolution::Fhd1080 => "1080p",
            Resolution::Qhd1440 => "1440p",
        }
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Stable identifier of a game within a catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GameId(pub u32);

impl fmt::Display for GameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{:03}", self.0)
    }
}

/// Hidden per-game physics. Only this crate can read these fields; the
/// prediction stack sees games exclusively through server measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct GroundTruth {
    /// Eq.-2-style solo FPS slope, in FPS per megapixel.
    pub(crate) fps_a: f64,
    /// Eq.-2-style solo FPS intercept.
    pub(crate) fps_b: f64,
    /// Small quadratic curvature (FPS per megapixel²) so that Eq. 2 is an
    /// *approximation*, as in reality, not an identity.
    pub(crate) fps_curve: f64,
    /// PCIe-transfer share of the solo frame time.
    pub(crate) transfer_frac: f64,
    /// Ratio of the non-bottleneck stage to the bottleneck stage.
    pub(crate) minor_ratio: f64,
    /// Whether the CPU stage is the pipeline bottleneck.
    pub(crate) cpu_bound: bool,
    /// Sensitivity strength per resource (inflation `1 + s·φ(x)`).
    pub(crate) sens_strength: ResourceVec,
    /// Sensitivity shape per resource.
    pub(crate) sens_shape: [Shape; 7],
    /// Pressure exerted per resource at the reference resolution.
    pub(crate) pressure_base: ResourceVec,
    /// Exponent of the pixel-count scaling of GPU-side pressures
    /// (Observation 8 holds exactly at 1.0; games deviate slightly).
    pub(crate) pixel_exponent: f64,
    /// Fraction of pressure that persists when the game is throttled
    /// (`p_eff = p · (ω + (1 − ω) · δ)`).
    pub(crate) rate_coupling: f64,
    /// Host memory demand, fraction of server capacity.
    pub(crate) cpu_mem: f64,
    /// GPU memory demand, fraction of server capacity.
    pub(crate) gpu_mem: f64,
}

impl GroundTruth {
    /// Noise-free solo frame rate at a resolution on the reference class.
    pub(crate) fn solo_fps(&self, res: Resolution) -> f64 {
        self.solo_fps_on(res, crate::hetero::ServerClass::Reference)
    }

    /// Noise-free solo frame rate at a resolution on a server class.
    pub(crate) fn solo_fps_on(&self, res: Resolution, class: crate::hetero::ServerClass) -> f64 {
        let (c, g, x) = self.stage_times_ms_on(res, class, 1.0);
        1000.0 / (c.max(g) + x)
    }

    /// Reference-class frame time at a resolution (the calibration anchor).
    fn reference_frame_ms(&self, res: Resolution) -> f64 {
        let m = res.megapixels();
        let m_ref = REF_PIXELS / 1.0e6;
        let fps = (self.fps_b - self.fps_a * m + self.fps_curve * (m - m_ref).powi(2)).max(10.0);
        1000.0 / fps
    }

    /// Frame-stage times in milliseconds: `(cpu, gpu, transfer)`, scaled by
    /// the server class's per-stage speed and the momentary scene
    /// `complexity` (1.0 = the calibrated average scene).
    pub(crate) fn stage_times_ms_on(
        &self,
        res: Resolution,
        class: crate::hetero::ServerClass,
        complexity: f64,
    ) -> (f64, f64, f64) {
        let total = self.reference_frame_ms(res) * complexity;
        let transfer = self.transfer_frac * total;
        let bottleneck = total - transfer;
        let minor = self.minor_ratio * bottleneck;
        let (cpu, gpu) = if self.cpu_bound {
            (bottleneck, minor)
        } else {
            (minor, bottleneck)
        };
        (
            cpu / class.cpu_speed(),
            gpu / class.gpu_speed(),
            transfer / class.pcie_speed(),
        )
    }

    /// Reference-class stage times at average scene complexity.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn stage_times_ms(&self, res: Resolution) -> (f64, f64, f64) {
        self.stage_times_ms_on(res, crate::hetero::ServerClass::Reference, 1.0)
    }

    /// Pressure the game exerts per resource at a resolution, scaled by how
    /// fast it is actually running (`rate_factor` = achieved FPS / solo FPS).
    pub(crate) fn pressures(&self, res: Resolution, rate_factor: f64) -> ResourceVec {
        self.pressures_on(res, rate_factor, crate::hetero::ServerClass::Reference, 1.0)
    }

    /// Pressures on a server class under a momentary scene complexity: a
    /// wider machine absorbs the same load at lower relative utilization,
    /// a heavier scene exerts more.
    pub(crate) fn pressures_on(
        &self,
        res: Resolution,
        rate_factor: f64,
        class: crate::hetero::ServerClass,
        complexity: f64,
    ) -> ResourceVec {
        let scale_px = (res.pixels() / REF_PIXELS).powf(self.pixel_exponent);
        let rate = self.rate_coupling + (1.0 - self.rate_coupling) * rate_factor.clamp(0.0, 1.0);
        ResourceVec::from_fn(|r| {
            let base = self.pressure_base[r];
            let p = if r.scales_with_pixels() {
                base * scale_px
            } else {
                base
            };
            (p * rate * complexity / class.headroom(r)).clamp(0.0, 0.95)
        })
    }

    /// Stage-time inflation factor for the resources of one pipeline stage,
    /// given effective contention levels.
    ///
    /// Per-resource penalties within a stage *add* rather than multiply:
    /// a stage stalled on the cache is often the same cycles it would have
    /// lost to memory bandwidth, so compounding the penalties would
    /// overstate contention (and, empirically, collapses 4-game colocations
    /// far below what the paper's testbed shows).
    pub(crate) fn stage_inflation(
        &self,
        stage: crate::resource::Stage,
        effective: &ResourceVec,
    ) -> f64 {
        let mut penalty = 0.0;
        for r in ALL_RESOURCES {
            if r.stage() == stage {
                let phi = self.sens_shape[r.index()].eval(effective[r]);
                penalty += self.sens_strength[r] * phi;
            }
        }
        1.0 + penalty
    }

    /// Colocated frame time (ms) under per-resource effective contention on
    /// the reference class.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn frame_time_ms(&self, res: Resolution, effective: &ResourceVec) -> f64 {
        self.frame_time_ms_on(res, effective, crate::hetero::ServerClass::Reference, 1.0)
    }

    /// Colocated frame time (ms) on a server class at a scene complexity.
    pub(crate) fn frame_time_ms_on(
        &self,
        res: Resolution,
        effective: &ResourceVec,
        class: crate::hetero::ServerClass,
        complexity: f64,
    ) -> f64 {
        use crate::pipeline::FrameStages;
        use crate::resource::Stage;
        let (c, g, x) = self.stage_times_ms_on(res, class, complexity);
        let solo = FrameStages {
            cpu_ms: c,
            gpu_ms: g,
            transfer_ms: x,
        };
        solo.inflate(
            self.stage_inflation(Stage::Cpu, effective),
            self.stage_inflation(Stage::Gpu, effective),
            self.stage_inflation(Stage::Transfer, effective),
        )
        .total_ms()
    }
}

/// A game in the catalog: public identity plus hidden contention physics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Game {
    /// Stable identifier within the catalog.
    pub id: GameId,
    /// Title (drawn from the paper's 100-game list).
    pub name: String,
    /// Genre biasing the game's generated physics.
    pub genre: Genre,
    pub(crate) truth: GroundTruth,
}

impl Game {
    /// Generate a game's ground truth from a genre template, deterministically
    /// from `(seed, id)`.
    pub fn generate(seed: u64, id: GameId, name: &str, genre: Genre) -> Game {
        let mut rng = rng_for(seed, &[0x6741_4d45 /* "gAME" */, id.0 as u64]);
        let t = genre.template();

        let fps_1080 = uniform(&mut rng, t.fps_1080.0, t.fps_1080.1);
        let drop = uniform(&mut rng, t.res_drop.0, t.res_drop.1);
        let m_1080 = REF_PIXELS / 1.0e6;
        let m_1440 = Resolution::Qhd1440.megapixels();
        // Solve FPS(1440p) = (1 - drop) · FPS(1080p) for the slope.
        let fps_a = fps_1080 * drop / (m_1440 - m_1080);
        let fps_b = fps_1080 + fps_a * m_1080;
        let fps_curve = uniform(&mut rng, -1.5, 1.5) * (fps_1080 / 100.0);

        let cpu_bound = match t.bound {
            BoundBias::Cpu => rng.gen_bool(0.85),
            BoundBias::Gpu => !rng.gen_bool(0.85),
            BoundBias::Mixed => rng.gen_bool(0.5),
        };

        let mut strengths = [0.0; 7];
        let mut shapes = [Shape::Power { gamma: 1.0 }; 7];
        let mut pressures = [0.0; 7];
        for r in ALL_RESOURCES {
            let i = r.index();
            strengths[i] = uniform(&mut rng, t.sens[i].0, t.sens[i].1);
            pressures[i] = uniform(&mut rng, t.pressure[i].0, t.pressure[i].1);
            shapes[i] = draw_shape(&mut rng, r);
        }

        Game {
            id,
            name: name.to_string(),
            genre,
            truth: GroundTruth {
                fps_a,
                fps_b,
                fps_curve,
                transfer_frac: uniform(&mut rng, t.transfer_frac.0, t.transfer_frac.1),
                minor_ratio: uniform(&mut rng, t.minor_ratio.0, t.minor_ratio.1),
                cpu_bound,
                sens_strength: ResourceVec(strengths),
                sens_shape: shapes,
                pressure_base: ResourceVec(pressures),
                pixel_exponent: uniform(&mut rng, 0.90, 1.08),
                rate_coupling: uniform(&mut rng, 0.35, 0.65),
                cpu_mem: uniform(&mut rng, t.cpu_mem.0, t.cpu_mem.1),
                gpu_mem: uniform(&mut rng, t.gpu_mem.0, t.gpu_mem.1),
            },
        }
    }

    /// Solo resource utilization at a resolution — observable through system
    /// performance counters on a real server, so it is public API (the VBP
    /// baseline and Figure 2a consume it).
    pub fn solo_utilization(&self, res: Resolution) -> ResourceVec {
        self.truth.pressures(res, 1.0)
    }

    /// Solo resource-demand vector `(CPU, GPU, CPU-mem, GPU-mem)` at a
    /// resolution — the quantity the paper's Section 2.2 VBP policy packs on.
    pub fn solo_demand(&self, res: Resolution) -> DemandVector {
        let u = self.solo_utilization(res);
        DemandVector {
            cpu: u[Resource::CpuCore],
            gpu: u[Resource::GpuCore],
            cpu_mem: self.truth.cpu_mem,
            gpu_mem: self.truth.gpu_mem,
        }
    }
}

/// Draw a sensitivity shape biased by resource class (cache resources are
/// cliff-prone, cores knee-prone, bandwidth mostly smooth power laws).
fn draw_shape(rng: &mut impl Rng, r: Resource) -> Shape {
    use crate::resource::ResourceClass;
    // Knees and cliffs dominate: real games respond to contention through
    // working-set and scheduling thresholds, so the *position* of a game's
    // knee relative to the aggregate pressure decides its fate — the
    // structure that defeats single-score linear predictors (Observation 4).
    let roll: f64 = rng.gen();
    match r.class() {
        ResourceClass::Cache => {
            if roll < 0.6 {
                Shape::Cliff {
                    at: uniform(rng, 0.20, 0.75),
                }
            } else if roll < 0.9 {
                Shape::Knee {
                    steep: uniform(rng, 10.0, 20.0),
                    mid: uniform(rng, 0.25, 0.75),
                }
            } else {
                Shape::Power {
                    gamma: uniform(rng, 1.2, 2.8),
                }
            }
        }
        ResourceClass::Core => {
            if roll < 0.6 {
                Shape::Knee {
                    steep: uniform(rng, 8.0, 18.0),
                    mid: uniform(rng, 0.30, 0.80),
                }
            } else if roll < 0.9 {
                Shape::Power {
                    gamma: uniform(rng, 0.8, 2.5),
                }
            } else {
                Shape::Power {
                    gamma: uniform(rng, 0.4, 0.8),
                }
            }
        }
        ResourceClass::Bandwidth => {
            if roll < 0.5 {
                Shape::Power {
                    gamma: uniform(rng, 0.9, 2.2),
                }
            } else {
                Shape::Knee {
                    steep: uniform(rng, 8.0, 16.0),
                    mid: uniform(rng, 0.35, 0.80),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_game(genre: Genre) -> Game {
        Game::generate(42, GameId(7), "Test Game", genre)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Game::generate(42, GameId(3), "X", Genre::Shooter);
        let b = Game::generate(42, GameId(3), "X", Genre::Shooter);
        assert_eq!(a.truth.fps_b, b.truth.fps_b);
        assert_eq!(a.truth.pressure_base, b.truth.pressure_base);
        let c = Game::generate(43, GameId(3), "X", Genre::Shooter);
        assert_ne!(a.truth.fps_b, c.truth.fps_b);
    }

    #[test]
    fn solo_fps_decreases_with_resolution() {
        for genre in crate::genre::ALL_GENRES {
            let g = sample_game(genre);
            let mut prev = f64::INFINITY;
            for res in ALL_RESOLUTIONS {
                let fps = g.truth.solo_fps(res);
                assert!(fps > 0.0);
                assert!(fps < prev + 1.0, "{genre:?}: fps should fall with pixels");
                prev = fps;
            }
        }
    }

    #[test]
    fn stage_times_reconstruct_frame_time() {
        let g = sample_game(Genre::AaaOpenWorld);
        for res in ALL_RESOLUTIONS {
            let (c, gp, x) = g.truth.stage_times_ms(res);
            let total = c.max(gp) + x;
            let expect = 1000.0 / g.truth.solo_fps(res);
            assert!((total - expect).abs() < 1e-9);
            assert!(c > 0.0 && gp > 0.0 && x > 0.0);
        }
    }

    #[test]
    fn no_contention_means_no_degradation() {
        let g = sample_game(Genre::Moba);
        let t = g
            .truth
            .frame_time_ms(Resolution::Fhd1080, &ResourceVec::ZERO);
        let solo = 1000.0 / g.truth.solo_fps(Resolution::Fhd1080);
        assert!((t - solo).abs() < 1e-9);
    }

    #[test]
    fn contention_inflates_frame_time_monotonically() {
        let g = sample_game(Genre::Shooter);
        let mut prev = 0.0;
        for step in 0..=10 {
            let e = ResourceVec::from_fn(|_| step as f64 / 10.0);
            let t = g.truth.frame_time_ms(Resolution::Fhd1080, &e);
            assert!(t >= prev - 1e-9, "frame time must not shrink with pressure");
            prev = t;
        }
    }

    #[test]
    fn throttled_games_exert_less_pressure() {
        let g = sample_game(Genre::AaaOpenWorld);
        let full = g.truth.pressures(Resolution::Fhd1080, 1.0);
        let half = g.truth.pressures(Resolution::Fhd1080, 0.5);
        for r in ALL_RESOURCES {
            assert!(half[r] < full[r] + 1e-12);
            assert!(half[r] > 0.0, "rate coupling keeps some floor pressure");
        }
    }

    #[test]
    fn gpu_pressure_scales_with_pixels_cpu_does_not() {
        let g = sample_game(Genre::Sports);
        let lo = g.truth.pressures(Resolution::Hd720, 1.0);
        let hi = g.truth.pressures(Resolution::Qhd1440, 1.0);
        assert!(hi[Resource::GpuCore] > lo[Resource::GpuCore]);
        assert!(hi[Resource::GpuBw] > lo[Resource::GpuBw]);
        assert_eq!(hi[Resource::CpuCore], lo[Resource::CpuCore]);
        assert_eq!(hi[Resource::Llc], lo[Resource::Llc]);
        assert_eq!(hi[Resource::MemBw], lo[Resource::MemBw]);
    }

    #[test]
    fn demand_vector_is_in_unit_range() {
        for genre in crate::genre::ALL_GENRES {
            let g = sample_game(genre);
            let d = g.solo_demand(Resolution::Fhd1080);
            for v in [d.cpu, d.gpu, d.cpu_mem, d.gpu_mem] {
                assert!((0.0..=1.0).contains(&v), "{genre:?}: {d:?}");
            }
        }
    }

    #[test]
    fn resolution_labels_and_pixels() {
        assert_eq!(Resolution::Fhd1080.pixels(), 2_073_600.0);
        assert_eq!(Resolution::Hd720.label(), "720p");
        assert!(Resolution::Qhd1440.megapixels() > 3.6);
    }
}
