//! Parametric sensitivity-shape functions.
//!
//! Observation 4 of the paper: *"The sensitivity of a game does not
//! necessarily change linearly with the pressure for some shared resources
//! such as GPU-CE, LLC etc."* — so the ground-truth response of a game to
//! contention pressure is drawn from a family of monotone, nonlinear shapes,
//! not a single linear ramp.
//!
//! A shape is a function `φ: [0,1] → [0,1]` with `φ(0) = 0`, `φ(1) = 1`,
//! monotone non-decreasing. The game's stage-time inflation under effective
//! contention `x` on resource `r` is `1 + strength · φ(x)`.

use serde::{Deserialize, Serialize};

/// A monotone nonlinear response shape `φ: [0,1] → [0,1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Shape {
    /// Power law `x^gamma`. `gamma < 1` is concave (early pain), `gamma > 1`
    /// convex (pain only near saturation), `gamma = 1` linear.
    Power {
        /// Exponent, in `[0.35, 3.5]` for generated games.
        gamma: f64,
    },
    /// Logistic knee: flat, then a sharp rise around `mid`, then flat again.
    /// Typical of cache working-set cliffs and scheduler saturation.
    Knee {
        /// Steepness of the transition (larger = sharper), `> 0`.
        steep: f64,
        /// Pressure at which the transition is centred, in `(0, 1)`.
        mid: f64,
    },
    /// Piecewise cliff: negligible response below `at`, then a linear climb.
    /// Models capacity cliffs (working set suddenly no longer fits).
    Cliff {
        /// Pressure below which the game barely responds, in `(0, 1)`.
        at: f64,
    },
}

impl Shape {
    /// Evaluate the shape at pressure `x` (clamped into `[0, 1]`).
    pub fn eval(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        match *self {
            Shape::Power { gamma } => x.powf(gamma),
            Shape::Knee { steep, mid } => {
                // Normalized logistic so that eval(0) = 0 and eval(1) = 1.
                let sig = |t: f64| 1.0 / (1.0 + (-steep * (t - mid)).exp());
                let lo = sig(0.0);
                let hi = sig(1.0);
                (sig(x) - lo) / (hi - lo)
            }
            Shape::Cliff { at } => {
                if x <= at {
                    // A tiny slope below the cliff keeps the shape strictly
                    // monotone (helps the learners and mirrors reality: some
                    // interference exists at any pressure).
                    0.02 * x / at.max(1e-9)
                } else {
                    0.02 + 0.98 * (x - at) / (1.0 - at)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn shapes() -> Vec<Shape> {
        vec![
            Shape::Power { gamma: 0.5 },
            Shape::Power { gamma: 1.0 },
            Shape::Power { gamma: 2.7 },
            Shape::Knee {
                steep: 12.0,
                mid: 0.55,
            },
            Shape::Knee {
                steep: 6.0,
                mid: 0.3,
            },
            Shape::Cliff { at: 0.6 },
            Shape::Cliff { at: 0.25 },
        ]
    }

    #[test]
    fn endpoints_are_zero_and_one() {
        for s in shapes() {
            assert!(s.eval(0.0).abs() < 1e-12, "{s:?} at 0");
            assert!((s.eval(1.0) - 1.0).abs() < 1e-9, "{s:?} at 1");
        }
    }

    #[test]
    fn linear_power_is_identity() {
        let s = Shape::Power { gamma: 1.0 };
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            assert!((s.eval(x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn knee_is_steep_around_mid() {
        let s = Shape::Knee {
            steep: 14.0,
            mid: 0.5,
        };
        let below = s.eval(0.35);
        let above = s.eval(0.65);
        assert!(
            above - below > 0.5,
            "knee should rise sharply: {below} {above}"
        );
    }

    #[test]
    fn cliff_is_flat_then_rises() {
        let s = Shape::Cliff { at: 0.6 };
        assert!(s.eval(0.5) < 0.03);
        assert!(s.eval(0.8) > 0.4);
    }

    proptest! {
        #[test]
        fn monotone_and_bounded(idx in 0usize..7, a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
            let s = shapes()[idx];
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let (ylo, yhi) = (s.eval(lo), s.eval(hi));
            prop_assert!(ylo <= yhi + 1e-12, "monotonicity violated for {s:?}");
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ylo));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&yhi));
        }

        #[test]
        fn out_of_range_inputs_are_clamped(x in -5.0f64..5.0) {
            for s in shapes() {
                let y = s.eval(x);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&y));
            }
        }
    }
}
