//! Genre templates biasing the ground-truth parameters of generated games.
//!
//! The paper evaluates "100 popular games of various genres" (Section 1) and
//! its Figure 2 shows resource demand and solo frame rate varying wildly
//! across them. Genres give the synthetic catalog the same structured
//! diversity: a MOBA is CPU-lean, light on the GPU and renders at very high
//! frame rates; an AAA open-world title saturates the GPU at 45–90 FPS; an
//! indie title barely registers on any resource.

use crate::resource::NUM_RESOURCES;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Game genre; determines the parameter ranges the generator draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Genre {
    /// Multiplayer online battle arena (Dota2, LoL): CPU-lean, very high FPS.
    Moba,
    /// AAA open-world / action-adventure (Far Cry 4, The Witcher 3):
    /// GPU-saturating, broadly sensitive.
    AaaOpenWorld,
    /// Online shooter (H1Z1, Call of Duty): balanced, bandwidth-hungry.
    Shooter,
    /// MMO (World of Warcraft, Granado Espada): CPU-bound simulation with a
    /// light but GPU-sensitive renderer.
    Mmo,
    /// Strategy / simulation (StarCraft 2, Cities: Skylines): CPU and
    /// LLC-heavy, cache-cliff prone.
    Strategy,
    /// Indie / 2D (Stardew Valley, Slay the Spire): light on everything.
    Indie,
    /// Sports / racing (NBA 2K17, Need for Speed): GPU-moderate.
    Sports,
    /// Action / fighting (TEKKEN 7, DmC): balanced mid-weight.
    Action,
}

/// All genres, for iteration.
pub const ALL_GENRES: [Genre; 8] = [
    Genre::Moba,
    Genre::AaaOpenWorld,
    Genre::Shooter,
    Genre::Mmo,
    Genre::Strategy,
    Genre::Indie,
    Genre::Sports,
    Genre::Action,
];

/// Which frame-pipeline stage tends to dominate for a genre.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoundBias {
    /// The CPU (simulation) stage is the bottleneck.
    Cpu,
    /// The GPU (render) stage is the bottleneck.
    Gpu,
    /// Either stage may dominate; drawn per game.
    Mixed,
}

/// Inclusive parameter ranges from which a game's ground truth is drawn.
///
/// Resource-indexed arrays follow [`crate::resource::ALL_RESOURCES`] order:
/// `[CPU-CE, LLC, MEM-BW, GPU-CE, GPU-BW, GPU-L2, PCIe-BW]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenreTemplate {
    /// Solo frame rate at 1080p.
    pub fps_1080: (f64, f64),
    /// Fractional FPS drop going from 1080p to 1440p (controls the Eq. 2
    /// slope `a`).
    pub res_drop: (f64, f64),
    /// Which pipeline stage dominates.
    pub bound: BoundBias,
    /// PCIe-transfer share of the solo frame time.
    pub transfer_frac: (f64, f64),
    /// Ratio of the non-bottleneck stage to the bottleneck stage.
    pub minor_ratio: (f64, f64),
    /// Sensitivity strength range per resource (stage-time inflation is
    /// `1 + strength · φ(pressure)`).
    pub sens: [(f64, f64); NUM_RESOURCES],
    /// Base pressure (intensity ground truth) per resource at 1080p.
    pub pressure: [(f64, f64); NUM_RESOURCES],
    /// Host memory demand (fraction of server capacity).
    pub cpu_mem: (f64, f64),
    /// GPU memory demand (fraction of server capacity).
    pub gpu_mem: (f64, f64),
}

impl Genre {
    /// The generator template for this genre.
    pub fn template(self) -> GenreTemplate {
        match self {
            Genre::Moba => GenreTemplate {
                fps_1080: (130.0, 260.0),
                res_drop: (0.10, 0.25),
                bound: BoundBias::Cpu,
                transfer_frac: (0.03, 0.08),
                minor_ratio: (0.45, 0.80),
                sens: [
                    (0.8, 1.8), // CPU-CE
                    (0.4, 1.2), // LLC
                    (0.3, 0.9), // MEM-BW
                    (0.5, 1.5), // GPU-CE
                    (0.3, 0.9), // GPU-BW
                    (0.2, 0.8), // GPU-L2
                    (0.2, 0.6), // PCIe-BW
                ],
                pressure: [
                    (0.25, 0.45),
                    (0.15, 0.35),
                    (0.10, 0.30),
                    (0.20, 0.40),
                    (0.15, 0.35),
                    (0.15, 0.30),
                    (0.05, 0.20),
                ],
                cpu_mem: (0.05, 0.12),
                gpu_mem: (0.03, 0.08),
            },
            Genre::AaaOpenWorld => GenreTemplate {
                fps_1080: (45.0, 95.0),
                res_drop: (0.25, 0.45),
                bound: BoundBias::Gpu,
                transfer_frac: (0.05, 0.12),
                minor_ratio: (0.50, 0.85),
                sens: [
                    (0.8, 2.0),
                    (0.6, 1.6),
                    (0.6, 1.6),
                    (1.5, 3.0),
                    (1.0, 2.4),
                    (0.8, 2.0),
                    (0.4, 1.2),
                ],
                pressure: [
                    (0.35, 0.60),
                    (0.30, 0.55),
                    (0.30, 0.55),
                    (0.55, 0.85),
                    (0.45, 0.75),
                    (0.40, 0.65),
                    (0.15, 0.40),
                ],
                cpu_mem: (0.15, 0.28),
                gpu_mem: (0.22, 0.40),
            },
            Genre::Shooter => GenreTemplate {
                fps_1080: (75.0, 150.0),
                res_drop: (0.20, 0.40),
                bound: BoundBias::Mixed,
                transfer_frac: (0.04, 0.10),
                minor_ratio: (0.55, 0.90),
                sens: [
                    (0.8, 2.0),
                    (0.5, 1.4),
                    (0.6, 1.8),
                    (1.0, 2.4),
                    (0.8, 2.0),
                    (0.5, 1.4),
                    (0.3, 1.0),
                ],
                pressure: [
                    (0.30, 0.55),
                    (0.20, 0.45),
                    (0.25, 0.55),
                    (0.40, 0.70),
                    (0.35, 0.65),
                    (0.25, 0.50),
                    (0.10, 0.35),
                ],
                cpu_mem: (0.10, 0.22),
                gpu_mem: (0.15, 0.30),
            },
            Genre::Mmo => GenreTemplate {
                fps_1080: (60, 140).map_f64(),
                res_drop: (0.12, 0.28),
                bound: BoundBias::Cpu,
                transfer_frac: (0.03, 0.09),
                minor_ratio: (0.40, 0.75),
                sens: [
                    (1.0, 2.2),
                    (0.6, 1.6),
                    (0.5, 1.3),
                    (1.2, 2.8), // very sensitive renderer despite light GPU use
                    (0.4, 1.2),
                    (0.3, 1.0),
                    (0.2, 0.8),
                ],
                pressure: [
                    (0.30, 0.55),
                    (0.25, 0.45),
                    (0.15, 0.40),
                    (0.15, 0.35), // light GPU intensity (Observation 2)
                    (0.10, 0.30),
                    (0.10, 0.30),
                    (0.05, 0.20),
                ],
                cpu_mem: (0.12, 0.25),
                gpu_mem: (0.08, 0.20),
            },
            Genre::Strategy => GenreTemplate {
                fps_1080: (50.0, 115.0),
                res_drop: (0.10, 0.25),
                bound: BoundBias::Cpu,
                transfer_frac: (0.03, 0.08),
                minor_ratio: (0.35, 0.70),
                sens: [
                    (1.2, 2.8), // heavy CPU sensitivity (Elder-Scrolls-like 70%)
                    (1.0, 2.4), // cache-cliff prone
                    (0.6, 1.6),
                    (0.6, 1.6),
                    (0.4, 1.2),
                    (0.4, 1.2),
                    (0.2, 0.8),
                ],
                pressure: [
                    (0.40, 0.70),
                    (0.30, 0.60),
                    (0.25, 0.55),
                    (0.20, 0.45),
                    (0.15, 0.40),
                    (0.15, 0.40),
                    (0.05, 0.25),
                ],
                cpu_mem: (0.12, 0.27),
                gpu_mem: (0.08, 0.20),
            },
            Genre::Indie => GenreTemplate {
                fps_1080: (150.0, 330.0),
                res_drop: (0.05, 0.18),
                bound: BoundBias::Mixed,
                transfer_frac: (0.02, 0.06),
                minor_ratio: (0.50, 0.90),
                sens: [
                    (0.2, 0.9),
                    (0.1, 0.6),
                    (0.1, 0.6),
                    (0.2, 0.9),
                    (0.1, 0.6),
                    (0.1, 0.5),
                    (0.1, 0.4),
                ],
                pressure: [
                    (0.05, 0.20),
                    (0.03, 0.15),
                    (0.03, 0.15),
                    (0.05, 0.20),
                    (0.03, 0.15),
                    (0.03, 0.12),
                    (0.02, 0.10),
                ],
                cpu_mem: (0.03, 0.08),
                gpu_mem: (0.03, 0.08),
            },
            Genre::Sports => GenreTemplate {
                fps_1080: (60.0, 125.0),
                res_drop: (0.15, 0.35),
                bound: BoundBias::Gpu,
                transfer_frac: (0.04, 0.10),
                minor_ratio: (0.45, 0.80),
                sens: [
                    (0.6, 1.6),
                    (0.4, 1.2),
                    (0.4, 1.2),
                    (1.0, 2.2),
                    (0.7, 1.8),
                    (0.5, 1.4),
                    (0.3, 1.0),
                ],
                pressure: [
                    (0.20, 0.45),
                    (0.15, 0.40),
                    (0.15, 0.40),
                    (0.35, 0.65),
                    (0.30, 0.55),
                    (0.25, 0.45),
                    (0.10, 0.30),
                ],
                cpu_mem: (0.08, 0.20),
                gpu_mem: (0.12, 0.28),
            },
            Genre::Action => GenreTemplate {
                fps_1080: (60.0, 135.0),
                res_drop: (0.20, 0.40),
                bound: BoundBias::Mixed,
                transfer_frac: (0.04, 0.10),
                minor_ratio: (0.50, 0.85),
                sens: [
                    (0.7, 1.8),
                    (0.5, 1.4),
                    (0.5, 1.4),
                    (0.9, 2.2),
                    (0.6, 1.6),
                    (0.4, 1.2),
                    (0.3, 1.0),
                ],
                pressure: [
                    (0.25, 0.50),
                    (0.20, 0.45),
                    (0.20, 0.45),
                    (0.35, 0.65),
                    (0.25, 0.55),
                    (0.20, 0.45),
                    (0.10, 0.30),
                ],
                cpu_mem: (0.10, 0.22),
                gpu_mem: (0.12, 0.25),
            },
        }
    }
}

impl fmt::Display for Genre {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Genre::Moba => "MOBA",
            Genre::AaaOpenWorld => "AAA open-world",
            Genre::Shooter => "shooter",
            Genre::Mmo => "MMO",
            Genre::Strategy => "strategy",
            Genre::Indie => "indie",
            Genre::Sports => "sports",
            Genre::Action => "action",
        };
        f.write_str(s)
    }
}

/// Tiny helper so the MMO tuple above reads cleanly.
trait MapF64 {
    fn map_f64(self) -> (f64, f64);
}
impl MapF64 for (i32, i32) {
    fn map_f64(self) -> (f64, f64) {
        (self.0 as f64, self.1 as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_templates_have_sane_ranges() {
        for g in ALL_GENRES {
            let t = g.template();
            assert!(t.fps_1080.0 > 0.0 && t.fps_1080.1 >= t.fps_1080.0, "{g:?}");
            assert!(t.res_drop.0 >= 0.0 && t.res_drop.1 < 1.0);
            assert!(t.transfer_frac.1 < 0.5);
            assert!(t.minor_ratio.1 <= 1.0);
            for (lo, hi) in t.sens {
                assert!(lo >= 0.0 && hi >= lo && hi <= 3.5);
            }
            for (lo, hi) in t.pressure {
                assert!(lo >= 0.0 && hi >= lo && hi <= 0.9);
            }
            assert!(t.cpu_mem.1 <= 1.0 && t.gpu_mem.1 <= 1.0);
        }
    }

    #[test]
    fn genres_are_diverse_in_fps() {
        let indie = Genre::Indie.template().fps_1080;
        let aaa = Genre::AaaOpenWorld.template().fps_1080;
        assert!(indie.0 > aaa.1, "indie floor should exceed AAA ceiling");
    }

    #[test]
    fn mmo_reproduces_observation_2() {
        // Granado-Espada-like: GPU-CE sensitivity can be high while GPU-CE
        // intensity stays light.
        let t = Genre::Mmo.template();
        assert!(t.sens[3].1 > 2.0);
        assert!(t.pressure[3].1 <= 0.4);
    }
}
