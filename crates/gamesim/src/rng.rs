//! Deterministic randomness utilities.
//!
//! Every stochastic quantity in the simulator (game generation, measurement
//! noise) is derived from explicit seeds through ChaCha8, so that every
//! experiment in the reproduction harness is bit-for-bit reproducible across
//! runs and platforms. `StdRng` is deliberately avoided: its algorithm is not
//! stability-guaranteed across `rand` versions.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A cheap, well-mixed 64-bit hash (SplitMix64 finalizer) used to derive
/// sub-seeds from an experiment seed plus context words.
#[inline]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a sub-seed from a base seed and a sequence of context words.
///
/// Different contexts yield statistically independent streams; identical
/// contexts always yield the same stream.
pub fn derive_seed(base: u64, context: &[u64]) -> u64 {
    let mut h = mix(base ^ 0xA076_1D64_78BD_642F);
    for &w in context {
        h = mix(h ^ w);
    }
    h
}

/// A seeded ChaCha8 RNG for a given context.
pub fn rng_for(base: u64, context: &[u64]) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(derive_seed(base, context))
}

/// Sample a standard normal variate via the Box–Muller transform.
///
/// Implemented by hand because `rand_distr` is outside the sanctioned
/// dependency set; two uniform draws suffice.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample a normal variate truncated at ±`clip` standard deviations.
pub fn clipped_normal(rng: &mut impl Rng, clip: f64) -> f64 {
    standard_normal(rng).clamp(-clip, clip)
}

/// Sample uniformly from `[lo, hi]`.
pub fn uniform(rng: &mut impl Rng, lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        return lo;
    }
    rng.gen_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_context_sensitive() {
        let a = derive_seed(42, &[1, 2, 3]);
        let b = derive_seed(42, &[1, 2, 3]);
        let c = derive_seed(42, &[1, 2, 4]);
        let d = derive_seed(43, &[1, 2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn rng_streams_reproduce() {
        let mut r1 = rng_for(7, &[9]);
        let mut r2 = rng_for(7, &[9]);
        for _ in 0..16 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn standard_normal_moments_are_sane() {
        let mut rng = rng_for(1234, &[0]);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let z = standard_normal(&mut rng);
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn clipped_normal_respects_clip() {
        let mut rng = rng_for(5, &[5]);
        for _ in 0..10_000 {
            let z = clipped_normal(&mut rng, 2.5);
            assert!(z.abs() <= 2.5);
        }
    }

    #[test]
    fn uniform_handles_degenerate_range() {
        let mut rng = rng_for(5, &[6]);
        assert_eq!(uniform(&mut rng, 3.0, 3.0), 3.0);
        assert_eq!(uniform(&mut rng, 3.0, 2.0), 3.0);
    }
}
