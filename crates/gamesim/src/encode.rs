//! Video encoding and streaming overhead (paper Section 7).
//!
//! "Servers not only run games, but also need to encode the outputs into
//! videos and stream the videos to the players. Modern GPUs … have
//! integrated video encoders … which would generate insignificant impact on
//! game performance." The simulator models that *insignificant but nonzero*
//! impact: one hardware-encoder session per game adds a small fixed GPU-core
//! load plus PCIe traffic proportional to the encoded pixel rate, and an
//! encode latency to the interaction delay.

use crate::game::Resolution;
use crate::resource::{Resource, ResourceVec};
use serde::{Deserialize, Serialize};

/// A hardware (NVENC-style) encoder model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncoderModel {
    /// Fixed GPU-core pressure per encoding session.
    pub gpu_core_overhead: f64,
    /// PCIe pressure per encoded megapixel (the encoded stream leaves the
    /// GPU over the bus).
    pub pcie_per_megapixel: f64,
    /// Added per-frame encode latency in milliseconds.
    pub latency_ms: f64,
}

impl Default for EncoderModel {
    fn default() -> Self {
        EncoderModel {
            gpu_core_overhead: 0.02,
            pcie_per_megapixel: 0.015,
            latency_ms: 1.5,
        }
    }
}

impl EncoderModel {
    /// Extra pressure one encoding session exerts at a resolution.
    pub fn session_pressure(&self, res: Resolution) -> ResourceVec {
        let mut p = ResourceVec::ZERO;
        p[Resource::GpuCore] = self.gpu_core_overhead;
        p[Resource::PcieBw] = self.pcie_per_megapixel * res.megapixels();
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_scales_with_resolution() {
        let e = EncoderModel::default();
        let lo = e.session_pressure(Resolution::Hd720);
        let hi = e.session_pressure(Resolution::Qhd1440);
        assert_eq!(lo[Resource::GpuCore], hi[Resource::GpuCore]);
        assert!(hi[Resource::PcieBw] > lo[Resource::PcieBw]);
        assert_eq!(lo[Resource::CpuCore], 0.0);
    }

    #[test]
    fn overhead_is_insignificant_as_the_paper_claims() {
        // A single session's overhead must stay well below typical game
        // pressure on the same resources.
        let e = EncoderModel::default();
        let p = e.session_pressure(Resolution::Qhd1440);
        assert!(p[Resource::GpuCore] < 0.05);
        assert!(p[Resource::PcieBw] < 0.08);
    }
}
