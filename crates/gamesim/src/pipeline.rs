//! The frame-pipeline timing model.
//!
//! A game loop "consists of many tasks (e.g., processing user input, updating
//! game state, and rendering frames), which consume many shared resources
//! across CPU and GPU" (paper Section 1). The simulator condenses this into
//! three stages per frame:
//!
//! * a **CPU stage** (input + simulation) running on CPU-CE / LLC / MEM-BW,
//! * a **GPU stage** (rendering) running on GPU-CE / GPU-BW / GPU-L2,
//! * a **transfer stage** (host↔device traffic) on PCIe-BW.
//!
//! CPU and GPU stages overlap (double-buffered pipelines), so the frame time
//! is `max(cpu, gpu) + transfer`. This single `max` is what makes
//! interference *non-separable* across resources: pressure on the GPU is
//! invisible to a CPU-bound game until the GPU stage overtakes — producing
//! exactly the nonlinear sensitivity knees the paper observes (Observation 4)
//! and defeating per-resource-additive predictors like SMiTe.

use serde::{Deserialize, Serialize};

/// Per-frame stage times in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameStages {
    /// CPU (simulation) stage.
    pub cpu_ms: f64,
    /// GPU (render) stage.
    pub gpu_ms: f64,
    /// PCIe transfer stage.
    pub transfer_ms: f64,
}

impl FrameStages {
    /// Total frame time under the overlap model: `max(cpu, gpu) + transfer`.
    pub fn total_ms(&self) -> f64 {
        self.cpu_ms.max(self.gpu_ms) + self.transfer_ms
    }

    /// Frame rate implied by the total frame time.
    pub fn fps(&self) -> f64 {
        1000.0 / self.total_ms()
    }

    /// Apply per-stage inflation factors (each ≥ 1 under contention).
    pub fn inflate(&self, cpu: f64, gpu: f64, transfer: f64) -> FrameStages {
        FrameStages {
            cpu_ms: self.cpu_ms * cpu,
            gpu_ms: self.gpu_ms * gpu,
            transfer_ms: self.transfer_ms * transfer,
        }
    }

    /// Which stage currently bottlenecks the pipeline.
    pub fn bottleneck(&self) -> crate::resource::Stage {
        use crate::resource::Stage;
        if self.cpu_ms >= self.gpu_ms {
            Stage::Cpu
        } else {
            Stage::Gpu
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Stage;

    #[test]
    fn total_uses_overlap_model() {
        let f = FrameStages {
            cpu_ms: 6.0,
            gpu_ms: 9.0,
            transfer_ms: 1.0,
        };
        assert_eq!(f.total_ms(), 10.0);
        assert_eq!(f.fps(), 100.0);
        assert_eq!(f.bottleneck(), Stage::Gpu);
    }

    #[test]
    fn inflating_the_minor_stage_can_be_free() {
        // A CPU-bound frame: small GPU inflation does not change the total.
        let f = FrameStages {
            cpu_ms: 10.0,
            gpu_ms: 5.0,
            transfer_ms: 1.0,
        };
        let g = f.inflate(1.0, 1.5, 1.0);
        assert_eq!(g.total_ms(), f.total_ms());
        // ...until the GPU stage overtakes.
        let h = f.inflate(1.0, 2.5, 1.0);
        assert!(h.total_ms() > f.total_ms());
        assert_eq!(h.bottleneck(), Stage::Gpu);
    }

    #[test]
    fn transfer_always_adds() {
        let f = FrameStages {
            cpu_ms: 10.0,
            gpu_ms: 5.0,
            transfer_ms: 1.0,
        };
        let g = f.inflate(1.0, 1.0, 2.0);
        assert!((g.total_ms() - (f.total_ms() + 1.0)).abs() < 1e-12);
    }
}
