//! Training-data collection (paper Section 3.5 and the setup of Section 4).
//!
//! The paper measures 700 real game colocations — 500 pairs, 100 triples and
//! 100 quads of games drawn at random from the 100-game catalog, each game at
//! a random resolution — and turns a measured colocation of `k` games into
//! `k` training samples (one per member game). 400 colocations form the
//! training pool and 300 the test pool.

use crate::features::{cm_features, rm_features};
use crate::profile::GameProfile;
use gaugur_gamesim::{GameCatalog, GameId, Resolution, ResourceVec, Server, Workload};
use gaugur_ml::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A game placement request: which game, at which resolution.
pub type Placement = (GameId, Resolution);

/// How many colocations of each size to measure.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ColocationPlan {
    /// Number of 2-game colocations (paper: 500).
    pub pairs: usize,
    /// Number of 3-game colocations (paper: 100).
    pub triples: usize,
    /// Number of 4-game colocations (paper: 100).
    pub quads: usize,
    /// Seed for game/resolution sampling.
    pub seed: u64,
}

impl Default for ColocationPlan {
    fn default() -> Self {
        ColocationPlan {
            pairs: 500,
            triples: 100,
            quads: 100,
            seed: 0,
        }
    }
}

/// A measured colocation: members and their observed frame rates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasuredColocation {
    /// The colocated games (distinct) and their resolutions.
    pub members: Vec<Placement>,
    /// Measured FPS per member, same order.
    pub fps: Vec<f64>,
}

impl MeasuredColocation {
    /// Number of colocated games.
    pub fn size(&self) -> usize {
        self.members.len()
    }
}

/// Draw the colocation sets of a plan: distinct games per colocation, random
/// resolutions, deterministic in the plan seed. Colocations are distinct as
/// multisets of `(game, resolution)` — duplicates would waste measurement
/// budget and, worse, leak across a later train/test split — so collisions
/// are redrawn (bounded; tiny catalogs that exhaust the space keep the
/// duplicate rather than loop forever).
pub fn plan_colocations(catalog: &GameCatalog, plan: &ColocationPlan) -> Vec<Vec<Placement>> {
    let mut rng = gaugur_gamesim::rng::rng_for(plan.seed, &[0x504c_414e]);
    let resolutions = gaugur_gamesim::game::ALL_RESOLUTIONS;
    let ids: Vec<GameId> = catalog.games().iter().map(|g| g.id).collect();
    let mut out = Vec::with_capacity(plan.pairs + plan.triples + plan.quads);
    let mut seen: HashSet<Vec<(u32, Resolution)>> = HashSet::new();
    for (count, size) in [(plan.pairs, 2), (plan.triples, 3), (plan.quads, 4)] {
        for _ in 0..count {
            let mut attempts = 0;
            loop {
                let mut pool = ids.clone();
                pool.shuffle(&mut rng);
                let members: Vec<Placement> = pool[..size]
                    .iter()
                    .map(|&id| (id, resolutions[rng.gen_range(0..resolutions.len())]))
                    .collect();
                let mut key: Vec<(u32, Resolution)> =
                    members.iter().map(|&(id, res)| (id.0, res)).collect();
                key.sort_unstable_by_key(|&(id, res)| (id, res as u8));
                attempts += 1;
                if seen.insert(key) || attempts > 64 {
                    out.push(members);
                    break;
                }
            }
        }
    }
    out
}

/// Measure a set of colocations on a server (in parallel — the simulator is
/// the expensive part of this offline step, as the physical testbed is in
/// the paper).
pub fn measure_colocations(
    server: &Server,
    catalog: &GameCatalog,
    colocations: &[Vec<Placement>],
) -> Vec<MeasuredColocation> {
    colocations
        .par_iter()
        .map(|members| {
            let workloads: Vec<Workload<'_>> = members
                .iter()
                .map(|&(id, res)| Workload::game(catalog.get(id).expect("id in catalog"), res))
                .collect();
            let out = server.measure_colocation(&workloads);
            let fps = (0..members.len())
                .map(|i| out.game_fps(i).expect("game workload"))
                .collect();
            MeasuredColocation {
                members: members.clone(),
                fps,
            }
        })
        .collect()
}

/// Keyed access to the profiles of a catalog.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProfileStore {
    profiles: HashMap<GameId, GameProfile>,
}

impl ProfileStore {
    /// Build from a list of profiles.
    pub fn new(profiles: Vec<GameProfile>) -> ProfileStore {
        ProfileStore {
            profiles: profiles.into_iter().map(|p| (p.id, p)).collect(),
        }
    }

    /// The profile of one game.
    pub fn get(&self, id: GameId) -> &GameProfile {
        self.profiles
            .get(&id)
            .unwrap_or_else(|| panic!("no profile for game {id}"))
    }

    /// Whether a game has been profiled.
    pub fn contains(&self, id: GameId) -> bool {
        self.profiles.contains_key(&id)
    }

    /// Number of profiles.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// All profiles sorted by game id — the deterministic iteration order
    /// (the backing map is hashed, so raw iteration order is not stable
    /// across runs; anything feeding seeded numerics must use this).
    pub fn sorted(&self) -> Vec<&GameProfile> {
        let mut out: Vec<&GameProfile> = self.profiles.values().collect();
        out.sort_by_key(|p| p.id.0);
        out
    }

    /// Add (or replace) one game's profile.
    pub fn insert(&mut self, profile: GameProfile) {
        self.profiles.insert(profile.id, profile);
    }

    /// Intensity vectors of a set of placements.
    pub fn intensities(&self, placements: &[Placement]) -> Vec<ResourceVec> {
        placements
            .iter()
            .map(|&(id, res)| self.get(id).intensity_at(res))
            .collect()
    }
}

/// One labelled sample as `(features, target, colocation size)` — the size
/// tag supports the paper's per-size error breakdowns (Figures 7b, 8c).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaggedSample {
    /// Model input features.
    pub features: Vec<f64>,
    /// Regression target (degradation ratio) or class label (0/1).
    pub target: f64,
    /// Number of games in the colocation the sample came from.
    pub coloc_size: usize,
}

/// Turn tagged samples into a plain dataset.
pub fn to_dataset(samples: &[TaggedSample]) -> Dataset {
    Dataset::from_parts(
        samples.iter().map(|s| s.features.clone()).collect(),
        samples.iter().map(|s| s.target).collect(),
    )
}

/// Build RM samples: for each member A of each colocation, features are
/// `(S^A, I_G of the co-runners)` and the target is A's degradation ratio
/// (measured FPS over Eq.-2 solo FPS, as in the paper).
pub fn build_rm_samples(
    profiles: &ProfileStore,
    measured: &[MeasuredColocation],
) -> Vec<TaggedSample> {
    let mut out = Vec::new();
    for m in measured {
        for (i, &(id, res)) in m.members.iter().enumerate() {
            let target_profile = profiles.get(id);
            let corunners: Vec<Placement> = m
                .members
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &p)| p)
                .collect();
            let intensities = profiles.intensities(&corunners);
            let solo = target_profile.solo_fps_at(res);
            let degradation = (m.fps[i] / solo).clamp(0.01, 1.2);
            out.push(TaggedSample {
                features: rm_features(target_profile, &intensities),
                target: degradation,
                coloc_size: m.size(),
            });
        }
    }
    out
}

/// Build CM samples for a set of QoS requirements: the label is whether the
/// member's measured FPS met the requirement.
pub fn build_cm_samples(
    profiles: &ProfileStore,
    measured: &[MeasuredColocation],
    qos_values: &[f64],
) -> Vec<TaggedSample> {
    let mut out = Vec::new();
    for m in measured {
        for (i, &(id, res)) in m.members.iter().enumerate() {
            let target_profile = profiles.get(id);
            let corunners: Vec<Placement> = m
                .members
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &p)| p)
                .collect();
            let intensities = profiles.intensities(&corunners);
            let solo = target_profile.solo_fps_at(res);
            for &q in qos_values {
                out.push(TaggedSample {
                    features: cm_features(q, solo, target_profile, &intensities),
                    target: f64::from(m.fps[i] >= q),
                    coloc_size: m.size(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Profiler, ProfilingConfig};

    fn small_setup() -> (Server, GameCatalog, ProfileStore) {
        let server = Server::reference(21);
        let catalog = GameCatalog::generate(42, 12);
        let profiles = Profiler::new(ProfilingConfig::default()).profile_catalog(&server, &catalog);
        (server, catalog, ProfileStore::new(profiles))
    }

    #[test]
    fn plan_respects_counts_sizes_and_distinctness() {
        let catalog = GameCatalog::generate(42, 12);
        let plan = ColocationPlan {
            pairs: 10,
            triples: 5,
            quads: 3,
            seed: 1,
        };
        let colocs = plan_colocations(&catalog, &plan);
        assert_eq!(colocs.len(), 18);
        assert_eq!(colocs.iter().filter(|c| c.len() == 2).count(), 10);
        assert_eq!(colocs.iter().filter(|c| c.len() == 3).count(), 5);
        assert_eq!(colocs.iter().filter(|c| c.len() == 4).count(), 3);
        for c in &colocs {
            let mut ids: Vec<u32> = c.iter().map(|(id, _)| id.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), c.len(), "games within a colocation are distinct");
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let catalog = GameCatalog::generate(42, 12);
        let plan = ColocationPlan {
            pairs: 5,
            triples: 0,
            quads: 0,
            seed: 7,
        };
        assert_eq!(
            plan_colocations(&catalog, &plan),
            plan_colocations(&catalog, &plan)
        );
    }

    #[test]
    fn samples_per_colocation_match_member_count() {
        let (server, catalog, profiles) = small_setup();
        let plan = ColocationPlan {
            pairs: 4,
            triples: 2,
            quads: 1,
            seed: 3,
        };
        let colocs = plan_colocations(&catalog, &plan);
        let measured = measure_colocations(&server, &catalog, &colocs);
        let rm = build_rm_samples(&profiles, &measured);
        // 4·2 + 2·3 + 1·4 = 18 samples.
        assert_eq!(rm.len(), 18);
        let cm = build_cm_samples(&profiles, &measured, &[50.0, 60.0]);
        assert_eq!(cm.len(), 36);
        for s in &rm {
            assert!(s.target > 0.0 && s.target <= 1.2);
            assert!(s.features.iter().all(|v| v.is_finite()));
            assert!((2..=4).contains(&s.coloc_size));
        }
        for s in &cm {
            assert!(s.target == 0.0 || s.target == 1.0);
        }
    }

    #[test]
    fn degradation_targets_reflect_interference() {
        let (server, catalog, profiles) = small_setup();
        // Pair every game with ARK (heavy) — degradations should mostly be
        // well below 1.
        let ark = catalog.by_name("ARK Survival Evolved").unwrap().id;
        let colocs: Vec<Vec<Placement>> = catalog
            .games()
            .iter()
            .filter(|g| g.id != ark)
            .take(5)
            .map(|g| vec![(g.id, Resolution::Fhd1080), (ark, Resolution::Fhd1080)])
            .collect();
        let measured = measure_colocations(&server, &catalog, &colocs);
        let rm = build_rm_samples(&profiles, &measured);
        let mean: f64 = rm.iter().map(|s| s.target).sum::<f64>() / rm.len() as f64;
        assert!(mean < 0.98, "heavy co-runner should degrade games: {mean}");
    }

    #[test]
    fn to_dataset_preserves_order() {
        let samples = vec![
            TaggedSample {
                features: vec![1.0],
                target: 0.5,
                coloc_size: 2,
            },
            TaggedSample {
                features: vec![2.0],
                target: 0.7,
                coloc_size: 3,
            },
        ];
        let d = to_dataset(&samples);
        assert_eq!(d.targets, vec![0.5, 0.7]);
        assert_eq!(d.features[1], vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "no profile")]
    fn missing_profile_panics() {
        let store = ProfileStore::new(vec![]);
        let _ = store.get(GameId(0));
    }
}
