//! The resolution model of paper Section 3.3.
//!
//! Profiling every game at every resolution is too expensive, so the paper
//! profiles each game at **two** resolutions and interpolates:
//!
//! * **Eq. 2**: solo frame rate is linear in the pixel count,
//!   `FPS_A = −a_A · N_pixels + b_A`;
//! * **Observation 7**: intensity on CPU-side resources (CPU-CE, MEM-BW,
//!   LLC) is resolution-insensitive;
//! * **Observation 8**: intensity on GPU-side resources (GPU-CE, GPU-BW,
//!   GPU-L2, PCIe-BW) is linear in the pixel count;
//! * **Observation 6**: sensitivity curves do not depend on resolution, so
//!   they are profiled once.

use gaugur_gamesim::{Resolution, Resource, ResourceVec};
use serde::{Deserialize, Serialize};

/// Eq. 2: solo FPS as a linear function of megapixels.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SoloFpsModel {
    /// Slope `a` (FPS lost per megapixel).
    pub a: f64,
    /// Intercept `b`.
    pub b: f64,
}

impl SoloFpsModel {
    /// Fit from two profiled resolutions.
    pub fn from_two_points(r1: Resolution, fps1: f64, r2: Resolution, fps2: f64) -> SoloFpsModel {
        let (m1, m2) = (r1.megapixels(), r2.megapixels());
        assert!(
            (m1 - m2).abs() > 1e-9,
            "Eq. 2 needs two distinct resolutions"
        );
        let a = (fps1 - fps2) / (m2 - m1);
        let b = fps1 + a * m1;
        SoloFpsModel { a, b }
    }

    /// Predicted solo FPS at a resolution.
    pub fn fps_at(&self, res: Resolution) -> f64 {
        (self.b - self.a * res.megapixels()).max(1.0)
    }
}

/// Per-resource intensity as a function of resolution (Observations 7–8).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntensityModel {
    /// `(c0, c1)` per resource: intensity = `c0 + c1 · megapixels`. CPU-side
    /// resources get `c1 = 0` (Observation 7).
    coeffs: [(f64, f64); gaugur_gamesim::NUM_RESOURCES],
}

impl IntensityModel {
    /// Fit from intensity vectors profiled at two resolutions.
    pub fn from_two_points(
        r1: Resolution,
        i1: &ResourceVec,
        r2: Resolution,
        i2: &ResourceVec,
    ) -> IntensityModel {
        let (m1, m2) = (r1.megapixels(), r2.megapixels());
        assert!(
            (m1 - m2).abs() > 1e-9,
            "intensity model needs two distinct resolutions"
        );
        let mut coeffs = [(0.0, 0.0); gaugur_gamesim::NUM_RESOURCES];
        for r in gaugur_gamesim::ALL_RESOURCES {
            let (v1, v2) = (i1[r], i2[r]);
            coeffs[r.index()] = if r.scales_with_pixels() {
                let c1 = (v2 - v1) / (m2 - m1);
                (v1 - c1 * m1, c1)
            } else {
                // Observation 7: average the two measurements.
                (0.5 * (v1 + v2), 0.0)
            };
        }
        IntensityModel { coeffs }
    }

    /// Predicted intensity vector at a resolution.
    pub fn at(&self, res: Resolution) -> ResourceVec {
        let m = res.megapixels();
        ResourceVec::from_fn(|r| {
            let (c0, c1) = self.coeffs[r.index()];
            (c0 + c1 * m).max(0.0)
        })
    }

    /// The fitted `(intercept, slope)` for one resource (diagnostics).
    pub fn coeff(&self, r: Resource) -> (f64, f64) {
        self.coeffs[r.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugur_gamesim::Resolution::*;

    #[test]
    fn eq2_interpolates_and_extrapolates() {
        // 120 FPS at 720p (0.9216 Mpix), 60 FPS at 1440p (3.6864 Mpix).
        let m = SoloFpsModel::from_two_points(Hd720, 120.0, Qhd1440, 60.0);
        assert!((m.fps_at(Hd720) - 120.0).abs() < 1e-9);
        assert!((m.fps_at(Qhd1440) - 60.0).abs() < 1e-9);
        let mid = m.fps_at(Fhd1080);
        assert!(mid < 120.0 && mid > 60.0);
        // Slope in FPS per megapixel.
        assert!((m.a - 60.0 / (3.6864 - 0.9216)).abs() < 1e-6);
    }

    #[test]
    fn eq2_never_predicts_nonpositive_fps() {
        let m = SoloFpsModel::from_two_points(Hd720, 20.0, Hd900, 10.0);
        assert!(m.fps_at(Qhd1440) >= 1.0);
    }

    #[test]
    #[should_panic(expected = "distinct resolutions")]
    fn eq2_rejects_duplicate_resolutions() {
        let _ = SoloFpsModel::from_two_points(Hd720, 100.0, Hd720, 100.0);
    }

    #[test]
    fn intensity_model_scales_gpu_but_not_cpu() {
        let i1 = ResourceVec([0.3, 0.2, 0.1, 0.2, 0.1, 0.1, 0.05]);
        let i2 = ResourceVec([0.3, 0.2, 0.1, 0.8, 0.4, 0.4, 0.20]);
        let m = IntensityModel::from_two_points(Hd720, &i1, Qhd1440, &i2);
        let at720 = m.at(Hd720);
        let at1440 = m.at(Qhd1440);
        // CPU-side: the average, constant across resolutions.
        assert!((at720[Resource::CpuCore] - 0.3).abs() < 1e-9);
        assert!((at1440[Resource::CpuCore] - 0.3).abs() < 1e-9);
        // GPU-side: exact at the fit points, monotone between.
        assert!((at720[Resource::GpuCore] - 0.2).abs() < 1e-9);
        assert!((at1440[Resource::GpuCore] - 0.8).abs() < 1e-9);
        let mid = m.at(Fhd1080)[Resource::GpuCore];
        assert!(mid > 0.2 && mid < 0.8);
        let (_, slope) = m.coeff(Resource::GpuCore);
        assert!(slope > 0.0);
        let (_, cpu_slope) = m.coeff(Resource::CpuCore);
        assert_eq!(cpu_slope, 0.0);
    }

    #[test]
    fn intensity_never_negative() {
        // A (noisy) negative slope must not extrapolate below zero.
        let i1 = ResourceVec([0.1; 7]);
        let i2 = ResourceVec([0.0; 7]);
        let m = IntensityModel::from_two_points(Hd900, &i1, Qhd1440, &i2);
        let at720 = m.at(Hd720);
        for r in gaugur_gamesim::ALL_RESOURCES {
            assert!(at720[r] >= 0.0);
        }
    }
}
