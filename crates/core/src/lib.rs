//! # gaugur-core — the GAugur methodology
//!
//! The primary contribution of *GAugur: Quantifying Performance Interference
//! of Colocated Games for Improving Resource Utilization in Cloud Gaming*
//! (Li et al., HPDC '19), reproduced end to end:
//!
//! 1. **Contention-feature profiling** ([`profile`]): colocate each game
//!    with seven tunable single-resource microbenchmarks to extract
//!    sensitivity curves and intensities — `O(N)` offline cost.
//! 2. **Resolution modelling** ([`resolution`]): two profiled resolutions
//!    suffice; Eq. 2 and Observations 6–8 interpolate the rest.
//! 3. **Model building** ([`features`], [`model`]): a classification model
//!    (does a colocated game meet its QoS FPS floor?) and a regression model
//!    (its exact degradation ratio), each trainable with decision trees,
//!    random forests, gradient boosting or SVMs — all implemented in
//!    [`gaugur_ml`].
//! 4. **Training** ([`train`]): a few hundred measured colocations, each of
//!    `k` games yielding `k` samples.
//! 5. **Online prediction** ([`gaugur`]): instantaneous QoS / degradation /
//!    FPS predictions for arbitrary colocations, before the games are placed.
//!
//! The [`delay`] module implements the paper's Section 7 extension
//! (interaction-delay prediction); [`cf`] implements the related-work
//! combination with collaborative-filtering profile completion
//! (Paragon/Quasar-style), cutting the offline profiling cost.
//!
//! ```
//! use gaugur_core::{GAugur, GAugurConfig, ColocationPlan};
//! use gaugur_gamesim::{GameCatalog, Server, Resolution};
//!
//! let server = Server::reference(7);
//! let catalog = GameCatalog::generate(42, 10);
//! let mut config = GAugurConfig::default();
//! config.plan = ColocationPlan { pairs: 30, triples: 5, quads: 5, seed: 1 };
//! let gaugur = GAugur::build(&server, &catalog, config);
//! let res = Resolution::Fhd1080;
//! let ok = gaugur.predict_qos(60.0, (catalog[0].id, res), &[(catalog[1].id, res)]);
//! let degradation = gaugur.predict_degradation((catalog[0].id, res), &[(catalog[1].id, res)]);
//! assert!(degradation > 0.0 && degradation <= 1.05);
//! let _ = ok;
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cf;
pub mod delay;
pub mod features;
pub mod gaugur;
pub mod importance;
pub mod model;
pub mod predictor;
pub mod profile;
pub mod resolution;
pub mod train;

pub use cf::{fold_in_profile, profile_catalog_cf, CfConfig, CfStats};
pub use features::FeatureBuffer;
pub use gaugur::{GAugur, GAugurConfig, RetrainReport, SessionOutcome, ARTIFACT_SCHEMA};
pub use importance::{permutation_importance, FeatureGroup};
pub use model::{Algorithm, ClassificationModel, RegressionModel, ALL_ALGORITHMS};
pub use predictor::{DegradationBatch, InterferencePredictor};
pub use profile::{
    GameProfile, PartialProfile, Profiler, ProfilingConfig, ProfilingStat, SensitivityCurve,
};
pub use resolution::{IntensityModel, SoloFpsModel};
pub use train::{
    build_cm_samples, build_rm_samples, measure_colocations, plan_colocations, to_dataset,
    ColocationPlan, MeasuredColocation, Placement, ProfileStore, TaggedSample,
};
