//! Collaborative-filtering profile completion.
//!
//! The paper's related work: "Prior work \[13, 14\] leveraged collaborative
//! filtering techniques to reduce the overhead of profiling the sensitivity
//! and intensity for applications. Such techniques are complementary to our
//! work." This module implements that combination: profile a fraction of the
//! catalog fully, profile the rest on a random *subset* of resources, and
//! complete the missing sensitivity curves and intensities by ALS low-rank
//! matrix completion across games.
//!
//! The completion matrix has one row per game and one column per profile
//! entry: `(k + 1)` sensitivity samples plus two intensities (base and
//! alternate resolution) for each of the seven resources. Columns are
//! standardized before factorization so curve samples (≈0–1) and intensities
//! (≈0–1.6) share a scale.

use crate::profile::{GameProfile, PartialProfile, Profiler, SensitivityCurve};
use crate::resolution::{IntensityModel, SoloFpsModel};
use gaugur_gamesim::{Game, GameCatalog, Resource, ResourceVec, Server, ALL_RESOURCES};
use gaugur_ml::{MatrixFactorization, MfParams};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Configuration of the partial-profiling campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CfConfig {
    /// Fraction of the catalog profiled on all seven resources (the "seed"
    /// games that anchor the latent structure).
    pub full_fraction: f64,
    /// Resources swept per remaining game.
    pub resources_per_game: usize,
    /// Factorization hyperparameters.
    pub mf: MfParams,
    /// Seed for game/resource selection.
    pub seed: u64,
}

impl Default for CfConfig {
    fn default() -> Self {
        CfConfig {
            full_fraction: 0.3,
            resources_per_game: 3,
            mf: MfParams::default(),
            seed: 0,
        }
    }
}

/// Outcome statistics of a partial campaign.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CfStats {
    /// Resource sweeps actually performed.
    pub sweeps_performed: usize,
    /// Sweeps a full campaign would have performed.
    pub sweeps_full: usize,
}

impl CfStats {
    /// Fraction of the full profiling cost spent.
    pub fn cost_fraction(&self) -> f64 {
        self.sweeps_performed as f64 / self.sweeps_full.max(1) as f64
    }
}

/// Entries per resource in the completion matrix: `(k + 1)` curve samples
/// plus the two intensities.
fn entries_per_resource(granularity: usize) -> usize {
    granularity + 3
}

/// Run a partial profiling campaign and complete it into full
/// [`GameProfile`]s.
pub fn profile_catalog_cf(
    profiler: &Profiler,
    server: &Server,
    catalog: &GameCatalog,
    config: &CfConfig,
) -> (Vec<GameProfile>, CfStats) {
    let n_games = catalog.len();
    let n_full = ((n_games as f64 * config.full_fraction).ceil() as usize).clamp(1, n_games);

    // Seeded selection of fully profiled games.
    let mut order: Vec<usize> = (0..n_games).collect();
    let mut rng = gaugur_gamesim::rng::rng_for(config.seed, &[0x0043_4653]);
    order.shuffle(&mut rng);
    let full_set: std::collections::HashSet<usize> = order[..n_full].iter().copied().collect();

    // Partial profiling.
    let mut partials: Vec<PartialProfile> = Vec::with_capacity(n_games);
    let mut sweeps_performed = 0;
    for (gi, game) in catalog.games().iter().enumerate() {
        let resources: Vec<Resource> = if full_set.contains(&gi) {
            ALL_RESOURCES.to_vec()
        } else {
            let mut rs = ALL_RESOURCES.to_vec();
            rs.shuffle(&mut rng);
            rs.truncate(config.resources_per_game.clamp(1, rs.len()));
            rs
        };
        sweeps_performed += resources.len();
        partials.push(profiler.profile_game_partial(server, game, &resources));
    }

    let profiles = complete_profiles(&partials, catalog.games(), profiler, config);
    let stats = CfStats {
        sweeps_performed,
        sweeps_full: n_games * ALL_RESOURCES.len(),
    };
    (profiles, stats)
}

/// Complete partial profiles into full ones via ALS.
pub fn complete_profiles(
    partials: &[PartialProfile],
    games: &[Game],
    profiler: &Profiler,
    config: &CfConfig,
) -> Vec<GameProfile> {
    assert_eq!(partials.len(), games.len());
    complete_partials(partials, profiler, config)
}

/// Express a fully profiled game as an all-entries-observed
/// [`PartialProfile`], so it can anchor a completion matrix.
fn to_observed_partial(p: &GameProfile, profiler: &Profiler) -> PartialProfile {
    let cfg = &profiler.config;
    let int_base = p.intensity_at(cfg.base_resolution);
    let int_alt = p.intensity_at(cfg.alt_resolution);
    PartialProfile {
        id: p.id,
        name: p.name.clone(),
        solo_base: p.solo_fps_at(cfg.base_resolution),
        solo_alt: p.solo_fps_at(cfg.alt_resolution),
        curves: p.sensitivity.iter().cloned().map(Some).collect(),
        intensity_base: ALL_RESOURCES.iter().map(|&r| Some(int_base[r])).collect(),
        intensity_alt: ALL_RESOURCES.iter().map(|&r| Some(int_alt[r])).collect(),
        granularity: p.granularity,
    }
}

/// Fold one sparsely profiled newcomer into an established catalog of full
/// profiles: the known games become fully observed rows of the completion
/// matrix, the newcomer contributes only the entries its partial sweep
/// measured, and the same ALS factorization as [`complete_profiles`] fills
/// in the rest. This is the online-feedback path for a game that arrives
/// with little or no profiling budget — `O(known)` work, no re-profiling of
/// the existing catalog.
///
/// `known` must be in a deterministic order (e.g.
/// [`crate::train::ProfileStore::sorted`]) for the fold-in to be
/// reproducible under a fixed [`CfConfig::seed`].
pub fn fold_in_profile(
    known: &[&GameProfile],
    partial: &PartialProfile,
    profiler: &Profiler,
    config: &CfConfig,
) -> GameProfile {
    let mut partials: Vec<PartialProfile> = known
        .iter()
        .map(|p| to_observed_partial(p, profiler))
        .collect();
    partials.push(partial.clone());
    let mut completed = complete_partials(&partials, profiler, config);
    completed.pop().expect("one profile per partial")
}

/// The completion core shared by [`complete_profiles`] and
/// [`fold_in_profile`].
fn complete_partials(
    partials: &[PartialProfile],
    profiler: &Profiler,
    config: &CfConfig,
) -> Vec<GameProfile> {
    let k = profiler.config.granularity;
    let per_res = entries_per_resource(k);
    let n_cols = ALL_RESOURCES.len() * per_res;

    // Collect observations (game, column, value).
    let mut observed: Vec<(usize, usize, f64)> = Vec::new();
    for (gi, p) in partials.iter().enumerate() {
        for r in ALL_RESOURCES {
            let base_col = r.index() * per_res;
            if let Some(curve) = &p.curves[r.index()] {
                for (s, &v) in curve.samples.iter().enumerate() {
                    observed.push((gi, base_col + s, v));
                }
            }
            if let Some(v) = p.intensity_base[r.index()] {
                observed.push((gi, base_col + k + 1, v));
            }
            if let Some(v) = p.intensity_alt[r.index()] {
                observed.push((gi, base_col + k + 2, v));
            }
        }
    }

    // Column standardization.
    let mut mean = vec![0.0_f64; n_cols];
    let mut count = vec![0usize; n_cols];
    for &(_, c, v) in &observed {
        mean[c] += v;
        count[c] += 1;
    }
    for (m, &c) in mean.iter_mut().zip(&count) {
        *m /= c.max(1) as f64;
    }
    let mut var = vec![0.0_f64; n_cols];
    for &(_, c, v) in &observed {
        var[c] += (v - mean[c]).powi(2);
    }
    let std: Vec<f64> = var
        .iter()
        .zip(&count)
        .map(|(&v, &c)| (v / c.max(1) as f64).sqrt().max(1e-6))
        .collect();
    let normalized: Vec<(usize, usize, f64)> = observed
        .iter()
        .map(|&(g, c, v)| (g, c, (v - mean[c]) / std[c]))
        .collect();

    let mf = MatrixFactorization::fit(partials.len(), n_cols, &normalized, config.mf);
    let value_at = |g: usize, c: usize| -> f64 { mf.predict(g, c) * std[c] + mean[c] };

    // Reconstruct full profiles, preferring measured entries.
    partials
        .iter()
        .enumerate()
        .map(|(gi, p)| {
            let mut sensitivity = Vec::with_capacity(ALL_RESOURCES.len());
            let mut int_base = ResourceVec::ZERO;
            let mut int_alt = ResourceVec::ZERO;
            for r in ALL_RESOURCES {
                let base_col = r.index() * per_res;
                let curve = match &p.curves[r.index()] {
                    Some(c) => c.clone(),
                    None => {
                        // A completed sensitivity curve: clamp into the
                        // physical range and enforce monotone non-increase
                        // (the invariant every measured curve satisfies).
                        let mut samples: Vec<f64> = (0..=k)
                            .map(|s| value_at(gi, base_col + s).clamp(0.0, 1.05))
                            .collect();
                        for i in 1..samples.len() {
                            samples[i] = samples[i].min(samples[i - 1]);
                        }
                        SensitivityCurve { samples }
                    }
                };
                sensitivity.push(curve);
                int_base[r] = p.intensity_base[r.index()]
                    .unwrap_or_else(|| value_at(gi, base_col + k + 1).max(0.0));
                int_alt[r] = p.intensity_alt[r.index()]
                    .unwrap_or_else(|| value_at(gi, base_col + k + 2).max(0.0));
            }
            let cfg = &profiler.config;
            GameProfile {
                id: p.id,
                name: p.name.clone(),
                sensitivity,
                intensity: IntensityModel::from_two_points(
                    cfg.base_resolution,
                    &int_base,
                    cfg.alt_resolution,
                    &int_alt,
                ),
                solo_fps: SoloFpsModel::from_two_points(
                    cfg.base_resolution,
                    p.solo_base,
                    cfg.alt_resolution,
                    p.solo_alt,
                ),
                granularity: cfg.granularity,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfilingConfig;
    use gaugur_gamesim::Resolution;

    fn setup() -> (Server, GameCatalog, Profiler) {
        (
            Server::reference(51),
            GameCatalog::generate(42, 40),
            Profiler::new(ProfilingConfig::default()),
        )
    }

    #[test]
    fn partial_campaign_saves_most_of_the_cost() {
        let (server, catalog, profiler) = setup();
        let config = CfConfig::default();
        let (profiles, stats) = profile_catalog_cf(&profiler, &server, &catalog, &config);
        assert_eq!(profiles.len(), 40);
        assert!(stats.cost_fraction() < 0.65, "{}", stats.cost_fraction());
        assert!(stats.sweeps_performed < stats.sweeps_full);
    }

    #[test]
    fn completed_profiles_approximate_full_profiles() {
        let (server, catalog, profiler) = setup();
        let full: Vec<GameProfile> = profiler.profile_catalog(&server, &catalog);
        let (completed, _) = profile_catalog_cf(&profiler, &server, &catalog, &CfConfig::default());

        // Compare intensities at 1080p: completed entries should track the
        // fully measured ones reasonably well on average.
        let mut err_sum = 0.0;
        let mut n = 0;
        for (f, c) in full.iter().zip(&completed) {
            let fi = f.intensity_at(Resolution::Fhd1080);
            let ci = c.intensity_at(Resolution::Fhd1080);
            for r in ALL_RESOURCES {
                err_sum += (fi[r] - ci[r]).abs();
                n += 1;
            }
        }
        let mae = err_sum / n as f64;
        assert!(mae < 0.15, "intensity completion MAE {mae}");
    }

    #[test]
    fn completed_curves_respect_physical_invariants() {
        let (server, catalog, profiler) = setup();
        let (completed, _) = profile_catalog_cf(&profiler, &server, &catalog, &CfConfig::default());
        for p in &completed {
            for r in ALL_RESOURCES {
                let c = p.sensitivity_for(r);
                assert_eq!(c.samples.len(), 11);
                for w in c.samples.windows(2) {
                    assert!(w[1] <= w[0] + 0.08, "{}: {:?}", p.name, c.samples);
                }
                for &v in &c.samples {
                    assert!((0.0..=1.05).contains(&v));
                }
            }
        }
    }

    #[test]
    fn fold_in_recovers_a_sparsely_profiled_newcomer() {
        let (server, catalog, profiler) = setup();
        // Profile everyone but the last game fully; the newcomer gets two
        // resource sweeps only.
        let known: Vec<GameProfile> = catalog.games()[..39]
            .iter()
            .map(|g| profiler.profile_game(&server, g))
            .collect();
        let newcomer = &catalog.games()[39];
        let partial = profiler.profile_game_partial(
            &server,
            newcomer,
            &[
                gaugur_gamesim::Resource::GpuCore,
                gaugur_gamesim::Resource::CpuCore,
            ],
        );
        let refs: Vec<&GameProfile> = known.iter().collect();
        let folded = fold_in_profile(&refs, &partial, &profiler, &CfConfig::default());
        assert_eq!(folded.id, newcomer.id);

        // Measured entries are preserved verbatim; completed curves obey the
        // physical invariants.
        let full = profiler.profile_game(&server, newcomer);
        assert_eq!(
            folded.sensitivity_for(gaugur_gamesim::Resource::GpuCore),
            full.sensitivity_for(gaugur_gamesim::Resource::GpuCore)
        );
        let res = Resolution::Fhd1080;
        let (fi, gi) = (full.intensity_at(res), folded.intensity_at(res));
        let mae: f64 = ALL_RESOURCES
            .iter()
            .map(|&r| (fi[r] - gi[r]).abs())
            .sum::<f64>()
            / ALL_RESOURCES.len() as f64;
        assert!(mae < 0.3, "fold-in intensity MAE {mae}");
        for r in ALL_RESOURCES {
            for w in folded.sensitivity_for(r).samples.windows(2) {
                assert!(
                    w[1] <= w[0] + 0.08,
                    "{r}: {:?}",
                    folded.sensitivity_for(r).samples
                );
            }
        }
    }

    #[test]
    fn fold_in_is_deterministic() {
        let (server, catalog, profiler) = setup();
        let known: Vec<GameProfile> = catalog.games()[..10]
            .iter()
            .map(|g| profiler.profile_game(&server, g))
            .collect();
        let partial = profiler.profile_game_partial(
            &server,
            &catalog.games()[10],
            &[gaugur_gamesim::Resource::Llc],
        );
        let refs: Vec<&GameProfile> = known.iter().collect();
        let a = fold_in_profile(&refs, &partial, &profiler, &CfConfig::default());
        let b = fold_in_profile(&refs, &partial, &profiler, &CfConfig::default());
        assert_eq!(a.sensitivity, b.sensitivity);
    }

    #[test]
    fn full_fraction_one_reproduces_complete_profiling() {
        let (server, catalog, profiler) = setup();
        let config = CfConfig {
            full_fraction: 1.0,
            ..CfConfig::default()
        };
        let (profiles, stats) = profile_catalog_cf(&profiler, &server, &catalog, &config);
        assert_eq!(stats.cost_fraction(), 1.0);
        let full = profiler.profile_catalog(&server, &catalog);
        for (a, b) in profiles.iter().zip(&full) {
            assert_eq!(a.sensitivity, b.sensitivity, "{}", a.name);
        }
    }
}
