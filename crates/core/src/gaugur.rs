//! The end-to-end GAugur facade: profile → train → predict online.
//!
//! Mirrors Figure 3 of the paper: the offline steps (contention-feature
//! profiling, model building, model training) run once in
//! [`GAugur::build`]; the online step ([`GAugur::predict_qos`],
//! [`GAugur::predict_degradation`], [`GAugur::predict_fps`]) serves
//! continuously arriving prediction requests with negligible overhead.

use crate::cf::{fold_in_profile, CfConfig};
use crate::features::{cm_features, rm_features};
use crate::model::{Algorithm, ClassificationModel, RegressionModel};
use crate::profile::{PartialProfile, Profiler, ProfilingConfig};
use crate::train::{
    build_cm_samples, build_rm_samples, measure_colocations, plan_colocations, to_dataset,
    ColocationPlan, MeasuredColocation, Placement, ProfileStore,
};
use gaugur_gamesim::{GameCatalog, Server};
use gaugur_ml::Dataset;
use serde::{Deserialize, Serialize};

/// Version of the on-disk artifact layout written by [`GAugur::save_json`].
///
/// Bump this whenever the serialized shape of [`GAugur`] (or the envelope
/// around it) changes incompatibly; [`GAugur::load_json`] refuses artifacts
/// whose version does not match, so a serving daemon can never hot-reload a
/// stale or future artifact into memory.
pub const ARTIFACT_SCHEMA: u32 = 1;

/// Configuration of the offline pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GAugurConfig {
    /// Profiling configuration (granularity, resolutions).
    pub profiling: ProfilingConfig,
    /// How many colocations to measure for training.
    pub plan: ColocationPlan,
    /// Algorithm for the classification model (paper default: GBDT).
    pub cm_algorithm: Algorithm,
    /// Algorithm for the regression model (paper default: GBRT).
    pub rm_algorithm: Algorithm,
    /// QoS values baked into the CM training set.
    pub qos_values: Vec<f64>,
    /// Training seed.
    pub seed: u64,
}

impl Default for GAugurConfig {
    fn default() -> Self {
        GAugurConfig {
            profiling: ProfilingConfig::default(),
            plan: ColocationPlan::default(),
            cm_algorithm: Algorithm::GradientBoosting,
            rm_algorithm: Algorithm::GradientBoosting,
            qos_values: vec![50.0, 60.0],
            seed: 0,
        }
    }
}

/// One observed colocation outcome reported back from the serving plane:
/// what the paper's offline measurement campaign produces, but harvested
/// from live sessions instead of a testbed sweep. A batch of these is the
/// training increment of [`GAugur::retrain_from_outcomes`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionOutcome {
    /// The observed session's own game and resolution.
    pub target: Placement,
    /// The co-runners it shared the server with while the FPS was measured.
    pub others: Vec<Placement>,
    /// The frame rate the session actually achieved.
    pub observed_fps: f64,
}

/// What one [`GAugur::retrain_from_outcomes`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetrainReport {
    /// Outcomes converted into training samples.
    pub samples_used: usize,
    /// Outcomes discarded (unprofiled game, non-finite or non-positive FPS).
    pub samples_skipped: usize,
    /// Boosting rounds appended to the regression ensemble (or the refit
    /// round budget for non-boosted families).
    pub extra_rounds: usize,
    /// Whether the ensemble was warm-started (gradient boosting) rather
    /// than refit from scratch.
    pub warm_started: bool,
}

/// A fully built GAugur predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GAugur {
    /// Profiled contention features for every game.
    pub profiles: ProfileStore,
    /// The trained classification model (Eq. 3).
    pub cm: ClassificationModel,
    /// The trained regression model (Eq. 4).
    pub rm: RegressionModel,
    /// The configuration used to build the predictor.
    pub config: GAugurConfig,
}

impl GAugur {
    /// Run the full offline pipeline on a catalog: profile every game,
    /// measure the planned colocations, and train both models.
    pub fn build(server: &Server, catalog: &GameCatalog, config: GAugurConfig) -> GAugur {
        let profiler = Profiler::new(config.profiling);
        let profiles = ProfileStore::new(profiler.profile_catalog(server, catalog));
        let colocations = plan_colocations(catalog, &config.plan);
        let measured = measure_colocations(server, catalog, &colocations);
        GAugur::from_measurements(profiles, &measured, config)
    }

    /// Train from already-collected measurements (lets callers reuse one
    /// profiling campaign across experiments, as Section 4 does).
    pub fn from_measurements(
        profiles: ProfileStore,
        measured: &[MeasuredColocation],
        config: GAugurConfig,
    ) -> GAugur {
        let rm_data = to_dataset(&build_rm_samples(&profiles, measured));
        let cm_data = to_dataset(&build_cm_samples(&profiles, measured, &config.qos_values));
        let rm = RegressionModel::train(&rm_data, config.rm_algorithm, config.seed);
        let cm = ClassificationModel::train(&cm_data, config.cm_algorithm, config.seed);
        GAugur {
            profiles,
            cm,
            rm,
            config,
        }
    }

    /// Online prediction (Eq. 4): the degradation ratio game `target` will
    /// suffer when colocated with `others`.
    pub fn predict_degradation(&self, target: Placement, others: &[Placement]) -> f64 {
        let profile = self.profiles.get(target.0);
        let intensities = self.profiles.intensities(others);
        self.rm.predict(&rm_features(profile, &intensities))
    }

    /// Online prediction: the absolute FPS of `target` under colocation
    /// (degradation × Eq.-2 solo FPS).
    pub fn predict_fps(&self, target: Placement, others: &[Placement]) -> f64 {
        let solo = self.profiles.get(target.0).solo_fps_at(target.1);
        self.predict_degradation(target, others) * solo
    }

    /// Online prediction (Eq. 3): does `target` meet `qos` FPS when
    /// colocated with `others`?
    pub fn predict_qos(&self, qos: f64, target: Placement, others: &[Placement]) -> bool {
        let profile = self.profiles.get(target.0);
        let solo = profile.solo_fps_at(target.1);
        // Colocation can only degrade a game, so a QoS bar above the solo
        // frame rate is unreachable no matter what the learned model says.
        if qos > solo {
            return false;
        }

        // The CM is only trained on the QoS values in the config; outside
        // that range tree models extrapolate arbitrarily. QoS satisfaction
        // is monotone (meeting a bar implies meeting every lower bar), so a
        // query below the trained range can be answered by the lowest
        // trained bar when positive, and falls back to RM thresholding
        // otherwise; symmetrically above the range.
        let lo = self
            .config
            .qos_values
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .config
            .qos_values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);

        let intensities = self.profiles.intensities(others);
        let cm_at = |q: f64| -> bool {
            self.cm
                .classify(&cm_features(q, solo, profile, &intensities))
        };

        if self.config.qos_values.is_empty() || (lo..=hi).contains(&qos) {
            cm_at(qos)
        } else if qos < lo {
            cm_at(lo) || self.predict_fps(target, others) >= qos
        } else {
            // lo..=hi excluded qos and qos > hi.
            cm_at(hi) && self.predict_fps(target, others) >= qos
        }
    }

    /// QoS judgement via the regression model (the paper's GAugur(RM)
    /// classification comparator: predict FPS, threshold at the QoS).
    pub fn predict_qos_via_rm(&self, qos: f64, target: Placement, others: &[Placement]) -> bool {
        self.predict_fps(target, others) >= qos
    }

    /// Persist the whole trained predictor (profiles + both models) as a
    /// versioned JSON artifact: `{"schema": N, "model": {…}}`.
    ///
    /// The offline pipeline runs once per catalog; production front-ends load
    /// the artifact instead of re-profiling.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let envelope = serde::Value::Map(vec![
            (
                "schema".to_string(),
                serde::Value::Int(i64::from(ARTIFACT_SCHEMA)),
            ),
            ("model".to_string(), self.serialize()),
        ]);
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(std::io::BufWriter::new(file), &envelope)
            .map_err(std::io::Error::other)
    }

    /// Load a predictor persisted with [`GAugur::save_json`].
    ///
    /// Rejects artifacts with a missing or mismatched `schema` field with a
    /// descriptive [`std::io::ErrorKind::InvalidData`] error, so operators
    /// see "wrong artifact version", not a serde shape error.
    pub fn load_json(path: impl AsRef<std::path::Path>) -> std::io::Result<GAugur> {
        let path = path.as_ref();
        let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let text = std::fs::read_to_string(path)?;
        let value = serde_json::parse_value_str(&text)
            .map_err(|e| invalid(format!("artifact {}: not valid JSON: {e}", path.display())))?;
        let schema = value.get("schema").ok_or_else(|| {
            invalid(format!(
                "artifact {}: missing `schema` field — this artifact predates \
                 versioning (expected schema {ARTIFACT_SCHEMA}); re-export it \
                 with the current `gaugur train`/`GAugur::save_json`",
                path.display()
            ))
        })?;
        let found = schema.as_f64().ok_or_else(|| {
            invalid(format!(
                "artifact {}: `schema` must be an integer, found {}",
                path.display(),
                schema.kind()
            ))
        })?;
        if found != f64::from(ARTIFACT_SCHEMA) {
            return Err(invalid(format!(
                "artifact {}: schema version {found} does not match this \
                 build's supported version {ARTIFACT_SCHEMA}",
                path.display()
            )));
        }
        let model = value.get("model").ok_or_else(|| {
            invalid(format!(
                "artifact {}: missing `model` field",
                path.display()
            ))
        })?;
        GAugur::deserialize(model)
            .map_err(|e| invalid(format!("artifact {}: malformed model: {e}", path.display())))
    }

    /// Continuous retraining: warm-start the regression model on observed
    /// session outcomes. Each usable outcome becomes one RM sample exactly
    /// as in the offline pipeline — features from the target's profile and
    /// the co-runners' intensities, target `observed_fps / solo_fps` clamped
    /// to `[0.01, 1.2]` — and the RM continues boosting `extra_rounds`
    /// rounds on those fresh residuals
    /// ([`RegressionModel::warm_start`]). Profiles, the CM, and the config
    /// are carried over unchanged, so the result serializes under the same
    /// [`ARTIFACT_SCHEMA`] and hot-reloads like any other artifact.
    ///
    /// Outcomes naming unprofiled games or carrying unusable FPS values are
    /// skipped (and counted); returns `None` when nothing usable remains,
    /// so a retrain on garbage can never produce a model.
    pub fn retrain_from_outcomes(
        &self,
        outcomes: &[SessionOutcome],
        extra_rounds: usize,
    ) -> Option<(GAugur, RetrainReport)> {
        let mut features = Vec::new();
        let mut targets = Vec::new();
        let mut skipped = 0usize;
        for o in outcomes {
            let known = self.profiles.contains(o.target.0)
                && o.others.iter().all(|&(id, _)| self.profiles.contains(id));
            if !known || !o.observed_fps.is_finite() || o.observed_fps <= 0.0 {
                skipped += 1;
                continue;
            }
            let profile = self.profiles.get(o.target.0);
            let intensities = self.profiles.intensities(&o.others);
            let solo = profile.solo_fps_at(o.target.1);
            features.push(rm_features(profile, &intensities));
            targets.push((o.observed_fps / solo).clamp(0.01, 1.2));
        }
        if features.is_empty() {
            return None;
        }
        let data = Dataset::from_parts(features, targets);
        let report = RetrainReport {
            samples_used: data.len(),
            samples_skipped: skipped,
            extra_rounds,
            warm_started: self.rm.supports_warm_start(),
        };
        let rm = self.rm.warm_start(&data, extra_rounds, self.config.seed);
        Some((
            GAugur {
                profiles: self.profiles.clone(),
                cm: self.cm.clone(),
                rm,
                config: self.config.clone(),
            },
            report,
        ))
    }

    /// Fold a sparsely profiled newcomer into the predictor without a full
    /// profiling campaign: the existing catalog anchors an ALS completion
    /// matrix ([`crate::cf::fold_in_profile`]) that fills the newcomer's
    /// unmeasured sensitivity curves and intensities. The returned predictor
    /// can serve the new game immediately; its next
    /// [`GAugur::retrain_from_outcomes`] will then pick up the newcomer's
    /// observed outcomes as training signal.
    pub fn fold_in_game(&self, partial: &PartialProfile, cf: &CfConfig) -> GAugur {
        let profiler = Profiler::new(self.config.profiling);
        let known = self.profiles.sorted();
        let folded = fold_in_profile(&known, partial, &profiler, cf);
        let mut profiles = self.profiles.clone();
        profiles.insert(folded);
        GAugur {
            profiles,
            cm: self.cm.clone(),
            rm: self.rm.clone(),
            config: self.config.clone(),
        }
    }

    /// Whether an entire colocation is *feasible*: every member satisfies
    /// the QoS requirement (Section 5.1), judged by the CM.
    pub fn colocation_feasible(&self, qos: f64, members: &[Placement]) -> bool {
        members.iter().enumerate().all(|(i, &m)| {
            let others: Vec<Placement> = members
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &p)| p)
                .collect();
            self.predict_qos(qos, m, &others)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugur_gamesim::Resolution;

    fn quick_build() -> (Server, GameCatalog, GAugur) {
        let server = Server::reference(31);
        let catalog = GameCatalog::generate(42, 14);
        let config = GAugurConfig {
            plan: ColocationPlan {
                pairs: 60,
                triples: 15,
                quads: 10,
                seed: 2,
            },
            ..GAugurConfig::default()
        };
        let gaugur = GAugur::build(&server, &catalog, config);
        (server, catalog, gaugur)
    }

    #[test]
    fn end_to_end_predictions_are_sane_and_useful() {
        let (server, catalog, gaugur) = quick_build();
        let res = Resolution::Fhd1080;
        let indie = catalog.by_name("BlubBlub").unwrap().id;
        let heavy = catalog.by_name("ARK Survival Evolved").unwrap().id;
        let moba = catalog.by_name("Battlerite").unwrap().id;

        // Predicted degradation is a ratio.
        let d = gaugur.predict_degradation((moba, res), &[(heavy, res)]);
        assert!(d > 0.0 && d <= 1.05);

        // A heavy co-runner should hurt more than a light one.
        let d_light = gaugur.predict_degradation((moba, res), &[(indie, res)]);
        assert!(
            d_light > d,
            "indie co-runner {d_light} should degrade less than AAA {d}"
        );

        // Predicted FPS should correlate with the measured outcome.
        let pred = gaugur.predict_fps((moba, res), &[(heavy, res)]);
        let out = server.measure_colocation(&[
            gaugur_gamesim::Workload::game(catalog.get(moba).unwrap(), res),
            gaugur_gamesim::Workload::game(catalog.get(heavy).unwrap(), res),
        ]);
        let actual = out.game_fps(0).unwrap();
        let err = (pred - actual).abs() / actual;
        assert!(err < 0.35, "prediction {pred} vs actual {actual}");
    }

    #[test]
    fn feasibility_checks_every_member() {
        let (_, catalog, gaugur) = quick_build();
        let res = Resolution::Hd720;
        let light_pair = [
            (catalog.by_name("BlubBlub").unwrap().id, res),
            (catalog.by_name("Candle").unwrap().id, res),
        ];
        assert!(gaugur.colocation_feasible(30.0, &light_pair));
        // An absurd QoS bar cannot be met even solo-ish.
        assert!(!gaugur.colocation_feasible(10_000.0, &light_pair));
    }

    #[test]
    fn save_and_load_roundtrip_predictions() {
        let (_, catalog, gaugur) = quick_build();
        let dir = std::env::temp_dir().join("gaugur-test-persist");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("predictor.json");
        gaugur.save_json(&path).unwrap();
        let loaded = GAugur::load_json(&path).unwrap();
        let res = Resolution::Fhd1080;
        let t = (catalog[0].id, res);
        let o = [(catalog[1].id, res)];
        assert_eq!(
            gaugur.predict_degradation(t, &o),
            loaded.predict_degradation(t, &o)
        );
        assert_eq!(
            gaugur.predict_qos(60.0, t, &o),
            loaded.predict_qos(60.0, t, &o)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(GAugur::load_json("/nonexistent/gaugur.json").is_err());
    }

    fn write_artifact(name: &str, contents: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("gaugur-test-schema");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn old_shape_artifact_gets_a_clear_schema_message() {
        // A pre-versioning artifact was the bare GAugur map — no `schema`.
        let path = write_artifact("old-shape.json", r#"{"profiles": {}, "cm": {}, "rm": {}}"#);
        let err = GAugur::load_json(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("schema"), "unhelpful message: {msg}");
        assert!(msg.contains("predates"), "unhelpful message: {msg}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_schema_version_is_rejected_with_both_versions() {
        let path = write_artifact("future.json", r#"{"schema": 999, "model": {}}"#);
        let err = GAugur::load_json(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("999"), "should name the found version: {msg}");
        assert!(
            msg.contains(&ARTIFACT_SCHEMA.to_string()),
            "should name the supported version: {msg}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_integer_schema_is_rejected() {
        let path = write_artifact("bad-type.json", r#"{"schema": "one", "model": {}}"#);
        let err = GAugur::load_json(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("integer"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn saved_artifact_carries_the_schema_version() {
        let (_, _, gaugur) = quick_build();
        let dir = std::env::temp_dir().join("gaugur-test-schema");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("versioned.json");
        gaugur.save_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let value = serde_json::parse_value_str(&text).unwrap();
        assert_eq!(
            value.get("schema").and_then(|v| v.as_f64()),
            Some(f64::from(ARTIFACT_SCHEMA))
        );
        assert!(value.get("model").is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn retrain_from_outcomes_warm_starts_and_keeps_the_envelope() {
        let (server, catalog, gaugur) = quick_build();
        let res = Resolution::Fhd1080;
        // Harvest "observed" outcomes from the simulator, exactly what the
        // serving feedback loop would report.
        let ids: Vec<_> = catalog.games().iter().map(|g| g.id).collect();
        let mut outcomes = Vec::new();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                let out = server.measure_colocation(&[
                    gaugur_gamesim::Workload::game(catalog.get(ids[i]).unwrap(), res),
                    gaugur_gamesim::Workload::game(catalog.get(ids[j]).unwrap(), res),
                ]);
                outcomes.push(SessionOutcome {
                    target: (ids[i], res),
                    others: vec![(ids[j], res)],
                    observed_fps: out.game_fps(0).unwrap(),
                });
            }
        }
        let (tuned, report) = gaugur.retrain_from_outcomes(&outcomes, 60).unwrap();
        assert!(report.warm_started);
        assert_eq!(report.samples_used, outcomes.len());
        assert_eq!(report.samples_skipped, 0);

        // The retrained artifact round-trips through the same envelope.
        let dir = std::env::temp_dir().join("gaugur-test-retrain");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("retrained.json");
        tuned.save_json(&path).unwrap();
        let loaded = GAugur::load_json(&path).unwrap();
        let t = (ids[0], res);
        let o = [(ids[1], res)];
        assert_eq!(
            tuned.predict_degradation(t, &o),
            loaded.predict_degradation(t, &o)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn retrain_with_zero_rounds_changes_nothing() {
        let (_, catalog, gaugur) = quick_build();
        let res = Resolution::Fhd1080;
        let outcomes = vec![SessionOutcome {
            target: (catalog[0].id, res),
            others: vec![(catalog[1].id, res)],
            observed_fps: 40.0,
        }];
        let (same, _) = gaugur.retrain_from_outcomes(&outcomes, 0).unwrap();
        let t = (catalog[0].id, res);
        let o = [(catalog[1].id, res)];
        assert_eq!(
            gaugur.predict_degradation(t, &o).to_bits(),
            same.predict_degradation(t, &o).to_bits()
        );
    }

    #[test]
    fn retrain_skips_unusable_outcomes_and_refuses_all_garbage() {
        let (_, catalog, gaugur) = quick_build();
        let res = Resolution::Fhd1080;
        let unknown = gaugur_gamesim::GameId(9_999);
        let garbage = vec![
            SessionOutcome {
                target: (unknown, res),
                others: vec![],
                observed_fps: 50.0,
            },
            SessionOutcome {
                target: (catalog[0].id, res),
                others: vec![(unknown, res)],
                observed_fps: 50.0,
            },
            SessionOutcome {
                target: (catalog[0].id, res),
                others: vec![],
                observed_fps: f64::NAN,
            },
            SessionOutcome {
                target: (catalog[0].id, res),
                others: vec![],
                observed_fps: -3.0,
            },
        ];
        assert!(gaugur.retrain_from_outcomes(&garbage, 10).is_none());

        let mut mixed = garbage.clone();
        mixed.push(SessionOutcome {
            target: (catalog[0].id, res),
            others: vec![(catalog[1].id, res)],
            observed_fps: 45.0,
        });
        let (_, report) = gaugur.retrain_from_outcomes(&mixed, 10).unwrap();
        assert_eq!(report.samples_used, 1);
        assert_eq!(report.samples_skipped, 4);
    }

    #[test]
    fn fold_in_game_makes_a_newcomer_predictable() {
        let (server, _, gaugur) = quick_build();
        // A 15th game the model has never seen, sparsely profiled.
        let big_catalog = GameCatalog::generate(42, 15);
        let newcomer = &big_catalog.games()[14];
        assert!(!gaugur.profiles.contains(newcomer.id));
        let profiler = Profiler::new(gaugur.config.profiling);
        let partial = server_partial(&profiler, &server, newcomer);
        let extended = gaugur.fold_in_game(&partial, &crate::cf::CfConfig::default());
        assert!(extended.profiles.contains(newcomer.id));
        let res = Resolution::Fhd1080;
        let d = extended.predict_degradation(
            (newcomer.id, res),
            &[(extended.profiles.sorted()[0].id, res)],
        );
        assert!(d > 0.0 && d <= 1.05, "folded-in prediction {d}");
    }

    fn server_partial(
        profiler: &Profiler,
        server: &Server,
        game: &gaugur_gamesim::Game,
    ) -> PartialProfile {
        profiler.profile_game_partial(
            server,
            game,
            &[
                gaugur_gamesim::Resource::GpuCore,
                gaugur_gamesim::Resource::CpuCore,
            ],
        )
    }

    #[test]
    fn qos_via_rm_and_cm_mostly_agree() {
        let (_, catalog, gaugur) = quick_build();
        let res = Resolution::Fhd1080;
        let ids: Vec<_> = catalog.games().iter().map(|g| g.id).collect();
        let mut agree = 0;
        let mut total = 0;
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                let cm = gaugur.predict_qos(60.0, (ids[i], res), &[(ids[j], res)]);
                let rm = gaugur.predict_qos_via_rm(60.0, (ids[i], res), &[(ids[j], res)]);
                agree += usize::from(cm == rm);
                total += 1;
            }
        }
        assert!(
            agree as f64 / total as f64 > 0.7,
            "CM and RM disagree too much: {agree}/{total}"
        );
    }
}
