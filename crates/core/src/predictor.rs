//! The unified online-prediction interface and its batched query plan.
//!
//! Every interference model in the workspace — [`GAugur`] here, the
//! Sigmoid/SMiTe/VBP baselines in `gaugur-baselines` — answers the same
//! three questions: how much does a target degrade under a co-runner set,
//! does it still meet a QoS floor, and (for the hot path) both of those
//! over a whole batch of queries at once. [`InterferencePredictor`] is
//! that contract; the scheduler and serving daemon program against it
//! instead of concrete model types.
//!
//! [`DegradationBatch`] is the query plan: co-runner sets are stored as
//! spans into one shared placement pool, so scoring every member of one
//! colocation ([`DegradationBatch::push_colocation`]) shares a single
//! intensity gather instead of materializing `k` filtered `Vec`s.
//!
//! Scratch-buffer ownership: the caller owns a [`FeatureBuffer`] (and the
//! output `Vec`), one per worker; a batch call borrows them, overwrites
//! their contents, and leaves the grown capacity behind. Predictors never
//! keep internal mutable state, so one immutable predictor can serve any
//! number of workers, each with its own scratch.

use crate::features::{rm_features_excluding_into, rm_features_into, FeatureBuffer, NO_SKIP};
use crate::gaugur::GAugur;
use crate::train::Placement;
use gaugur_ml::Rows;

/// One co-runner span inside a [`DegradationBatch`]: `len` placements
/// starting at `start` in the pool, with `skip` (an index *within the
/// span*) excluded, or nothing excluded when `skip == NO_SKIP`.
#[derive(Debug, Clone, Copy)]
struct Span {
    start: usize,
    len: usize,
    skip: usize,
}

/// A batch of degradation queries against one predictor.
///
/// Reusable: `clear` and refill each decision round; the backing storage
/// is retained.
#[derive(Debug, Default)]
pub struct DegradationBatch {
    targets: Vec<Placement>,
    pool: Vec<Placement>,
    spans: Vec<Span>,
}

impl DegradationBatch {
    /// A fresh, empty batch.
    pub fn new() -> DegradationBatch {
        DegradationBatch::default()
    }

    /// Drop all queries, keeping capacity.
    pub fn clear(&mut self) {
        self.targets.clear();
        self.pool.clear();
        self.spans.clear();
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when no queries are queued.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Queue one query: degradation of `target` under co-runners `others`.
    pub fn push(&mut self, target: Placement, others: &[Placement]) {
        let start = self.pool.len();
        self.pool.extend_from_slice(others);
        self.targets.push(target);
        self.spans.push(Span {
            start,
            len: others.len(),
            skip: NO_SKIP,
        });
    }

    /// Queue one query per member of a colocation: member `i`'s co-runner
    /// set is the other `members`. The members are pooled once and shared
    /// by all `members.len()` queries, so a batched predictor can reuse
    /// one intensity gather across them.
    pub fn push_colocation(&mut self, members: &[Placement]) {
        let start = self.pool.len();
        self.pool.extend_from_slice(members);
        for (i, &m) in members.iter().enumerate() {
            self.targets.push(m);
            self.spans.push(Span {
                start,
                len: members.len(),
                skip: i,
            });
        }
    }

    /// The target of query `i`.
    pub fn target(&self, i: usize) -> Placement {
        self.targets[i]
    }

    /// Materialize query `i`'s co-runner set into `out` (cleared first).
    /// Used by the scalar fallback; batched implementations read the span
    /// directly instead.
    pub fn copy_others_into(&self, i: usize, out: &mut Vec<Placement>) {
        out.clear();
        let span = self.spans[i];
        for (j, &p) in self.pool[span.start..span.start + span.len]
            .iter()
            .enumerate()
        {
            if j != span.skip {
                out.push(p);
            }
        }
    }

    fn span(&self, i: usize) -> Span {
        self.spans[i]
    }

    fn pool_slice(&self, span: Span) -> &[Placement] {
        &self.pool[span.start..span.start + span.len]
    }
}

/// The unified online interface of every interference model.
///
/// Implementations must be immutable (`&self`) and [`Sync`]: the scheduler
/// shares one predictor across workers, each bringing its own scratch.
pub trait InterferencePredictor: Sync {
    /// Predicted degradation ratio (colocated FPS / solo FPS) of `target`
    /// under the co-runner set `others`.
    fn predict_degradation(&self, target: Placement, others: &[Placement]) -> f64;

    /// Does `target` meet `qos` FPS under the co-runner set `others`?
    fn meets_qos(&self, qos: f64, target: Placement, others: &[Placement]) -> bool;

    /// Short display name ("GAugur", "Sigmoid", …) for tables and logs.
    fn name(&self) -> &'static str;

    /// Answer every query in `batch`, writing `batch.len()` degradation
    /// ratios into `out` (cleared first) in query order. Must be
    /// bit-identical to calling [`predict_degradation`] per query.
    ///
    /// The default materializes each co-runner set into the scratch and
    /// loops; batched models override this with one fused evaluation.
    ///
    /// [`predict_degradation`]: InterferencePredictor::predict_degradation
    fn predict_degradation_batch(
        &self,
        batch: &DegradationBatch,
        scratch: &mut FeatureBuffer,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        let mut others = std::mem::take(&mut scratch.others);
        for i in 0..batch.len() {
            batch.copy_others_into(i, &mut others);
            out.push(self.predict_degradation(batch.target(i), &others));
        }
        scratch.others = others;
    }
}

impl InterferencePredictor for GAugur {
    fn predict_degradation(&self, target: Placement, others: &[Placement]) -> f64 {
        GAugur::predict_degradation(self, target, others)
    }

    fn meets_qos(&self, qos: f64, target: Placement, others: &[Placement]) -> bool {
        self.predict_qos(qos, target, others)
    }

    fn name(&self) -> &'static str {
        "GAugur"
    }

    /// Fused batch path: one intensity gather per distinct colocation span,
    /// all RM feature rows packed into one flat matrix, one tree-major
    /// ensemble evaluation. Bit-identical to the scalar path because rows
    /// are assembled by the same (`*_into`) feature code and the ensemble
    /// batch evaluators preserve the scalar summation order.
    fn predict_degradation_batch(
        &self,
        batch: &DegradationBatch,
        scratch: &mut FeatureBuffer,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        if batch.is_empty() {
            return;
        }
        scratch.rows.clear();
        let mut gathered: Option<(usize, usize)> = None;
        for i in 0..batch.len() {
            let span = batch.span(i);
            if gathered != Some((span.start, span.len)) {
                scratch.intensities.clear();
                for &(id, res) in batch.pool_slice(span) {
                    scratch
                        .intensities
                        .push(self.profiles.get(id).intensity_at(res));
                }
                gathered = Some((span.start, span.len));
            }
            let profile = self.profiles.get(batch.target(i).0);
            if span.skip == NO_SKIP {
                rm_features_into(profile, &scratch.intensities, &mut scratch.rows);
            } else {
                rm_features_excluding_into(
                    profile,
                    &scratch.intensities,
                    span.skip,
                    &mut scratch.rows,
                );
            }
        }
        let width = scratch.rows.len() / batch.len();
        let FeatureBuffer { rows, scaled, .. } = scratch;
        self.rm.predict_rows(Rows::new(rows, width), scaled, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaugur::GAugurConfig;
    use crate::train::ColocationPlan;
    use gaugur_gamesim::{GameCatalog, GameId, Resolution, Server};

    fn quick_build() -> (GameCatalog, GAugur) {
        let server = Server::reference(31);
        let catalog = GameCatalog::generate(42, 10);
        let config = GAugurConfig {
            plan: ColocationPlan {
                pairs: 25,
                triples: 8,
                quads: 0,
                seed: 2,
            },
            ..GAugurConfig::default()
        };
        let gaugur = GAugur::build(&server, &catalog, config);
        (catalog, gaugur)
    }

    #[test]
    fn batched_degradation_is_bit_identical_to_scalar() {
        let (catalog, gaugur) = quick_build();
        let ids: Vec<GameId> = catalog.games().iter().map(|g| g.id).collect();
        let res = Resolution::Fhd1080;

        let mut batch = DegradationBatch::new();
        let mut expected = Vec::new();

        // Explicit-others queries, including the empty co-runner set.
        for w in ids.windows(3) {
            let target = (w[0], res);
            let others = [(w[1], res), (w[2], Resolution::Hd720)];
            batch.push(target, &others);
            expected.push(gaugur.predict_degradation(target, &others));
            batch.push(target, &[]);
            expected.push(gaugur.predict_degradation(target, &[]));
        }
        // Shared-colocation queries: every member of one group.
        for w in ids.windows(4) {
            let members: Vec<Placement> = w.iter().map(|&g| (g, res)).collect();
            batch.push_colocation(&members);
            for i in 0..members.len() {
                let others: Vec<Placement> = members
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &p)| p)
                    .collect();
                expected.push(gaugur.predict_degradation(members[i], &others));
            }
        }

        let mut scratch = FeatureBuffer::new();
        let mut out = Vec::new();
        gaugur.predict_degradation_batch(&batch, &mut scratch, &mut out);
        assert_eq!(out.len(), expected.len());
        for (i, (a, b)) in out.iter().zip(&expected).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "query {i}: {a} vs {b}");
        }

        // The scalar-fallback default must agree too (it is the reference
        // the baselines inherit).
        struct ScalarOnly<'a>(&'a GAugur);
        impl InterferencePredictor for ScalarOnly<'_> {
            fn predict_degradation(&self, t: Placement, o: &[Placement]) -> f64 {
                self.0.predict_degradation(t, o)
            }
            fn meets_qos(&self, q: f64, t: Placement, o: &[Placement]) -> bool {
                self.0.predict_qos(q, t, o)
            }
            fn name(&self) -> &'static str {
                "scalar"
            }
        }
        let mut fallback = Vec::new();
        ScalarOnly(&gaugur).predict_degradation_batch(&batch, &mut scratch, &mut fallback);
        assert_eq!(fallback.len(), expected.len());
        for (a, b) in fallback.iter().zip(&expected) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn trait_meets_qos_is_the_cm_judgement() {
        let (catalog, gaugur) = quick_build();
        let res = Resolution::Fhd1080;
        let t = (catalog[0].id, res);
        let o = [(catalog[1].id, res)];
        let p: &dyn InterferencePredictor = &gaugur;
        assert_eq!(p.meets_qos(60.0, t, &o), gaugur.predict_qos(60.0, t, &o));
        assert_eq!(p.name(), "GAugur");
    }

    #[test]
    fn batch_reuse_after_clear_is_clean() {
        let (catalog, gaugur) = quick_build();
        let res = Resolution::Fhd1080;
        let t = (catalog[0].id, res);
        let o = [(catalog[1].id, res)];

        let mut batch = DegradationBatch::new();
        let mut scratch = FeatureBuffer::new();
        let mut out = Vec::new();

        batch.push_colocation(&[t, o[0], (catalog[2].id, res)]);
        gaugur.predict_degradation_batch(&batch, &mut scratch, &mut out);
        assert_eq!(out.len(), 3);

        batch.clear();
        assert!(batch.is_empty());
        batch.push(t, &o);
        gaugur.predict_degradation_batch(&batch, &mut scratch, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].to_bits(),
            gaugur.predict_degradation(t, &o).to_bits()
        );
    }
}
