//! Permutation feature importance for the regression model.
//!
//! Answers the operator question the paper's Section 3.2 raises implicitly:
//! *which shared resources actually drive interference on my catalog?*
//! Each feature group (a resource's sensitivity curve, a resource's
//! aggregate-intensity statistics, the colocation size) is shuffled across
//! samples; the increase in prediction error is that group's importance.

use crate::features::sensitivity_width;
use crate::model::RegressionModel;
use gaugur_gamesim::rng::rng_for;
use gaugur_gamesim::{Resource, ALL_RESOURCES};
use gaugur_ml::metrics::mean_relative_error;
use gaugur_ml::Dataset;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// A named group of feature columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureGroup {
    /// One resource's sensitivity-curve samples.
    Sensitivity(Resource),
    /// One resource's aggregate-intensity `(mean, var)` pair.
    Intensity(Resource),
    /// The colocation-size count.
    ColocationSize,
}

impl FeatureGroup {
    /// Human-readable label.
    pub fn label(&self) -> String {
        match self {
            FeatureGroup::Sensitivity(r) => format!("sensitivity {}", r.short_name()),
            FeatureGroup::Intensity(r) => format!("intensity {}", r.short_name()),
            FeatureGroup::ColocationSize => "colocation size".to_string(),
        }
    }

    /// The RM feature columns belonging to this group for granularity `k`.
    fn columns(&self, granularity: usize) -> Vec<usize> {
        let per_curve = granularity + 1;
        let agg_base = sensitivity_width(granularity);
        match self {
            FeatureGroup::Sensitivity(r) => {
                let start = r.index() * per_curve;
                (start..start + per_curve).collect()
            }
            FeatureGroup::ColocationSize => vec![agg_base],
            FeatureGroup::Intensity(r) => {
                let start = agg_base + 1 + 2 * r.index();
                vec![start, start + 1]
            }
        }
    }

    /// All groups of the RM feature layout.
    pub fn all() -> Vec<FeatureGroup> {
        let mut out = Vec::with_capacity(2 * ALL_RESOURCES.len() + 1);
        out.extend(ALL_RESOURCES.iter().map(|&r| FeatureGroup::Sensitivity(r)));
        out.push(FeatureGroup::ColocationSize);
        out.extend(ALL_RESOURCES.iter().map(|&r| FeatureGroup::Intensity(r)));
        out
    }
}

/// Permutation importance of every feature group on an evaluation set:
/// `error(shuffled) − error(intact)`, higher = more important. Results are
/// sorted descending.
pub fn permutation_importance(
    model: &RegressionModel,
    data: &Dataset,
    granularity: usize,
    seed: u64,
) -> Vec<(FeatureGroup, f64)> {
    assert!(!data.is_empty(), "importance needs evaluation samples");
    let base_preds: Vec<f64> = data.features.iter().map(|x| model.predict(x)).collect();
    let base_err = mean_relative_error(&base_preds, &data.targets);

    let n = data.len();
    let mut out = Vec::new();
    for group in FeatureGroup::all() {
        let cols = group.columns(granularity);
        // One shuffled row order per group, applied to all its columns
        // together (keeps within-group consistency).
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng_for(seed, &[0x1111, cols[0] as u64]));

        let preds: Vec<f64> = (0..n)
            .map(|i| {
                let mut x = data.features[i].clone();
                for &c in &cols {
                    x[c] = data.features[order[i]][c];
                }
                model.predict(&x)
            })
            .collect();
        let err = mean_relative_error(&preds, &data.targets);
        out.push((group, err - base_err));
    }
    out.sort_by(|a, b| b.1.total_cmp(&a.1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Algorithm;
    use crate::train::{build_rm_samples, to_dataset};
    use gaugur_core_test_support::*;

    // Local fixture helpers (kept in-module to avoid a dev-dependency cycle).
    mod gaugur_core_test_support {
        pub use crate::profile::{Profiler, ProfilingConfig};
        pub use crate::train::{
            measure_colocations, plan_colocations, ColocationPlan, ProfileStore,
        };
        pub use gaugur_gamesim::{GameCatalog, Server};
    }

    #[test]
    fn feature_groups_tile_the_rm_layout_exactly() {
        let k = 10;
        let width = crate::features::rm_width(k);
        let mut seen = vec![false; width];
        for g in FeatureGroup::all() {
            for c in g.columns(k) {
                assert!(!seen[c], "column {c} covered twice by {g:?}");
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every column covered");
        assert_eq!(
            FeatureGroup::all().len(),
            2 * 7 + 1,
            "7 curves + size + 7 intensity pairs"
        );
    }

    #[test]
    fn importance_ranks_real_signal_above_nothing() {
        let server = Server::reference(71);
        let catalog = GameCatalog::generate(42, 12);
        let profiles = ProfileStore::new(
            Profiler::new(ProfilingConfig::default()).profile_catalog(&server, &catalog),
        );
        let plan = ColocationPlan {
            pairs: 120,
            triples: 30,
            quads: 20,
            seed: 6,
        };
        let measured = measure_colocations(&server, &catalog, &plan_colocations(&catalog, &plan));
        let data = to_dataset(&build_rm_samples(&profiles, &measured));
        let model = RegressionModel::train(&data, Algorithm::GradientBoosting, 3);

        let imp = permutation_importance(&model, &data, 10, 9);
        assert_eq!(imp.len(), 15);
        // Sorted descending; the top group must carry real signal.
        assert!(imp[0].1 > 0.0, "top group should matter: {:?}", imp[0]);
        assert!(imp[0].1 >= imp.last().unwrap().1);
        // Labels render.
        assert!(!imp[0].0.label().is_empty());
    }
}
