//! Feature-vector assembly for the prediction models (paper Section 3.4).
//!
//! The number of colocated games varies, but the models need fixed-width
//! inputs. The paper's Eq. (5) folds the colocated set's intensities into
//! `2R + 1` statistics:
//!
//! `I_G = [|G|, (mean_1, var_1), …, (mean_R, var_R)]`
//!
//! Summing the intensities instead would be wrong, because game intensity is
//! not additive (Observation 5). Note the paper defines the spread as
//! `var_G = (1/|G|)·sqrt(Σ(I − mean)²)` — a scaled standard deviation rather
//! than a textbook variance — and we follow the paper's formula exactly.

use crate::profile::GameProfile;
use crate::train::Placement;
use gaugur_gamesim::{ResourceVec, ALL_RESOURCES, NUM_RESOURCES};

/// Number of features of the aggregate-intensity transform (`2R + 1`).
pub const AGGREGATE_INTENSITY_WIDTH: usize = 2 * NUM_RESOURCES + 1;

/// Sentinel for "exclude no index" in the `*_excluding` aggregations.
pub(crate) const NO_SKIP: usize = usize::MAX;

/// Paper Eq. (5): fold the per-game intensity vectors of a colocated set into
/// `[|G|, (mean_r, var_r) …]`.
pub fn aggregate_intensity(intensities: &[ResourceVec]) -> Vec<f64> {
    let mut out = Vec::with_capacity(AGGREGATE_INTENSITY_WIDTH);
    aggregate_intensity_into(intensities, &mut out);
    out
}

/// [`aggregate_intensity`] appended to a reusable buffer (bit-identical
/// output, no allocation once `out` has capacity).
pub fn aggregate_intensity_into(intensities: &[ResourceVec], out: &mut Vec<f64>) {
    aggregate_excluding(intensities, NO_SKIP, out);
}

/// [`aggregate_intensity`] over all intensities *except* index `skip`,
/// appended to `out`. Bit-identical to filtering the slice first: the
/// non-skipped elements are visited in the same order, so every float
/// summation runs in the same order. This is what lets one colocation's
/// intensity gather be shared across its members (member `i`'s co-runner
/// set is "everyone but `i`").
pub fn aggregate_intensity_excluding_into(
    intensities: &[ResourceVec],
    skip: usize,
    out: &mut Vec<f64>,
) {
    debug_assert!(skip < intensities.len(), "skip index out of range");
    aggregate_excluding(intensities, skip, out);
}

fn aggregate_excluding(intensities: &[ResourceVec], skip: usize, out: &mut Vec<f64>) {
    let count = if skip < intensities.len() {
        intensities.len() - 1
    } else {
        intensities.len()
    };
    let n = count as f64;
    out.push(count as f64);
    for r in ALL_RESOURCES {
        if count == 0 {
            out.push(0.0);
            out.push(0.0);
            continue;
        }
        let mean = intensities
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != skip)
            .map(|(_, i)| i[r])
            .sum::<f64>()
            / n;
        let sumsq: f64 = intensities
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != skip)
            .map(|(_, i)| (i[r] - mean).powi(2))
            .sum();
        // The paper's formula: (1/|G|)·sqrt(Σ(I − mean)²).
        let var = sumsq.sqrt() / n;
        out.push(mean);
        out.push(var);
    }
}

/// Width of the flattened sensitivity-curve block for granularity `k`.
pub fn sensitivity_width(granularity: usize) -> usize {
    NUM_RESOURCES * (granularity + 1)
}

/// Flatten a game's sensitivity curves into one block (resource-major).
pub fn flatten_sensitivity(profile: &GameProfile) -> Vec<f64> {
    let mut out = Vec::with_capacity(sensitivity_width(profile.granularity));
    flatten_sensitivity_into(profile, &mut out);
    out
}

/// [`flatten_sensitivity`] appended to a reusable buffer.
pub fn flatten_sensitivity_into(profile: &GameProfile, out: &mut Vec<f64>) {
    for curve in &profile.sensitivity {
        out.extend_from_slice(&curve.samples);
    }
}

/// Regression-model features (paper Eq. 4): the target game's sensitivity
/// curves plus the aggregate intensity of the co-runners.
pub fn rm_features(target: &GameProfile, corunner_intensities: &[ResourceVec]) -> Vec<f64> {
    let mut out = Vec::with_capacity(rm_width(target.granularity));
    rm_features_into(target, corunner_intensities, &mut out);
    out
}

/// [`rm_features`] appended to a reusable buffer (bit-identical output).
pub fn rm_features_into(
    target: &GameProfile,
    corunner_intensities: &[ResourceVec],
    out: &mut Vec<f64>,
) {
    flatten_sensitivity_into(target, out);
    aggregate_intensity_into(corunner_intensities, out);
}

/// RM features where the co-runner set is `colocation_intensities` minus
/// index `skip` (the target's own slot). Appended to `out`; bit-identical
/// to filtering the slice and calling [`rm_features`].
pub fn rm_features_excluding_into(
    target: &GameProfile,
    colocation_intensities: &[ResourceVec],
    skip: usize,
    out: &mut Vec<f64>,
) {
    flatten_sensitivity_into(target, out);
    aggregate_intensity_excluding_into(colocation_intensities, skip, out);
}

/// Width of the RM feature vector for granularity `k`.
pub fn rm_width(granularity: usize) -> usize {
    sensitivity_width(granularity) + AGGREGATE_INTENSITY_WIDTH
}

/// Classification-model features (paper Eq. 3): the QoS requirement and the
/// target's solo FPS, then the RM features.
///
/// One engineered interaction is added to the paper's inputs: the ratio
/// `qos / solo_fps`, i.e. the degradation threshold the game must stay
/// above. Tree splits are axis-aligned, so without this ratio the CM would
/// need many splits to rediscover `δ · solo ≥ qos`; with it the QoS boundary
/// is a single split. (Both raw inputs are retained.)
pub fn cm_features(
    qos: f64,
    solo_fps: f64,
    target: &GameProfile,
    corunner_intensities: &[ResourceVec],
) -> Vec<f64> {
    let mut out = Vec::with_capacity(cm_width(target.granularity));
    cm_features_into(qos, solo_fps, target, corunner_intensities, &mut out);
    out
}

/// [`cm_features`] appended to a reusable buffer (bit-identical output).
pub fn cm_features_into(
    qos: f64,
    solo_fps: f64,
    target: &GameProfile,
    corunner_intensities: &[ResourceVec],
    out: &mut Vec<f64>,
) {
    out.push(qos);
    out.push(solo_fps);
    out.push(qos / solo_fps.max(1.0));
    rm_features_into(target, corunner_intensities, out);
}

/// Width of the CM feature vector for granularity `k`.
pub fn cm_width(granularity: usize) -> usize {
    rm_width(granularity) + 3
}

/// Reusable scratch space for the zero-allocation inference path.
///
/// One `FeatureBuffer` is owned exclusively by one worker (thread-local in
/// the serving daemon, stack-local elsewhere); the predictor borrows it for
/// the duration of one batch call and leaves its capacity behind for the
/// next call. Nothing in it is meaningful between calls.
#[derive(Debug, Default)]
pub struct FeatureBuffer {
    /// Gathered intensity vectors of one colocation.
    pub(crate) intensities: Vec<ResourceVec>,
    /// Packed feature rows (row-major).
    pub(crate) rows: Vec<f64>,
    /// Standardized copy of a feature row (SVM models only).
    pub(crate) scaled: Vec<f64>,
    /// Materialized co-runner sets for the scalar fallback path.
    pub(crate) others: Vec<Placement>,
}

impl FeatureBuffer {
    /// A fresh, empty buffer. Capacity grows on first use and is retained.
    pub fn new() -> FeatureBuffer {
        FeatureBuffer::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Profiler, ProfilingConfig};
    use gaugur_gamesim::{GameCatalog, Server};

    fn profile() -> GameProfile {
        let server = Server::reference(3);
        let cat = GameCatalog::generate(42, 5);
        Profiler::new(ProfilingConfig::default()).profile_game(&server, &cat[0])
    }

    #[test]
    fn aggregate_width_is_2r_plus_1() {
        let a = aggregate_intensity(&[ResourceVec::ZERO, ResourceVec::ZERO]);
        assert_eq!(a.len(), AGGREGATE_INTENSITY_WIDTH);
        assert_eq!(a[0], 2.0);
    }

    #[test]
    fn aggregate_matches_paper_formula() {
        let i1 = ResourceVec([0.2; 7]);
        let i2 = ResourceVec([0.6; 7]);
        let a = aggregate_intensity(&[i1, i2]);
        // mean = 0.4; var = sqrt(0.04 + 0.04) / 2 = sqrt(0.08)/2.
        assert!((a[1] - 0.4).abs() < 1e-12);
        assert!((a[2] - 0.08_f64.sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_is_permutation_invariant() {
        let i1 = ResourceVec([0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]);
        let i2 = ResourceVec([0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1]);
        let i3 = ResourceVec([0.0, 0.9, 0.1, 0.8, 0.2, 0.7, 0.3]);
        let a = aggregate_intensity(&[i1, i2, i3]);
        let b = aggregate_intensity(&[i3, i1, i2]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_corunner_set_is_well_defined() {
        let a = aggregate_intensity(&[]);
        assert_eq!(a[0], 0.0);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn feature_widths_are_consistent() {
        let p = profile();
        let ints = [ResourceVec::ZERO];
        assert_eq!(flatten_sensitivity(&p).len(), sensitivity_width(10));
        assert_eq!(rm_features(&p, &ints).len(), rm_width(10));
        assert_eq!(cm_features(60.0, 100.0, &p, &ints).len(), cm_width(10));
        assert_eq!(rm_width(10), 7 * 11 + 15);
        assert_eq!(cm_width(10), 7 * 11 + 15 + 3);
    }

    #[test]
    fn cm_features_lead_with_qos_and_solo_fps() {
        let p = profile();
        let f = cm_features(60.0, 123.0, &p, &[ResourceVec::ZERO]);
        assert_eq!(f[0], 60.0);
        assert_eq!(f[1], 123.0);
    }

    mod bit_identity {
        use super::*;
        use proptest::prelude::*;
        use std::sync::OnceLock;

        fn cached_profile() -> &'static GameProfile {
            static PROFILE: OnceLock<GameProfile> = OnceLock::new();
            PROFILE.get_or_init(profile)
        }

        fn bits(v: &[f64]) -> Vec<u64> {
            v.iter().map(|x| x.to_bits()).collect()
        }

        fn to_resource_vecs(raw: Vec<Vec<f64>>) -> Vec<ResourceVec> {
            raw.into_iter()
                .map(|v| ResourceVec(v.try_into().expect("7-wide")))
                .collect()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn into_variants_match_allocating_variants(
                raw in proptest::collection::vec(
                    proptest::collection::vec(0.0f64..1.0, NUM_RESOURCES), 0..6),
                qos in 10.0f64..120.0,
                solo in 30.0f64..200.0,
            ) {
                let p = cached_profile();
                let ints = to_resource_vecs(raw);

                let mut out = vec![999.0]; // pre-existing content must survive
                aggregate_intensity_into(&ints, &mut out);
                prop_assert_eq!(bits(&out[1..]), bits(&aggregate_intensity(&ints)));

                let mut out = Vec::new();
                rm_features_into(p, &ints, &mut out);
                prop_assert_eq!(bits(&out), bits(&rm_features(p, &ints)));

                let mut out = Vec::new();
                cm_features_into(qos, solo, p, &ints, &mut out);
                prop_assert_eq!(bits(&out), bits(&cm_features(qos, solo, p, &ints)));
            }

            #[test]
            fn excluding_aggregate_matches_filtering_first(
                raw in proptest::collection::vec(
                    proptest::collection::vec(0.0f64..1.0, NUM_RESOURCES), 1..6),
                skip_seed in 0usize..1_000_000,
            ) {
                let p = cached_profile();
                let ints = to_resource_vecs(raw);
                let skip = skip_seed % ints.len();
                let filtered: Vec<ResourceVec> = ints
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != skip)
                    .map(|(_, &i)| i)
                    .collect();

                let mut out = Vec::new();
                aggregate_intensity_excluding_into(&ints, skip, &mut out);
                prop_assert_eq!(bits(&out), bits(&aggregate_intensity(&filtered)));

                let mut out = Vec::new();
                rm_features_excluding_into(p, &ints, skip, &mut out);
                prop_assert_eq!(bits(&out), bits(&rm_features(p, &filtered)));
            }
        }
    }
}
