//! Feature-vector assembly for the prediction models (paper Section 3.4).
//!
//! The number of colocated games varies, but the models need fixed-width
//! inputs. The paper's Eq. (5) folds the colocated set's intensities into
//! `2R + 1` statistics:
//!
//! `I_G = [|G|, (mean_1, var_1), …, (mean_R, var_R)]`
//!
//! Summing the intensities instead would be wrong, because game intensity is
//! not additive (Observation 5). Note the paper defines the spread as
//! `var_G = (1/|G|)·sqrt(Σ(I − mean)²)` — a scaled standard deviation rather
//! than a textbook variance — and we follow the paper's formula exactly.

use crate::profile::GameProfile;
use gaugur_gamesim::{ResourceVec, ALL_RESOURCES, NUM_RESOURCES};

/// Number of features of the aggregate-intensity transform (`2R + 1`).
pub const AGGREGATE_INTENSITY_WIDTH: usize = 2 * NUM_RESOURCES + 1;

/// Paper Eq. (5): fold the per-game intensity vectors of a colocated set into
/// `[|G|, (mean_r, var_r) …]`.
pub fn aggregate_intensity(intensities: &[ResourceVec]) -> Vec<f64> {
    let n = intensities.len() as f64;
    let mut out = Vec::with_capacity(AGGREGATE_INTENSITY_WIDTH);
    out.push(intensities.len() as f64);
    for r in ALL_RESOURCES {
        if intensities.is_empty() {
            out.push(0.0);
            out.push(0.0);
            continue;
        }
        let mean = intensities.iter().map(|i| i[r]).sum::<f64>() / n;
        let sumsq: f64 = intensities.iter().map(|i| (i[r] - mean).powi(2)).sum();
        // The paper's formula: (1/|G|)·sqrt(Σ(I − mean)²).
        let var = sumsq.sqrt() / n;
        out.push(mean);
        out.push(var);
    }
    out
}

/// Width of the flattened sensitivity-curve block for granularity `k`.
pub fn sensitivity_width(granularity: usize) -> usize {
    NUM_RESOURCES * (granularity + 1)
}

/// Flatten a game's sensitivity curves into one block (resource-major).
pub fn flatten_sensitivity(profile: &GameProfile) -> Vec<f64> {
    let mut out = Vec::with_capacity(sensitivity_width(profile.granularity));
    for curve in &profile.sensitivity {
        out.extend_from_slice(&curve.samples);
    }
    out
}

/// Regression-model features (paper Eq. 4): the target game's sensitivity
/// curves plus the aggregate intensity of the co-runners.
pub fn rm_features(target: &GameProfile, corunner_intensities: &[ResourceVec]) -> Vec<f64> {
    let mut out = flatten_sensitivity(target);
    out.extend(aggregate_intensity(corunner_intensities));
    out
}

/// Width of the RM feature vector for granularity `k`.
pub fn rm_width(granularity: usize) -> usize {
    sensitivity_width(granularity) + AGGREGATE_INTENSITY_WIDTH
}

/// Classification-model features (paper Eq. 3): the QoS requirement and the
/// target's solo FPS, then the RM features.
///
/// One engineered interaction is added to the paper's inputs: the ratio
/// `qos / solo_fps`, i.e. the degradation threshold the game must stay
/// above. Tree splits are axis-aligned, so without this ratio the CM would
/// need many splits to rediscover `δ · solo ≥ qos`; with it the QoS boundary
/// is a single split. (Both raw inputs are retained.)
pub fn cm_features(
    qos: f64,
    solo_fps: f64,
    target: &GameProfile,
    corunner_intensities: &[ResourceVec],
) -> Vec<f64> {
    let mut out = Vec::with_capacity(cm_width(target.granularity));
    out.push(qos);
    out.push(solo_fps);
    out.push(qos / solo_fps.max(1.0));
    out.extend(rm_features(target, corunner_intensities));
    out
}

/// Width of the CM feature vector for granularity `k`.
pub fn cm_width(granularity: usize) -> usize {
    rm_width(granularity) + 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Profiler, ProfilingConfig};
    use gaugur_gamesim::{GameCatalog, Server};

    fn profile() -> GameProfile {
        let server = Server::reference(3);
        let cat = GameCatalog::generate(42, 5);
        Profiler::new(ProfilingConfig::default()).profile_game(&server, &cat[0])
    }

    #[test]
    fn aggregate_width_is_2r_plus_1() {
        let a = aggregate_intensity(&[ResourceVec::ZERO, ResourceVec::ZERO]);
        assert_eq!(a.len(), AGGREGATE_INTENSITY_WIDTH);
        assert_eq!(a[0], 2.0);
    }

    #[test]
    fn aggregate_matches_paper_formula() {
        let i1 = ResourceVec([0.2; 7]);
        let i2 = ResourceVec([0.6; 7]);
        let a = aggregate_intensity(&[i1, i2]);
        // mean = 0.4; var = sqrt(0.04 + 0.04) / 2 = sqrt(0.08)/2.
        assert!((a[1] - 0.4).abs() < 1e-12);
        assert!((a[2] - 0.08_f64.sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_is_permutation_invariant() {
        let i1 = ResourceVec([0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]);
        let i2 = ResourceVec([0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1]);
        let i3 = ResourceVec([0.0, 0.9, 0.1, 0.8, 0.2, 0.7, 0.3]);
        let a = aggregate_intensity(&[i1, i2, i3]);
        let b = aggregate_intensity(&[i3, i1, i2]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_corunner_set_is_well_defined() {
        let a = aggregate_intensity(&[]);
        assert_eq!(a[0], 0.0);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn feature_widths_are_consistent() {
        let p = profile();
        let ints = [ResourceVec::ZERO];
        assert_eq!(flatten_sensitivity(&p).len(), sensitivity_width(10));
        assert_eq!(rm_features(&p, &ints).len(), rm_width(10));
        assert_eq!(cm_features(60.0, 100.0, &p, &ints).len(), cm_width(10));
        assert_eq!(rm_width(10), 7 * 11 + 15);
        assert_eq!(cm_width(10), 7 * 11 + 15 + 3);
    }

    #[test]
    fn cm_features_lead_with_qos_and_solo_fps() {
        let p = profile();
        let f = cm_features(60.0, 123.0, &p, &[ResourceVec::ZERO]);
        assert_eq!(f[0], 60.0);
        assert_eq!(f[1], 123.0);
    }
}
