//! The two prediction models of paper Section 3.4, each trainable with any
//! of the paper's four algorithm families.
//!
//! * **Classification model (CM)**, Eq. (3): does game A meet the QoS floor
//!   when colocated with `{B, C, …}`?
//! * **Regression model (RM)**, Eq. (4): the exact degradation ratio
//!   `δ̃ = colocated FPS / solo FPS` of game A.

use gaugur_ml::forest::ForestParams;
use gaugur_ml::gbdt::GbdtParams;
use gaugur_ml::svm::SvmParams;
use gaugur_ml::{
    Classifier, Dataset, DecisionTreeClassifier, DecisionTreeRegressor, GbdtClassifier,
    GbrtRegressor, RandomForestClassifier, RandomForestRegressor, Regressor, Rows, StandardScaler,
    SvmClassifier, SvmRegressor, TreeParams,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four model families evaluated in the paper (Figures 7a, 8a/8b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Single CART tree (DTC / DTR).
    DecisionTree,
    /// Gradient boosting (GBDT / GBRT) — the paper's winner.
    GradientBoosting,
    /// Random forest (RF).
    RandomForest,
    /// Support vector machine (SVC / SVR).
    Svm,
}

/// All algorithms, in the paper's presentation order.
pub const ALL_ALGORITHMS: [Algorithm; 4] = [
    Algorithm::DecisionTree,
    Algorithm::GradientBoosting,
    Algorithm::RandomForest,
    Algorithm::Svm,
];

impl Algorithm {
    /// The paper's abbreviation for the regression flavour.
    pub fn regression_name(self) -> &'static str {
        match self {
            Algorithm::DecisionTree => "DTR",
            Algorithm::GradientBoosting => "GBRT",
            Algorithm::RandomForest => "RF",
            Algorithm::Svm => "SVR",
        }
    }

    /// The paper's abbreviation for the classification flavour.
    pub fn classification_name(self) -> &'static str {
        match self {
            Algorithm::DecisionTree => "DTC",
            Algorithm::GradientBoosting => "GBDT",
            Algorithm::RandomForest => "RF",
            Algorithm::Svm => "SVC",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Algorithm::DecisionTree => "decision tree",
            Algorithm::GradientBoosting => "gradient boosting",
            Algorithm::RandomForest => "random forest",
            Algorithm::Svm => "SVM",
        })
    }
}

fn tree_params(seed: u64) -> TreeParams {
    TreeParams {
        max_depth: 12,
        min_samples_split: 12,
        min_samples_leaf: 6,
        max_features: None,
        seed,
    }
}

fn forest_params(seed: u64) -> ForestParams {
    ForestParams {
        n_trees: 120,
        tree: TreeParams {
            max_depth: 14,
            min_samples_split: 4,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
        },
        max_features: None,
        seed,
    }
}

fn gbdt_params(seed: u64) -> GbdtParams {
    GbdtParams {
        n_estimators: 400,
        learning_rate: 0.06,
        max_depth: 5,
        min_samples_leaf: 3,
        subsample: 0.9,
        seed,
    }
}

fn svm_params(seed: u64) -> SvmParams {
    SvmParams {
        // Library-default SVM settings (C = 1, wide ε-tube), as a paper
        // implementation would use off the shelf.
        c: 1.0,
        kernel: None, // default RBF for the data width
        epsilon: 0.08,
        tol: 1e-3,
        max_epochs: 30,
        seed,
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum RegInner {
    Dtr(DecisionTreeRegressor),
    Gbrt(GbrtRegressor),
    Rf(RandomForestRegressor),
    Svr(SvmRegressor),
}

/// A trained regression model (RM).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionModel {
    /// Which family the model belongs to.
    pub algorithm: Algorithm,
    inner: RegInner,
    scaler: Option<StandardScaler>,
    /// Physical clamp applied to predictions (degradation ratios live in
    /// `[0.01, 1.05]`; the delay extension uses a millisecond range).
    bounds: (f64, f64),
}

impl RegressionModel {
    /// Train on an RM dataset (features from
    /// [`crate::features::rm_features`], degradation-ratio targets).
    pub fn train(data: &Dataset, algorithm: Algorithm, seed: u64) -> RegressionModel {
        RegressionModel::train_with_bounds(data, algorithm, seed, (0.01, 1.05))
    }

    /// Train with custom prediction bounds (used by the interaction-delay
    /// extension, whose targets are milliseconds rather than ratios).
    pub fn train_with_bounds(
        data: &Dataset,
        algorithm: Algorithm,
        seed: u64,
        bounds: (f64, f64),
    ) -> RegressionModel {
        let (inner, scaler) = match algorithm {
            Algorithm::DecisionTree => (
                RegInner::Dtr(DecisionTreeRegressor::fit(data, tree_params(seed))),
                None,
            ),
            Algorithm::GradientBoosting => (
                RegInner::Gbrt(GbrtRegressor::fit(data, gbdt_params(seed))),
                None,
            ),
            Algorithm::RandomForest => (
                RegInner::Rf(RandomForestRegressor::fit(data, forest_params(seed))),
                None,
            ),
            Algorithm::Svm => {
                let scaler = StandardScaler::fit(data);
                let scaled = scaler.transform_dataset(data);
                (
                    RegInner::Svr(SvmRegressor::fit(&scaled, svm_params(seed))),
                    Some(scaler),
                )
            }
        };
        RegressionModel {
            algorithm,
            inner,
            scaler,
            bounds,
        }
    }

    /// Warm-start the model on fresh observations: gradient-boosted models
    /// keep their trained ensemble and continue boosting `extra_rounds`
    /// more rounds against `data`'s residuals (see
    /// [`GbrtRegressor::continue_fit`]); the other families have no
    /// incremental form, so they refit from scratch on `data` alone. The
    /// algorithm, scaler policy, and clamp bounds are preserved either way.
    ///
    /// With `extra_rounds == 0` a gradient-boosted model is returned
    /// bit-identical — the serving retrainer relies on this as its no-op
    /// baseline.
    pub fn warm_start(&self, data: &Dataset, extra_rounds: usize, seed: u64) -> RegressionModel {
        match &self.inner {
            RegInner::Gbrt(m) => RegressionModel {
                algorithm: self.algorithm,
                inner: RegInner::Gbrt(m.continue_fit(data, extra_rounds)),
                scaler: None,
                bounds: self.bounds,
            },
            _ => RegressionModel::train_with_bounds(data, self.algorithm, seed, self.bounds),
        }
    }

    /// Whether [`RegressionModel::warm_start`] continues boosting in place
    /// (gradient boosting) rather than refitting from scratch.
    pub fn supports_warm_start(&self) -> bool {
        matches!(self.inner, RegInner::Gbrt(_))
    }

    /// Predict the target for one feature vector (clamped to the model's
    /// physical bounds).
    pub fn predict(&self, x: &[f64]) -> f64 {
        let owned;
        let x = match &self.scaler {
            Some(s) => {
                owned = s.transform(x);
                owned.as_slice()
            }
            None => x,
        };
        self.raw_predict(x).clamp(self.bounds.0, self.bounds.1)
    }

    /// [`RegressionModel::predict`] with caller-provided scratch for the
    /// standardized copy (only the SVM family needs it); bit-identical and
    /// allocation-free once `scaled` has capacity.
    pub fn predict_into(&self, x: &[f64], scaled: &mut Vec<f64>) -> f64 {
        let raw = match &self.scaler {
            Some(s) => {
                s.transform_into(x, scaled);
                self.raw_predict(scaled)
            }
            None => self.raw_predict(x),
        };
        raw.clamp(self.bounds.0, self.bounds.1)
    }

    /// Batched prediction of a flat row-major batch into `out`. The tree
    /// ensembles evaluate tree-major over the whole batch; every row's
    /// result is bit-identical to [`RegressionModel::predict`] on that row.
    pub fn predict_rows(&self, rows: Rows<'_>, scaled: &mut Vec<f64>, out: &mut Vec<f64>) {
        match &self.scaler {
            Some(s) => {
                scaled.clear();
                for row in rows.iter() {
                    s.transform_extend(row, scaled);
                }
                self.raw_predict_rows(Rows::new(scaled, rows.width()), out);
            }
            None => self.raw_predict_rows(rows, out),
        }
        for v in out.iter_mut() {
            *v = v.clamp(self.bounds.0, self.bounds.1);
        }
    }

    fn raw_predict(&self, x: &[f64]) -> f64 {
        match &self.inner {
            RegInner::Dtr(m) => m.predict(x),
            RegInner::Gbrt(m) => m.predict(x),
            RegInner::Rf(m) => m.predict(x),
            RegInner::Svr(m) => m.predict(x),
        }
    }

    fn raw_predict_rows(&self, rows: Rows<'_>, out: &mut Vec<f64>) {
        match &self.inner {
            RegInner::Dtr(m) => m.predict_batch(rows, out),
            RegInner::Gbrt(m) => m.predict_batch(rows, out),
            RegInner::Rf(m) => m.predict_batch(rows, out),
            RegInner::Svr(m) => Regressor::predict_rows(m, rows, out),
        }
    }

    /// Human-readable hyperparameter summary (for `gaugur inspect`).
    pub fn hyperparameters(&self) -> String {
        match &self.inner {
            RegInner::Dtr(m) => format!(
                "DTR(max_depth={}, min_samples_split={}, min_samples_leaf={})",
                m.params.max_depth, m.params.min_samples_split, m.params.min_samples_leaf
            ),
            RegInner::Gbrt(m) => format!(
                "GBRT(n_estimators={}, learning_rate={}, max_depth={}, subsample={})",
                m.params.n_estimators,
                m.params.learning_rate,
                m.params.max_depth,
                m.params.subsample
            ),
            RegInner::Rf(m) => format!(
                "RF(n_trees={}, max_depth={})",
                m.params.n_trees, m.params.tree.max_depth
            ),
            RegInner::Svr(m) => format!(
                "SVR(C={}, epsilon={}, max_epochs={})",
                m.params.c, m.params.epsilon, m.params.max_epochs
            ),
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum ClsInner {
    Dtc(DecisionTreeClassifier),
    Gbdt(GbdtClassifier),
    Rf(RandomForestClassifier),
    Svc(SvmClassifier),
}

/// A trained classification model (CM).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassificationModel {
    /// Which family the model belongs to.
    pub algorithm: Algorithm,
    inner: ClsInner,
    scaler: Option<StandardScaler>,
}

impl ClassificationModel {
    /// Train on a CM dataset (features from
    /// [`crate::features::cm_features`], `{0, 1}` targets).
    pub fn train(data: &Dataset, algorithm: Algorithm, seed: u64) -> ClassificationModel {
        let (inner, scaler) = match algorithm {
            Algorithm::DecisionTree => (
                ClsInner::Dtc(DecisionTreeClassifier::fit(data, tree_params(seed))),
                None,
            ),
            Algorithm::GradientBoosting => (
                ClsInner::Gbdt(GbdtClassifier::fit(data, gbdt_params(seed))),
                None,
            ),
            Algorithm::RandomForest => (
                ClsInner::Rf(RandomForestClassifier::fit(data, forest_params(seed))),
                None,
            ),
            Algorithm::Svm => {
                let scaler = StandardScaler::fit(data);
                let scaled = scaler.transform_dataset(data);
                (
                    ClsInner::Svc(SvmClassifier::fit(&scaled, svm_params(seed))),
                    Some(scaler),
                )
            }
        };
        ClassificationModel {
            algorithm,
            inner,
            scaler,
        }
    }

    /// Positive-class (QoS satisfied) score in `[0, 1]`.
    pub fn score(&self, x: &[f64]) -> f64 {
        let owned;
        let x = match &self.scaler {
            Some(s) => {
                owned = s.transform(x);
                owned.as_slice()
            }
            None => x,
        };
        self.raw_score(x)
    }

    /// Batched scoring of a flat row-major batch into `out`; every row's
    /// result is bit-identical to [`ClassificationModel::score`] on it.
    pub fn score_rows(&self, rows: Rows<'_>, scaled: &mut Vec<f64>, out: &mut Vec<f64>) {
        match &self.scaler {
            Some(s) => {
                scaled.clear();
                for row in rows.iter() {
                    s.transform_extend(row, scaled);
                }
                self.raw_score_rows(Rows::new(scaled, rows.width()), out);
            }
            None => self.raw_score_rows(rows, out),
        }
    }

    fn raw_score(&self, x: &[f64]) -> f64 {
        match &self.inner {
            ClsInner::Dtc(m) => m.score(x),
            ClsInner::Gbdt(m) => m.score(x),
            ClsInner::Rf(m) => m.score(x),
            ClsInner::Svc(m) => m.score(x),
        }
    }

    fn raw_score_rows(&self, rows: Rows<'_>, out: &mut Vec<f64>) {
        match &self.inner {
            ClsInner::Dtc(m) => m.score_batch(rows, out),
            ClsInner::Gbdt(m) => m.score_batch(rows, out),
            ClsInner::Rf(m) => m.score_batch(rows, out),
            ClsInner::Svc(m) => Classifier::score_rows(m, rows, out),
        }
    }

    /// Hard decision: does the game satisfy the QoS requirement?
    pub fn classify(&self, x: &[f64]) -> bool {
        self.score(x) >= 0.5
    }

    /// Human-readable hyperparameter summary (for `gaugur inspect`).
    pub fn hyperparameters(&self) -> String {
        match &self.inner {
            ClsInner::Dtc(m) => format!(
                "DTC(max_depth={}, min_samples_split={}, min_samples_leaf={})",
                m.params.max_depth, m.params.min_samples_split, m.params.min_samples_leaf
            ),
            ClsInner::Gbdt(m) => format!(
                "GBDT(n_estimators={}, learning_rate={}, max_depth={}, subsample={})",
                m.params.n_estimators,
                m.params.learning_rate,
                m.params.max_depth,
                m.params.subsample
            ),
            ClsInner::Rf(m) => format!(
                "RF(n_trees={}, max_depth={})",
                m.params.n_trees, m.params.tree.max_depth
            ),
            ClsInner::Svc(m) => format!(
                "SVC(C={}, tol={}, max_epochs={})",
                m.params.c, m.params.tol, m.params.max_epochs
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_regression() -> Dataset {
        let features: Vec<Vec<f64>> = (0..150)
            .map(|i| vec![i as f64 / 150.0, ((i * 7) % 13) as f64 / 13.0])
            .collect();
        let targets = features.iter().map(|f| 0.2 + 0.6 * f[0] * f[1]).collect();
        Dataset::from_parts(features, targets)
    }

    fn toy_classification() -> Dataset {
        let features: Vec<Vec<f64>> = (0..150)
            .map(|i| vec![i as f64 / 150.0, ((i * 7) % 13) as f64 / 13.0])
            .collect();
        let targets = features
            .iter()
            .map(|f| f64::from(f[0] + f[1] > 1.0))
            .collect();
        Dataset::from_parts(features, targets)
    }

    #[test]
    fn every_regression_algorithm_trains_and_predicts() {
        let data = toy_regression();
        for algo in ALL_ALGORITHMS {
            let m = RegressionModel::train(&data, algo, 1);
            let p = m.predict(&[0.5, 0.5]);
            assert!(
                (p - 0.35).abs() < 0.12,
                "{algo}: predicted {p}, expected ≈ 0.35"
            );
        }
    }

    #[test]
    fn every_classification_algorithm_trains_and_predicts() {
        let data = toy_classification();
        for algo in ALL_ALGORITHMS {
            let m = ClassificationModel::train(&data, algo, 1);
            assert!(m.classify(&[0.9, 0.9]), "{algo} should accept (0.9, 0.9)");
            assert!(!m.classify(&[0.1, 0.1]), "{algo} should reject (0.1, 0.1)");
            let s = m.score(&[0.9, 0.9]);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn regression_output_is_clamped() {
        let data = Dataset::from_parts(vec![vec![0.0], vec![1.0]], vec![-5.0, 9.0]);
        let m = RegressionModel::train(&data, Algorithm::DecisionTree, 0);
        assert!(m.predict(&[0.0]) >= 0.01);
        assert!(m.predict(&[1.0]) <= 1.05);
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(Algorithm::GradientBoosting.regression_name(), "GBRT");
        assert_eq!(Algorithm::GradientBoosting.classification_name(), "GBDT");
        assert_eq!(Algorithm::Svm.regression_name(), "SVR");
        assert_eq!(Algorithm::Svm.classification_name(), "SVC");
        assert_eq!(Algorithm::DecisionTree.regression_name(), "DTR");
        assert_eq!(Algorithm::RandomForest.classification_name(), "RF");
    }

    #[test]
    fn warm_start_zero_rounds_is_bit_identical_for_gbrt() {
        let data = toy_regression();
        let m = RegressionModel::train(&data, Algorithm::GradientBoosting, 4);
        assert!(m.supports_warm_start());
        let same = m.warm_start(&data, 0, 4);
        for i in 0..20 {
            let x = [i as f64 / 20.0, (i as f64 * 0.37) % 1.0];
            assert_eq!(m.predict(&x).to_bits(), same.predict(&x).to_bits());
        }
    }

    #[test]
    fn warm_start_adapts_gbrt_to_shifted_targets() {
        let data = toy_regression();
        let shifted = Dataset::from_parts(
            data.features.clone(),
            data.targets.iter().map(|y| (y + 0.2).min(1.05)).collect(),
        );
        let m = RegressionModel::train(&data, Algorithm::GradientBoosting, 4);
        let tuned = m.warm_start(&shifted, 150, 4);
        let mae = |model: &RegressionModel| {
            shifted
                .iter()
                .map(|(x, y)| (model.predict(x) - y).abs())
                .sum::<f64>()
                / shifted.len() as f64
        };
        assert!(
            mae(&tuned) < mae(&m) * 0.5,
            "warm start must reduce error on drifted data: {} vs {}",
            mae(&tuned),
            mae(&m)
        );
    }

    #[test]
    fn warm_start_falls_back_to_refit_for_other_families() {
        let data = toy_regression();
        for algo in [
            Algorithm::DecisionTree,
            Algorithm::RandomForest,
            Algorithm::Svm,
        ] {
            let m = RegressionModel::train(&data, algo, 1);
            assert!(!m.supports_warm_start(), "{algo}");
            let refit = m.warm_start(&data, 10, 1);
            assert_eq!(refit.algorithm, algo);
            let p = refit.predict(&[0.5, 0.5]);
            assert!((p - 0.35).abs() < 0.12, "{algo}: refit predicted {p}");
        }
    }

    #[test]
    fn models_serialize_roundtrip() {
        let data = toy_regression();
        let m = RegressionModel::train(&data, Algorithm::GradientBoosting, 2);
        let json = serde_json::to_string(&m).unwrap();
        let back: RegressionModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m.predict(&[0.3, 0.7]), back.predict(&[0.3, 0.7]));
    }
}
