//! Contention-feature profiling (paper Section 3.2).
//!
//! For every game and every shared resource, the profiler colocates the game
//! with that resource's microbenchmark at pressures `{0, 1/k, …, 1}` and
//! records:
//!
//! * the game's FPS at each pressure → the **sensitivity curve**
//!   `S_r^A = [δ_r^A(0), …, δ_r^A(1)]` (FPS ratio vs solo), and
//! * the benchmark's average slowdown → the **intensity** `I_r^A`.
//!
//! Following Observations 6–8 the sweep runs at two resolutions: the
//! sensitivity curve is kept from the base resolution only; the intensities
//! and solo FPS from both resolutions feed the linear resolution models.
//! The whole step is offline and `O(N)` in the number of games.

use crate::resolution::{IntensityModel, SoloFpsModel};
use gaugur_gamesim::{
    Game, GameCatalog, GameId, Microbenchmark, Resolution, Resource, ResourceVec, Server, Workload,
    ALL_RESOURCES,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// How the per-window frame rate is summarized during profiling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProfilingStat {
    /// Mean FPS over the window (the paper's default).
    Mean,
    /// A conservative low percentile (the paper's Section 7 suggestion for
    /// avoiding transient QoS violations). The simulator models this as a
    /// fixed margin below the mean equal to `z` standard deviations of the
    /// frame-rate jitter.
    Percentile {
        /// Number of noise standard deviations below the mean.
        z: f64,
    },
}

/// Profiling configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProfilingConfig {
    /// Sampling granularity `k` — pressures are `{0, 1/k, …, 1}`
    /// (the paper uses `k = 10`).
    pub granularity: usize,
    /// The resolution at which sensitivity curves are profiled.
    pub base_resolution: Resolution,
    /// The second resolution, used to fit the intensity / Eq. 2 models.
    pub alt_resolution: Resolution,
    /// Frame-rate summarization.
    pub stat: ProfilingStat,
}

impl Default for ProfilingConfig {
    fn default() -> Self {
        ProfilingConfig {
            granularity: 10,
            base_resolution: Resolution::Hd720,
            alt_resolution: Resolution::Qhd1440,
            stat: ProfilingStat::Mean,
        }
    }
}

/// One sensitivity curve: `k + 1` FPS-retention ratios, one per pressure
/// level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityCurve {
    /// `δ(0), δ(1/k), …, δ(1)` — colocated FPS divided by solo FPS.
    pub samples: Vec<f64>,
}

impl SensitivityCurve {
    /// The paper's "sensitivity score": degradation under maximum pressure,
    /// `δ_r(1)` (SMiTe consumes `1 − δ_r(1)` as its sensitivity).
    pub fn at_max_pressure(&self) -> f64 {
        *self.samples.last().expect("non-empty curve")
    }

    /// Linearly interpolate the curve at pressure `x ∈ [0, 1]`.
    pub fn interpolate(&self, x: f64) -> f64 {
        let k = self.samples.len() - 1;
        let x = x.clamp(0.0, 1.0) * k as f64;
        let lo = x.floor() as usize;
        let hi = x.ceil() as usize;
        if lo == hi {
            self.samples[lo]
        } else {
            let frac = x - lo as f64;
            self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
        }
    }
}

/// The complete profiled contention features of one game: everything GAugur
/// knows about it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GameProfile {
    /// The profiled game.
    pub id: GameId,
    /// Title, for reporting.
    pub name: String,
    /// Sensitivity curve per resource (resource-index order), profiled at the
    /// base resolution (Observation 6 makes one resolution sufficient).
    pub sensitivity: Vec<SensitivityCurve>,
    /// Intensity as a function of resolution (Observations 7–8).
    pub intensity: IntensityModel,
    /// Solo FPS as a function of resolution (Eq. 2).
    pub solo_fps: SoloFpsModel,
    /// The granularity the curves were sampled at.
    pub granularity: usize,
}

impl GameProfile {
    /// Intensity vector at a resolution.
    pub fn intensity_at(&self, res: Resolution) -> ResourceVec {
        self.intensity.at(res)
    }

    /// Predicted solo FPS at a resolution.
    pub fn solo_fps_at(&self, res: Resolution) -> f64 {
        self.solo_fps.fps_at(res)
    }

    /// Sensitivity curve for one resource.
    pub fn sensitivity_for(&self, r: Resource) -> &SensitivityCurve {
        &self.sensitivity[r.index()]
    }
}

/// A partially profiled game: sweeps exist only for a subset of resources
/// (collaborative filtering completes the rest — see [`crate::cf`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartialProfile {
    /// The profiled game.
    pub id: GameId,
    /// Title, for reporting.
    pub name: String,
    /// Measured solo FPS at the base profiling resolution.
    pub solo_base: f64,
    /// Measured solo FPS at the alternate profiling resolution.
    pub solo_alt: f64,
    /// Sensitivity curves for the swept resources (`None` = not swept).
    pub curves: Vec<Option<SensitivityCurve>>,
    /// Base-resolution intensities for the swept resources.
    pub intensity_base: Vec<Option<f64>>,
    /// Alternate-resolution intensities for the swept resources.
    pub intensity_alt: Vec<Option<f64>>,
    /// Sampling granularity of the curves.
    pub granularity: usize,
}

impl PartialProfile {
    /// Number of resources actually swept.
    pub fn swept_resources(&self) -> usize {
        self.curves.iter().filter(|c| c.is_some()).count()
    }
}

/// The offline profiler.
#[derive(Debug, Clone)]
pub struct Profiler {
    /// Configuration.
    pub config: ProfilingConfig,
}

impl Profiler {
    /// A profiler with the paper's defaults.
    pub fn new(config: ProfilingConfig) -> Profiler {
        assert!(config.granularity >= 1, "granularity must be at least 1");
        Profiler { config }
    }

    /// Profile one game on a server.
    pub fn profile_game(&self, server: &Server, game: &Game) -> GameProfile {
        let cfg = &self.config;
        let (base, alt) = (cfg.base_resolution, cfg.alt_resolution);

        let solo_base = self.summarize(server.measure_solo_fps(game, base));
        let solo_alt = self.summarize(server.measure_solo_fps(game, alt));

        let mut sensitivity = Vec::with_capacity(ALL_RESOURCES.len());
        let mut intensity_base = ResourceVec::ZERO;
        let mut intensity_alt = ResourceVec::ZERO;

        for r in ALL_RESOURCES {
            let (curve, int_b) = self.sweep(server, game, base, r, solo_base);
            let (_, int_a) = self.sweep(server, game, alt, r, solo_alt);
            sensitivity.push(curve);
            intensity_base[r] = int_b;
            intensity_alt[r] = int_a;
        }

        GameProfile {
            id: game.id,
            name: game.name.clone(),
            sensitivity,
            intensity: IntensityModel::from_two_points(base, &intensity_base, alt, &intensity_alt),
            solo_fps: SoloFpsModel::from_two_points(base, solo_base, alt, solo_alt),
            granularity: cfg.granularity,
        }
    }

    /// Profile a whole catalog in parallel. Cost is `O(N)` in the number of
    /// games — the paper's headline overhead argument.
    pub fn profile_catalog(&self, server: &Server, catalog: &GameCatalog) -> Vec<GameProfile> {
        catalog
            .games()
            .par_iter()
            .map(|g| self.profile_game(server, g))
            .collect()
    }

    /// Profile one game on a *subset* of the shared resources, for the
    /// collaborative-filtering extension (see [`crate::cf`]): sweeps run
    /// only for the listed resources, cutting the per-game profiling cost
    /// proportionally. Solo frame rates are always measured (two runs are
    /// negligible next to the sweeps).
    pub fn profile_game_partial(
        &self,
        server: &Server,
        game: &Game,
        resources: &[Resource],
    ) -> PartialProfile {
        let cfg = &self.config;
        let (base, alt) = (cfg.base_resolution, cfg.alt_resolution);
        let solo_base = self.summarize(server.measure_solo_fps(game, base));
        let solo_alt = self.summarize(server.measure_solo_fps(game, alt));

        let mut curves: Vec<Option<SensitivityCurve>> = vec![None; ALL_RESOURCES.len()];
        let mut intensity_base: Vec<Option<f64>> = vec![None; ALL_RESOURCES.len()];
        let mut intensity_alt: Vec<Option<f64>> = vec![None; ALL_RESOURCES.len()];
        for &r in resources {
            let (curve, int_b) = self.sweep(server, game, base, r, solo_base);
            let (_, int_a) = self.sweep(server, game, alt, r, solo_alt);
            curves[r.index()] = Some(curve);
            intensity_base[r.index()] = Some(int_b);
            intensity_alt[r.index()] = Some(int_a);
        }

        PartialProfile {
            id: game.id,
            name: game.name.clone(),
            solo_base,
            solo_alt,
            curves,
            intensity_base,
            intensity_alt,
            granularity: cfg.granularity,
        }
    }

    /// Sweep one `(game, resolution, resource)` combination: returns the
    /// sensitivity curve and the mean benchmark slowdown minus one (the
    /// intensity).
    fn sweep(
        &self,
        server: &Server,
        game: &Game,
        res: Resolution,
        r: Resource,
        solo_fps: f64,
    ) -> (SensitivityCurve, f64) {
        let k = self.config.granularity;
        let bench = Microbenchmark::for_resource(r);
        let mut samples = Vec::with_capacity(k + 1);
        let mut slowdown_sum = 0.0;
        for step in 0..=k {
            let level = step as f64 / k as f64;
            let out = server
                .measure_colocation(&[Workload::game(game, res), Workload::bench(bench, level)]);
            let fps = self.summarize(out.game_fps(0).expect("game at index 0"));
            samples.push((fps / solo_fps).min(1.05));
            slowdown_sum += out.bench_slowdown(1).expect("bench at index 1");
        }
        let mean_slowdown = slowdown_sum / (k + 1) as f64;
        (SensitivityCurve { samples }, (mean_slowdown - 1.0).max(0.0))
    }

    /// Apply the configured frame-rate summarization to a mean measurement.
    fn summarize(&self, mean_fps: f64) -> f64 {
        match self.config.stat {
            ProfilingStat::Mean => mean_fps,
            ProfilingStat::Percentile { z } => mean_fps * (1.0 - z * 0.015).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Server, GameCatalog, Profiler) {
        (
            Server::reference(11),
            GameCatalog::generate(42, 100),
            Profiler::new(ProfilingConfig::default()),
        )
    }

    #[test]
    fn curves_have_k_plus_one_samples_and_start_near_one() {
        let (server, cat, prof) = setup();
        let p = prof.profile_game(&server, &cat[0]);
        for r in ALL_RESOURCES {
            let c = p.sensitivity_for(r);
            assert_eq!(c.samples.len(), 11);
            assert!(
                (c.samples[0] - 1.0).abs() < 0.08,
                "{r}: zero pressure should not degrade: {}",
                c.samples[0]
            );
            for &s in &c.samples {
                assert!(s > 0.0 && s <= 1.05);
            }
        }
    }

    #[test]
    fn curves_are_weakly_decreasing_up_to_noise() {
        let (server, cat, prof) = setup();
        let p = prof.profile_game(&server, &cat.by_name("Far Cry 4").unwrap().clone());
        for r in ALL_RESOURCES {
            let c = p.sensitivity_for(r);
            for w in c.samples.windows(2) {
                assert!(w[1] <= w[0] + 0.08, "{r}: {:?}", c.samples);
            }
        }
    }

    #[test]
    fn heavy_games_have_higher_intensity_than_light_games() {
        let (server, cat, prof) = setup();
        let aaa = prof.profile_game(&server, cat.by_name("Far Cry 4").unwrap());
        let indie = prof.profile_game(&server, cat.by_name("Stardew Valley").unwrap());
        let res = Resolution::Fhd1080;
        let heavy_sum = aaa.intensity_at(res).sum();
        let light_sum = indie.intensity_at(res).sum();
        assert!(
            heavy_sum > 2.0 * light_sum,
            "AAA {heavy_sum} vs indie {light_sum}"
        );
    }

    #[test]
    fn intensity_grows_with_resolution_on_gpu_resources() {
        let (server, cat, prof) = setup();
        let p = prof.profile_game(&server, cat.by_name("Rise of The Tomb Raider").unwrap());
        let lo = p.intensity_at(Resolution::Hd720);
        let hi = p.intensity_at(Resolution::Qhd1440);
        assert!(hi[Resource::GpuCore] > lo[Resource::GpuCore]);
        // CPU-side intensity is resolution-constant by construction (Obs 7).
        assert_eq!(hi[Resource::CpuCore], lo[Resource::CpuCore]);
    }

    #[test]
    fn eq2_model_predicts_intermediate_resolution_fps() {
        let (server, cat, prof) = setup();
        let g = cat.by_name("Dota2").unwrap();
        let p = prof.profile_game(&server, g);
        let predicted = p.solo_fps_at(Resolution::Fhd1080);
        let measured = server.measure_solo_fps(g, Resolution::Fhd1080);
        let err = (predicted - measured).abs() / measured;
        assert!(err < 0.12, "Eq.2 error {err}: {predicted} vs {measured}");
    }

    #[test]
    fn interpolate_endpoints_match_samples() {
        let c = SensitivityCurve {
            samples: vec![1.0, 0.8, 0.5],
        };
        assert_eq!(c.interpolate(0.0), 1.0);
        assert_eq!(c.interpolate(1.0), 0.5);
        assert!((c.interpolate(0.25) - 0.9).abs() < 1e-12);
        assert_eq!(c.at_max_pressure(), 0.5);
    }

    #[test]
    fn conservative_stat_lowers_reported_fps() {
        let (server, cat, _) = setup();
        let mean_prof = Profiler::new(ProfilingConfig::default());
        let p5_prof = Profiler::new(ProfilingConfig {
            stat: ProfilingStat::Percentile { z: 2.0 },
            ..ProfilingConfig::default()
        });
        let g = &cat[3];
        let pm = mean_prof.profile_game(&server, g);
        let pc = p5_prof.profile_game(&server, g);
        assert!(pc.solo_fps_at(Resolution::Fhd1080) < pm.solo_fps_at(Resolution::Fhd1080));
    }

    #[test]
    fn partial_profiling_sweeps_only_requested_resources() {
        let (server, cat, prof) = setup();
        let partial =
            prof.profile_game_partial(&server, &cat[2], &[Resource::GpuCore, Resource::Llc]);
        assert_eq!(partial.swept_resources(), 2);
        assert!(partial.curves[Resource::GpuCore.index()].is_some());
        assert!(partial.curves[Resource::CpuCore.index()].is_none());
        assert!(partial.intensity_base[Resource::Llc.index()].is_some());
        assert!(partial.intensity_alt[Resource::MemBw.index()].is_none());
        assert!(partial.solo_base > 0.0 && partial.solo_alt > 0.0);
    }

    #[test]
    fn partial_profile_of_all_resources_matches_full() {
        let (server, cat, prof) = setup();
        let full = prof.profile_game(&server, &cat[1]);
        let partial = prof.profile_game_partial(&server, &cat[1], &ALL_RESOURCES);
        for r in ALL_RESOURCES {
            assert_eq!(
                partial.curves[r.index()].as_ref().unwrap(),
                full.sensitivity_for(r)
            );
        }
    }

    #[test]
    fn profiling_is_deterministic() {
        let (server, cat, prof) = setup();
        let a = prof.profile_game(&server, &cat[5]);
        let b = prof.profile_game(&server, &cat[5]);
        assert_eq!(a.sensitivity, b.sensitivity);
    }
}
