//! Interaction-delay prediction — the paper's Section 7 / future-work
//! extension, implemented here.
//!
//! "The processing delay of colocated games can be predicted in a similar
//! way using our methodology." The simulator exposes a per-input processing
//! delay (frame time plus command handling inflated by CPU contention); this
//! module trains a regression model on it with the same contention features
//! as the RM, plus the target's Eq.-2 solo FPS — delay is an absolute time,
//! so the model needs the game's baseline frame time, which the ratio-valued
//! RM does not.

use crate::features::rm_features;
use crate::model::{Algorithm, RegressionModel};
use crate::train::{MeasuredColocation, Placement, ProfileStore};
use gaugur_gamesim::{GameCatalog, Server, Workload};
use gaugur_ml::Dataset;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A measured colocation annotated with per-member processing delays.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasuredDelays {
    /// The colocated games and resolutions.
    pub members: Vec<Placement>,
    /// Processing delay (ms) per member.
    pub delay_ms: Vec<f64>,
}

/// Measure processing delays for a set of colocations.
pub fn measure_delays(
    server: &Server,
    catalog: &GameCatalog,
    colocations: &[Vec<Placement>],
) -> Vec<MeasuredDelays> {
    colocations
        .par_iter()
        .map(|members| {
            let workloads: Vec<Workload<'_>> = members
                .iter()
                .map(|&(id, res)| Workload::game(catalog.get(id).expect("id in catalog"), res))
                .collect();
            let out = server.measure_colocation(&workloads);
            MeasuredDelays {
                members: members.clone(),
                delay_ms: (0..members.len())
                    .map(|i| out.game_delay_ms(i).expect("game workload"))
                    .collect(),
            }
        })
        .collect()
}

/// A trained interaction-delay predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DelayModel {
    model: RegressionModel,
}

impl DelayModel {
    /// Train from measured delays (same feature construction as the RM).
    pub fn train(
        profiles: &ProfileStore,
        measured: &[MeasuredDelays],
        algorithm: Algorithm,
        seed: u64,
    ) -> DelayModel {
        let mut data = Dataset::new();
        for m in measured {
            for (i, &(id, res)) in m.members.iter().enumerate() {
                let corunners: Vec<Placement> = m
                    .members
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &p)| p)
                    .collect();
                let intensities = profiles.intensities(&corunners);
                // Learn the delay as a multiple of the game's solo frame
                // time — a ratio, like the RM's degradation — so games with
                // very different baseline frame times share one scale.
                let solo_frame_ms = 1000.0 / profiles.get(id).solo_fps_at(res);
                data.push(
                    delay_features(profiles, (id, res), &intensities),
                    m.delay_ms[i] / solo_frame_ms,
                );
            }
        }
        DelayModel {
            model: RegressionModel::train_with_bounds(&data, algorithm, seed, (0.5, 100.0)),
        }
    }

    /// Predict the processing delay (ms) of `target` colocated with
    /// `others`.
    pub fn predict_delay_ms(
        &self,
        profiles: &ProfileStore,
        target: Placement,
        others: &[Placement],
    ) -> f64 {
        let intensities = profiles.intensities(others);
        let solo_frame_ms = 1000.0 / profiles.get(target.0).solo_fps_at(target.1);
        self.model
            .predict(&delay_features(profiles, target, &intensities))
            * solo_frame_ms
    }
}

/// Delay features: the target's solo FPS (baseline frame time) followed by
/// the standard RM features.
fn delay_features(
    profiles: &ProfileStore,
    target: Placement,
    corunner_intensities: &[gaugur_gamesim::ResourceVec],
) -> Vec<f64> {
    let profile = profiles.get(target.0);
    let mut f = Vec::with_capacity(1 + crate::features::rm_width(profile.granularity));
    f.push(profile.solo_fps_at(target.1));
    f.extend(rm_features(profile, corunner_intensities));
    f
}

/// Convert colocations with delays back into plain FPS measurements is not
/// needed; keep the delay campaign separate from the FPS campaign.
#[allow(dead_code)]
fn _doc_anchor(_m: &MeasuredColocation) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Profiler, ProfilingConfig};
    use crate::train::{plan_colocations, ColocationPlan, ProfileStore};
    use gaugur_gamesim::Resolution;

    #[test]
    fn delay_model_tracks_measured_delays() {
        let server = Server::reference(17);
        let catalog = GameCatalog::generate(42, 10);
        let profiles = ProfileStore::new(
            Profiler::new(ProfilingConfig::default()).profile_catalog(&server, &catalog),
        );
        let plan = ColocationPlan {
            pairs: 200,
            triples: 40,
            quads: 20,
            seed: 4,
        };
        let colocs = plan_colocations(&catalog, &plan);
        let measured = measure_delays(&server, &catalog, &colocs);
        let model = DelayModel::train(&profiles, &measured, Algorithm::GradientBoosting, 0);

        // Held-out check against fresh colocations.
        let test_plan = ColocationPlan {
            pairs: 20,
            triples: 0,
            quads: 0,
            seed: 99,
        };
        let test = measure_delays(&server, &catalog, &plan_colocations(&catalog, &test_plan));
        let mut errs = Vec::new();
        for m in &test {
            for (i, &p) in m.members.iter().enumerate() {
                let others: Vec<_> = m
                    .members
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &q)| q)
                    .collect();
                let pred = model.predict_delay_ms(&profiles, p, &others);
                errs.push((pred - m.delay_ms[i]).abs() / m.delay_ms[i]);
            }
        }
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean_err < 0.25, "delay prediction error {mean_err}");
    }

    #[test]
    fn heavier_colocation_predicts_longer_delay() {
        let server = Server::reference(18);
        let catalog = GameCatalog::generate(42, 10);
        let profiles = ProfileStore::new(
            Profiler::new(ProfilingConfig::default()).profile_catalog(&server, &catalog),
        );
        let plan = ColocationPlan {
            pairs: 40,
            triples: 10,
            quads: 5,
            seed: 5,
        };
        let measured = measure_delays(&server, &catalog, &plan_colocations(&catalog, &plan));
        let model = DelayModel::train(&profiles, &measured, Algorithm::GradientBoosting, 0);

        let res = Resolution::Fhd1080;
        let target = (catalog[1].id, res);
        let light = [(catalog.by_name("A Walk in the Woods").unwrap().id, res)];
        let heavy = [
            (catalog.by_name("ARK Survival Evolved").unwrap().id, res),
            (catalog.by_name("Borderland2").unwrap().id, res),
        ];
        let d_light = model.predict_delay_ms(&profiles, target, &light);
        let d_heavy = model.predict_delay_ms(&profiles, target, &heavy);
        assert!(
            d_heavy > d_light,
            "heavy set should predict longer delay: {d_heavy} vs {d_light}"
        );
    }
}
