//! `gaugur` — the operator command line for the GAugur reproduction.
//!
//! The workflow a cloud-gaming operator would actually run:
//!
//! ```text
//! gaugur build   --games 30 --seed 7 --out model.json     # offline, once
//! gaugur catalog --games 30                               # list titles
//! gaugur predict --model model.json --target 4 --others 8,12 --qos 60
//! gaugur pack    --model model.json --games 1,3,5,8,9,12 --requests 600 --qos 60
//! gaugur importance --model model.json --games 30 --seed 7
//!
//! gaugur serve   --model model.json --bind 127.0.0.1:7071 --servers 50
//! gaugur session place --game 4                           # online, against the daemon
//! gaugur session stats
//! gaugur load    --requests 5000 --connections 4 --rate inf
//! gaugur metrics                                          # Prometheus text exposition
//! gaugur slo                                              # burn rates + alert states
//! gaugur top --interval 2                                 # live stage/latency view
//! ```
//!
//! Everything runs against the simulated testbed (the seed selects the
//! measurement-noise realization); the persisted model is the same JSON
//! artifact [`gaugur_core::GAugur::save_json`] produces.

use gaugur_core::{
    permutation_importance, to_dataset, ColocationPlan, GAugur, GAugurConfig, Placement,
};
use gaugur_gamesim::{GameCatalog, GameId, Resolution, Server};
use std::collections::HashMap;
use std::process::exit;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        exit(2);
    }
    let command = args.remove(0);
    if command == "session" {
        // `session` takes a positional action before its flags.
        session(&args);
        return;
    }
    let opts = parse_flags(&args);

    match command.as_str() {
        "build" => build(&opts),
        "catalog" => catalog_cmd(&opts),
        "inspect" => inspect(&opts),
        "predict" => predict(&opts),
        "pack" => pack(&opts),
        "importance" => importance(&opts),
        "serve" => serve(&opts),
        "load" => load_cmd(&opts),
        "metrics" => metrics_cmd(&opts),
        "slo" => slo_cmd(&opts),
        "top" => top_cmd(&opts),
        "chaos" => chaos(&opts),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown command {other:?}");
            usage();
            exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "gaugur — interference prediction for colocated cloud games\n\n\
         commands:\n\
         \x20 build      --games N [--seed S] [--pairs N --triples N --quads N] --out FILE\n\
         \x20 catalog    --games N [--seed S]\n\
         \x20 inspect    --model FILE\n\
         \x20 predict    --model FILE --target ID --others ID,ID,… [--resolution 720p|900p|1080p|1440p] [--qos FPS]\n\
         \x20 pack       --model FILE --games ID,ID,… --requests N [--qos FPS] [--seed S]\n\
         \x20 importance --model FILE --games N [--seed S]\n\
         \x20 serve      --model FILE [--bind ADDR] [--servers N] [--shards N] [--workers N] [--queue N] [--qos FPS]\n\
         \x20            [--recorder-dump FILE]  (write the flight-recorder JSONL here when an alert goes critical)\n\
         \x20 session    place   [--addr ADDR] --game ID [--resolution R]\n\
         \x20 session    depart  [--addr ADDR] --session ID\n\
         \x20 session    predict [--addr ADDR] --target ID --others ID,ID,… [--resolution R] [--qos FPS]\n\
         \x20 session    stats|reload|shutdown [--addr ADDR] [--model FILE]\n\
         \x20 session    report  [--addr ADDR] --session ID --observed FPS --predicted FPS [--version V]\n\
         \x20 session    retrain [--addr ADDR] [--min-samples N] [--extra-rounds N]\n\
         \x20 load       [--addr ADDR] [--requests N] [--connections N] [--rate R/s|inf] [--batch N]\n\
         \x20            [--seed S] [--games ID,ID,…] [--mean-session N] [--qos FPS] [--resolution R]\n\
         \x20            [--report-outcomes true] [--observe-noise F] [--drift F] [--verify-trace true]\n\
         \x20            [--shards N]  (verify the daemon's shard layout and conservation after the run)\n\
         \x20            [--expect-slo ok|warn|critical]  (fail unless the fleet alert reached this severity)\n\
         \x20 metrics    [--addr ADDR] [--json true]\n\
         \x20 slo        [--addr ADDR] [--json true] [--dump FILE [--deterministic true]]\n\
         \x20 top        [--addr ADDR] [--interval SECS] [--iterations N]\n\
         \x20 chaos      --seed S [--scenarios N] [--ops N] [--servers N] [--games N] [--model FILE]\n"
    );
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            let value = it.next().cloned().unwrap_or_else(|| {
                eprintln!("flag --{key} needs a value");
                exit(2);
            });
            opts.insert(key.to_string(), value);
        } else {
            eprintln!("unexpected argument {a:?}");
            exit(2);
        }
    }
    opts
}

fn get<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str, default: Option<T>) -> T {
    match opts.get(key) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--{key}: cannot parse {v:?}");
            exit(2);
        }),
        None => default.unwrap_or_else(|| {
            eprintln!("missing required flag --{key}");
            exit(2);
        }),
    }
}

fn id_list(opts: &HashMap<String, String>, key: &str) -> Vec<GameId> {
    let raw = opts.get(key).cloned().unwrap_or_default();
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            GameId(s.trim().parse().unwrap_or_else(|_| {
                eprintln!("--{key}: bad game id {s:?}");
                exit(2);
            }))
        })
        .collect()
}

fn resolution(opts: &HashMap<String, String>) -> Resolution {
    match opts.get("resolution").map(String::as_str) {
        None | Some("1080p") => Resolution::Fhd1080,
        Some("720p") => Resolution::Hd720,
        Some("900p") => Resolution::Hd900,
        Some("1440p") => Resolution::Qhd1440,
        Some(other) => {
            eprintln!("--resolution: unknown {other:?}");
            exit(2);
        }
    }
}

fn testbed(opts: &HashMap<String, String>) -> (Server, GameCatalog) {
    let seed: u64 = get(opts, "seed", Some(7));
    let n: usize = get(opts, "games", Some(100));
    (Server::reference(seed), GameCatalog::generate(42, n))
}

fn build(opts: &HashMap<String, String>) {
    let (server, catalog) = testbed(opts);
    let out: String = get(opts, "out", None::<String>);
    let config = GAugurConfig {
        plan: ColocationPlan {
            pairs: get(opts, "pairs", Some(200)),
            triples: get(opts, "triples", Some(50)),
            quads: get(opts, "quads", Some(40)),
            seed: get(opts, "seed", Some(7)),
        },
        ..GAugurConfig::default()
    };
    eprintln!(
        "profiling {} games and measuring {} colocations …",
        catalog.len(),
        config.plan.pairs + config.plan.triples + config.plan.quads
    );
    let gaugur = GAugur::build(&server, &catalog, config);
    gaugur.save_json(&out).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    println!("model written to {out}");
}

fn catalog_cmd(opts: &HashMap<String, String>) {
    let (server, catalog) = testbed(opts);
    println!(
        "{:>4}  {:<42} {:<14} {:>9}",
        "id", "title", "genre", "solo FPS"
    );
    for g in catalog.games() {
        println!(
            "{:>4}  {:<42} {:<14} {:>9.0}",
            g.id.0,
            g.name,
            g.genre.to_string(),
            server.measure_solo_fps(g, Resolution::Fhd1080)
        );
    }
}

fn load_model(opts: &HashMap<String, String>) -> GAugur {
    let path: String = get(opts, "model", None::<String>);
    GAugur::load_json(&path).unwrap_or_else(|e| {
        eprintln!("cannot load {path}: {e}");
        exit(1);
    })
}

/// Print the provenance of a `gaugur build` artifact without serving it:
/// schema version, catalog coverage, feature dimensionality, and the
/// hyperparameters of both trained models.
fn inspect(opts: &HashMap<String, String>) {
    let path: String = get(opts, "model", None::<String>);
    let gaugur = GAugur::load_json(&path).unwrap_or_else(|e| {
        eprintln!("cannot load {path}: {e}");
        exit(1);
    });
    let plan = &gaugur.config.plan;
    println!("artifact:          {path}");
    println!("schema version:    {}", gaugur_core::ARTIFACT_SCHEMA);
    println!("games profiled:    {}", gaugur.profiles.len());
    println!("resource dims:     {}", gaugur_gamesim::NUM_RESOURCES);
    println!(
        "RM ({}):  {}",
        gaugur.config.rm_algorithm,
        gaugur.rm.hyperparameters()
    );
    println!(
        "CM ({}):  {}",
        gaugur.config.cm_algorithm,
        gaugur.cm.hyperparameters()
    );
    println!("CM QoS floors:     {:?}", gaugur.config.qos_values);
    println!(
        "training plan:     {} pairs + {} triples + {} quads (seed {})",
        plan.pairs, plan.triples, plan.quads, plan.seed
    );
}

fn predict(opts: &HashMap<String, String>) {
    let gaugur = load_model(opts);
    let res = resolution(opts);
    let target: u32 = get(opts, "target", None::<u32>);
    let target: Placement = (GameId(target), res);
    let others: Vec<Placement> = id_list(opts, "others")
        .into_iter()
        .map(|id| (id, res))
        .collect();

    let degradation = gaugur.predict_degradation(target, &others);
    let fps = gaugur.predict_fps(target, &others);
    println!("predicted degradation ratio: {degradation:.3}");
    println!("predicted frame rate:        {fps:.1} FPS");
    if let Some(qos) = opts.get("qos") {
        let qos: f64 = qos.parse().unwrap_or_else(|_| {
            eprintln!("--qos: bad value");
            exit(2);
        });
        let ok = gaugur.predict_qos(qos, target, &others);
        println!(
            "QoS {qos} FPS:                 {}",
            if ok { "SATISFIED" } else { "VIOLATED" }
        );
    }
}

fn pack(opts: &HashMap<String, String>) {
    let gaugur = load_model(opts);
    let res = resolution(opts);
    let qos: f64 = get(opts, "qos", Some(60.0));
    let n_requests: usize = get(opts, "requests", None::<usize>);
    let games = id_list(opts, "games");
    if games.is_empty() {
        eprintln!("--games must list at least one game id");
        exit(2);
    }

    // Enumerate candidate colocations and judge them with the CM.
    let mut counts: HashMap<GameId, usize> = HashMap::new();
    let seed: u64 = get(opts, "seed", Some(7));
    let mut acc = seed;
    for i in 0..n_requests {
        acc = gaugur_gamesim::rng::mix(acc ^ i as u64);
        *counts
            .entry(games[(acc % games.len() as u64) as usize])
            .or_default() += 1;
    }

    let sets = gaugur_sets(&games);
    let mut usable: Vec<Vec<GameId>> = Vec::new();
    for set in &sets {
        let members: Vec<Placement> = set.iter().map(|&g| (g, res)).collect();
        if gaugur.colocation_feasible(qos, &members) {
            usable.push(set.clone());
        }
    }
    usable.sort_by_key(|s| std::cmp::Reverse(s.len()));

    // Greedy Algorithm-1-style packing on predicted-feasible sets.
    let mut servers = 0usize;
    let mut remaining = counts;
    for set in &usable {
        loop {
            if set
                .iter()
                .any(|g| remaining.get(g).copied().unwrap_or(0) == 0)
            {
                break;
            }
            for g in set {
                *remaining.get_mut(g).expect("counted") -= 1;
            }
            servers += 1;
        }
    }
    let leftovers: usize = remaining.values().sum();
    servers += leftovers;

    println!(
        "{} requests over {} games at QoS {qos} FPS:",
        n_requests,
        games.len()
    );
    println!("  predicted-feasible colocations: {}", usable.len());
    println!("  servers used:                   {servers}");
    println!("  (dedicated servers would need: {n_requests})");
}

/// All non-empty subsets of ≤4 distinct games.
fn gaugur_sets(games: &[GameId]) -> Vec<Vec<GameId>> {
    let mut out = Vec::new();
    let n = games.len();
    for mask in 1u32..(1 << n.min(20)) {
        if mask.count_ones() > 4 {
            continue;
        }
        let set: Vec<GameId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| games[i])
            .collect();
        out.push(set);
    }
    out
}

const DEFAULT_ADDR: &str = "127.0.0.1:7071";

/// Print multi-line output without panicking when stdout is a pipe that
/// closed early (`gaugur session stats | head`): EPIPE just ends the write.
fn print_multiline(text: &str) {
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(text.as_bytes());
}

fn serve(opts: &HashMap<String, String>) {
    let path: String = get(opts, "model", None::<String>);
    let model = gaugur_serve::ModelHandle::load(&path).unwrap_or_else(|e| {
        eprintln!("cannot load {path}: {e}");
        exit(1);
    });
    let config = gaugur_serve::DaemonConfig {
        bind: opts
            .get("bind")
            .cloned()
            .unwrap_or_else(|| DEFAULT_ADDR.into()),
        n_servers: get(opts, "servers", Some(50)),
        shards: get(opts, "shards", Some(1)),
        workers: get(opts, "workers", Some(4)),
        queue_capacity: get(opts, "queue", Some(64)),
        qos: get(opts, "qos", Some(60.0)),
        recorder_dump_path: opts.get("recorder-dump").map(std::path::PathBuf::from),
        ..Default::default()
    };
    let handle = gaugur_serve::daemon::start(config, model).unwrap_or_else(|e| {
        eprintln!("cannot start daemon: {e}");
        exit(1);
    });
    println!(
        "serving {path} on {} — stop with `gaugur session shutdown --addr {}`",
        handle.local_addr(),
        handle.local_addr()
    );
    handle.wait();
}

fn connect(opts: &HashMap<String, String>) -> gaugur_serve::Client {
    let addr = opts
        .get("addr")
        .cloned()
        .unwrap_or_else(|| DEFAULT_ADDR.into());
    gaugur_serve::Client::connect(&*addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        exit(1);
    })
}

fn session(args: &[String]) {
    let Some(action) = args.first() else {
        eprintln!(
            "session needs an action: place | depart | predict | stats | reload | report | \
             retrain | shutdown"
        );
        exit(2);
    };
    let opts = parse_flags(&args[1..]);
    let or_die = |e: gaugur_serve::ClientError| -> ! {
        eprintln!("{e}");
        exit(1);
    };
    match action.as_str() {
        "place" => {
            let game = GameId(get(&opts, "game", None::<u32>));
            let placed = connect(&opts)
                .place(game, resolution(&opts))
                .unwrap_or_else(|e| or_die(e));
            println!(
                "session {} placed on server {} — predicted {:.1} FPS (model v{})",
                placed.session, placed.server, placed.predicted_fps, placed.model_version
            );
        }
        "depart" => {
            let id: u64 = get(&opts, "session", None::<u64>);
            let server = connect(&opts).depart(id).unwrap_or_else(|e| or_die(e));
            println!("session {id} departed from server {server}");
        }
        "predict" => {
            let res = resolution(&opts);
            let target = GameId(get(&opts, "target", None::<u32>));
            let others: Vec<Placement> = id_list(&opts, "others")
                .into_iter()
                .map(|id| (id, res))
                .collect();
            let qos: f64 = get(&opts, "qos", Some(60.0));
            let p = connect(&opts)
                .predict(target, res, &others, qos)
                .unwrap_or_else(|e| or_die(e));
            println!("predicted degradation ratio: {:.3}", p.degradation);
            println!("predicted frame rate:        {:.1} FPS", p.fps);
            println!(
                "QoS {qos} FPS:                 {} (model v{}{})",
                if p.feasible { "SATISFIED" } else { "VIOLATED" },
                p.model_version,
                if p.cached { ", cached" } else { "" }
            );
        }
        "stats" => {
            let stats = connect(&opts).stats().unwrap_or_else(|e| or_die(e));
            print_multiline(&stats.to_string());
        }
        "reload" => {
            let version = connect(&opts)
                .reload(opts.get("model").map(String::as_str))
                .unwrap_or_else(|e| or_die(e));
            println!("model reloaded, now serving version {version}");
        }
        "report" => {
            // Feed one observed-FPS outcome back into the daemon's
            // feedback buffer (the load driver automates this with
            // --report-outcomes; this is the manual path).
            let report = gaugur_serve::OutcomeReport {
                session: get(&opts, "session", None::<u64>),
                observed_fps: get(&opts, "observed", None::<f64>),
                predicted_fps: get(&opts, "predicted", None::<f64>),
                model_version: get(&opts, "version", Some(u64::MAX)),
            };
            let (accepted, stale, dropped) = connect(&opts)
                .report_outcome(report)
                .unwrap_or_else(|e| or_die(e));
            println!("outcome recorded: {accepted} accepted ({stale} stale), {dropped} dropped");
        }
        "retrain" => {
            let min_samples = opts.get("min-samples").map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("--min-samples: cannot parse {v:?}");
                    exit(2);
                })
            });
            let extra_rounds = opts.get("extra-rounds").map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("--extra-rounds: cannot parse {v:?}");
                    exit(2);
                })
            });
            let queued = connect(&opts)
                .trigger_retrain(min_samples, extra_rounds)
                .unwrap_or_else(|e| or_die(e));
            if queued {
                println!("retrain queued — watch `gaugur session stats` for completion");
            } else {
                eprintln!("daemon refused to queue a retrain (shutting down?)");
                exit(1);
            }
        }
        "shutdown" => {
            connect(&opts).shutdown().unwrap_or_else(|e| or_die(e));
            println!("daemon is shutting down");
        }
        other => {
            eprintln!("unknown session action {other:?}");
            exit(2);
        }
    }
}

fn load_cmd(opts: &HashMap<String, String>) {
    let mut games = id_list(opts, "games");
    if games.is_empty() {
        games = (0..16).map(GameId).collect();
    }
    let config = gaugur_serve::LoadConfig {
        addr: opts
            .get("addr")
            .cloned()
            .unwrap_or_else(|| DEFAULT_ADDR.into()),
        seed: get(opts, "seed", Some(7)),
        connections: get(opts, "connections", Some(4)),
        requests: get(opts, "requests", Some(1000)),
        rate: get(opts, "rate", Some(f64::INFINITY)),
        mean_session_arrivals: get(opts, "mean-session", Some(8.0)),
        games,
        resolutions: vec![resolution(opts)],
        qos: get(opts, "qos", Some(60.0)),
        batch: get(opts, "batch", Some(1usize)).max(1),
        report_outcomes: get(opts, "report-outcomes", Some(false)),
        observe_noise: get(opts, "observe-noise", Some(0.05)),
        drift: get(opts, "drift", Some(1.0)),
        verify_trace: get(opts, "verify-trace", Some(false)),
        expect_shards: opts
            .get("shards")
            .map(|_| get(opts, "shards", None::<usize>)),
        expect_slo: opts.get("expect-slo").map(|v| alert_state(v)),
    };
    let report = gaugur_serve::load::run(&config);
    let violated = report.trace_violation.is_some()
        || report.shard_violation.is_some()
        || report.slo_violation.is_some();
    print_multiline(&report.to_string());
    if violated {
        exit(1);
    }
}

/// Scrape the daemon's Prometheus text exposition (the `Metrics` wire op)
/// and print it verbatim — pipe it to a file, a pushgateway, or a scrape
/// shim when the daemon is not directly reachable by Prometheus. With
/// `--json true`, fetch the stats snapshot instead and print it as JSON for
/// machine consumers that do not speak the Prometheus text format.
fn metrics_cmd(opts: &HashMap<String, String>) {
    let or_die = |e: gaugur_serve::ClientError| -> ! {
        eprintln!("{e}");
        exit(1);
    };
    if get(opts, "json", Some(false)) {
        let stats = connect(opts).stats().unwrap_or_else(|e| or_die(e));
        let mut json = serde_json::to_string_pretty(&stats).unwrap_or_else(|e| {
            eprintln!("cannot serialize snapshot: {e}");
            exit(1);
        });
        json.push('\n');
        print_multiline(&json);
        return;
    }
    let text = connect(opts).metrics().unwrap_or_else(|e| or_die(e));
    print_multiline(&text);
}

/// Parse an `--expect-slo` / alert-state argument.
fn alert_state(v: &str) -> gaugur_serve::AlertState {
    match v.to_ascii_lowercase().as_str() {
        "ok" => gaugur_serve::AlertState::Ok,
        "warn" => gaugur_serve::AlertState::Warn,
        "critical" => gaugur_serve::AlertState::Critical,
        other => {
            eprintln!("unknown alert state {other:?} (want ok|warn|critical)");
            exit(2);
        }
    }
}

/// Fetch and print the daemon's SLO report: per-objective burn rates over
/// the fast and slow windows, alert states, and the rolling window views
/// they were computed from. `--json true` prints the raw report; `--dump
/// FILE` also snapshots the flight recorder to FILE (`--deterministic true`
/// strips wall-clock and identity noise for byte-comparable dumps).
fn slo_cmd(opts: &HashMap<String, String>) {
    let or_die = |e: gaugur_serve::ClientError| -> ! {
        eprintln!("{e}");
        exit(1);
    };
    let mut client = connect(opts);
    let report = client.slo_status().unwrap_or_else(|e| or_die(e));
    if get(opts, "json", Some(false)) {
        let mut json = serde_json::to_string_pretty(&report).unwrap_or_else(|e| {
            eprintln!("cannot serialize report: {e}");
            exit(1);
        });
        json.push('\n');
        print_multiline(&json);
    } else {
        print_multiline(&report.to_string());
    }
    if let Some(path) = opts.get("dump") {
        let deterministic = get(opts, "deterministic", Some(false));
        let (jsonl, events, truncated) = client
            .dump_recorder(deterministic)
            .unwrap_or_else(|e| or_die(e));
        std::fs::write(path, jsonl).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        eprintln!(
            "flight recorder: {events} events written to {path}{}",
            if truncated {
                " (ring wrapped; oldest events lost)"
            } else {
                ""
            }
        );
    }
}

/// Live operator view: repaint the daemon's stats table — per-op latency,
/// per-stage timings, slow-request log — every `--interval` seconds.
/// `--iterations 0` (the default) refreshes until interrupted.
fn top_cmd(opts: &HashMap<String, String>) {
    let interval: f64 = get(opts, "interval", Some(2.0));
    let iterations: u64 = get(opts, "iterations", Some(0));
    let mut client = connect(opts);
    let or_die = |e: gaugur_serve::ClientError| -> ! {
        eprintln!("{e}");
        exit(1);
    };
    let mut i = 0u64;
    loop {
        let stats = client.stats().unwrap_or_else(|e| or_die(e));
        // Clear + home, like `watch`: each refresh repaints in place.
        print!("\x1b[2J\x1b[H");
        println!(
            "gaugur top — {} — refresh {interval}s (ctrl-c to quit)\n",
            client.peer_addr()
        );
        print_multiline(&stats.to_string());
        i += 1;
        if iterations != 0 && i >= iterations {
            break;
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(interval.max(0.1)));
    }
}

/// Run seeded chaos scenarios against an in-process daemon and report the
/// invariant-oracle verdicts. A failing seed reproduces exactly:
/// `gaugur chaos --seed <N>` replays the identical fault schedule.
fn chaos(opts: &HashMap<String, String>) {
    let seed: u64 = get(opts, "seed", Some(0));
    let scenarios: u64 = get(opts, "scenarios", Some(1));
    let n_games: u32 = get(opts, "games", Some(8));
    let artifact: std::path::PathBuf = match opts.get("model") {
        Some(path) => path.into(),
        None => {
            // No artifact given: train a small model on the simulated
            // testbed, exactly like `gaugur build`, into a temp file.
            eprintln!("training a {n_games}-game model for the chaos run …");
            let server = Server::reference(7);
            let catalog = GameCatalog::generate(42, n_games as usize);
            let config = GAugurConfig {
                plan: ColocationPlan {
                    pairs: 40,
                    triples: 10,
                    quads: 5,
                    seed: 3,
                },
                ..GAugurConfig::default()
            };
            let model = GAugur::build(&server, &catalog, config);
            let dir = std::env::temp_dir().join(format!("gaugur-chaos-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap_or_else(|e| {
                eprintln!("cannot create {}: {e}", dir.display());
                exit(1);
            });
            let path = dir.join("model.json");
            model.save_json(&path).unwrap_or_else(|e| {
                eprintln!("cannot write {}: {e}", path.display());
                exit(1);
            });
            path
        }
    };

    let mut config = gaugur_serve::chaos::ChaosConfig::for_seed(
        seed,
        artifact,
        (0..n_games).map(GameId).collect(),
    );
    config.ops = get(opts, "ops", Some(40));
    config.n_servers = get(opts, "servers", Some(6));
    config.qos = get(opts, "qos", Some(60.0));

    let reports = gaugur_serve::chaos::run_suite(&config, scenarios);
    let mut failed = 0u64;
    for report in &reports {
        println!("{report}");
        if !report.passed() {
            failed += 1;
        }
    }
    if failed > 0 {
        eprintln!(
            "{failed} of {} scenarios violated an invariant",
            reports.len()
        );
        exit(1);
    }
    println!("all {} scenarios passed every oracle", reports.len());
}

fn importance(opts: &HashMap<String, String>) {
    let gaugur = load_model(opts);
    let (server, catalog) = testbed(opts);
    eprintln!("measuring a fresh evaluation campaign …");
    let plan = ColocationPlan {
        pairs: 60,
        triples: 20,
        quads: 10,
        seed: get::<u64>(opts, "seed", Some(7)) ^ 0x1111,
    };
    let colocations = gaugur_core::plan_colocations(&catalog, &plan);
    let measured = gaugur_core::measure_colocations(&server, &catalog, &colocations);
    let data = to_dataset(&gaugur_core::build_rm_samples(&gaugur.profiles, &measured));
    let imp = permutation_importance(&gaugur.rm, &data, gaugur.config.profiling.granularity, 5);
    println!("{:<26} {:>10}", "feature group", "Δ error");
    for (group, delta) in imp {
        println!("{:<26} {:>9.2}%", group.label(), delta * 100.0);
    }
}
