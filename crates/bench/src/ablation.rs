//! Design-choice ablations for the decisions DESIGN.md calls out.
//!
//! 1. **Aggregate-intensity transform** (paper Eq. 5): the `(|G|, mean, var)`
//!    fold vs naive summed intensity (the Paragon assumption) vs zero-padded
//!    concatenation.
//! 2. **Feature ablation**: sensitivity-only and intensity-only models.
//! 3. **Sensitivity sampling granularity** `k` (the paper uses 10).
//! 4. **Colocation-size extrapolation**: train on pairs only, predict
//!    triples and quads.
//! 5. **Hyperparameter selection**: cross-validated grid search over the
//!    GBRT depth and round count, validating the shipped defaults without
//!    touching the test set.

use crate::context::ExperimentContext;
use crate::table::{pct, Table};
use gaugur_core::features::{aggregate_intensity, flatten_sensitivity};
use gaugur_core::{
    measure_colocations, plan_colocations, Algorithm, ColocationPlan, GameProfile,
    MeasuredColocation, ProfileStore, Profiler, ProfilingConfig, RegressionModel,
};
use gaugur_gamesim::{GameCatalog, ResourceVec, Server, ALL_RESOURCES};
use gaugur_ml::gbdt::GbdtParams;
use gaugur_ml::{grid_search, Dataset, GbrtRegressor, Regressor};

/// A feature construction over (target profile, co-runner intensities).
type FeatureFn = dyn Fn(&GameProfile, &[ResourceVec]) -> Vec<f64>;

/// Build an RM dataset with a custom feature construction.
fn build_dataset(
    profiles: &ProfileStore,
    measured: &[MeasuredColocation],
    features: &FeatureFn,
) -> Dataset {
    let mut data = Dataset::new();
    for m in measured {
        for (i, &(id, res)) in m.members.iter().enumerate() {
            let corunners: Vec<_> = m
                .members
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &p)| p)
                .collect();
            let intensities = profiles.intensities(&corunners);
            let profile = profiles.get(id);
            let solo = profile.solo_fps_at(res);
            let degradation = (m.fps[i] / solo).clamp(0.01, 1.2);
            data.push(features(profile, &intensities), degradation);
        }
    }
    data
}

/// Train GBRT on a train set and report mean relative error on a test set,
/// both built with the same feature construction.
fn gbrt_error(
    profiles: &ProfileStore,
    train: &[MeasuredColocation],
    test: &[MeasuredColocation],
    features: &FeatureFn,
) -> f64 {
    let train_data = build_dataset(profiles, train, features);
    let test_data = build_dataset(profiles, test, features);
    let model = RegressionModel::train(&train_data, Algorithm::GradientBoosting, 5);
    let errs: Vec<f64> = test_data
        .iter()
        .map(|(x, y)| (model.predict(x) - y).abs() / y)
        .collect();
    errs.iter().sum::<f64>() / errs.len().max(1) as f64
}

/// The Eq. 5 features (the shipped default).
fn feats_eq5(p: &GameProfile, ints: &[ResourceVec]) -> Vec<f64> {
    let mut f = flatten_sensitivity(p);
    f.extend(aggregate_intensity(ints));
    f
}

/// Summed co-runner intensity (the additive assumption SMiTe/Paragon make).
fn feats_sum(p: &GameProfile, ints: &[ResourceVec]) -> Vec<f64> {
    let mut f = flatten_sensitivity(p);
    f.push(ints.len() as f64);
    for r in ALL_RESOURCES {
        f.push(ints.iter().map(|i| i[r]).sum());
    }
    f
}

/// Zero-padded concatenation of up to 4 co-runner intensity vectors, sorted
/// by total intensity for permutation invariance.
fn feats_concat(p: &GameProfile, ints: &[ResourceVec]) -> Vec<f64> {
    let mut f = flatten_sensitivity(p);
    f.push(ints.len() as f64);
    let mut sorted: Vec<&ResourceVec> = ints.iter().collect();
    sorted.sort_by(|a, b| b.sum().total_cmp(&a.sum()));
    for slot in 0..4 {
        match sorted.get(slot) {
            Some(v) => f.extend(v.as_array()),
            None => f.extend([0.0; 7]),
        }
    }
    f
}

/// Sensitivity curves only (no co-runner information beyond the count).
fn feats_sens_only(p: &GameProfile, ints: &[ResourceVec]) -> Vec<f64> {
    let mut f = flatten_sensitivity(p);
    f.push(ints.len() as f64);
    f
}

/// Co-runner intensity only (no sensitivity).
fn feats_int_only(_p: &GameProfile, ints: &[ResourceVec]) -> Vec<f64> {
    aggregate_intensity(ints)
}

/// Run every ablation and render the results.
pub fn run(ctx: &ExperimentContext) -> String {
    let mut out = String::from("== Ablation 1: aggregate-intensity transform (GBRT error) ==\n");
    let mut t = Table::new(["transform", "test error"]);
    for (name, feats) in [
        ("Eq. 5 (count, mean, var)", &feats_eq5 as &FeatureFn),
        ("summed intensity (additive)", &feats_sum),
        ("sorted zero-padded concat", &feats_concat),
    ] {
        t.row([
            name.to_string(),
            pct(gbrt_error(&ctx.profiles, &ctx.train, &ctx.test, feats)),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n== Ablation 2: feature-family ablation (GBRT error) ==\n");
    let mut t = Table::new(["features", "test error"]);
    for (name, feats) in [
        (
            "sensitivity + aggregate intensity (full)",
            &feats_eq5 as &FeatureFn,
        ),
        ("sensitivity + co-runner count only", &feats_sens_only),
        ("aggregate intensity only", &feats_int_only),
    ] {
        t.row([
            name.to_string(),
            pct(gbrt_error(&ctx.profiles, &ctx.train, &ctx.test, feats)),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n== Ablation 3: sensitivity sampling granularity k ==\n");
    out.push_str(&granularity_ablation(ctx.server.seed).render());

    out.push_str("\n== Ablation 4: train on pairs only, extrapolate to larger sets ==\n");
    let pairs_only: Vec<MeasuredColocation> = ctx
        .train
        .iter()
        .filter(|m| m.size() == 2)
        .cloned()
        .collect();
    let mut t = Table::new([
        "training set",
        "test 2-games",
        "test 3-games",
        "test 4-games",
    ]);
    for (name, train) in [("all sizes", &ctx.train), ("pairs only", &pairs_only)] {
        let mut cells = vec![format!("{name} ({} colocations)", train.len())];
        for size in [2usize, 3, 4] {
            let test: Vec<MeasuredColocation> = ctx
                .test
                .iter()
                .filter(|m| m.size() == size)
                .cloned()
                .collect();
            cells.push(pct(gbrt_error(&ctx.profiles, train, &test, &feats_eq5)));
        }
        t.row(cells);
    }
    out.push_str(&t.render());

    out.push_str("\n== Ablation 5: GBRT hyperparameter grid (5-fold CV on the training pool) ==\n");
    out.push_str(&hyperparameter_grid(ctx).render());
    out
}

/// Cross-validated grid over GBRT depth × rounds, scored on the training
/// pool only (the shipped defaults are depth 5 × 400 rounds).
fn hyperparameter_grid(ctx: &ExperimentContext) -> Table {
    let train_data = build_dataset(&ctx.profiles, &ctx.train, &feats_eq5);
    let grid: Vec<(usize, usize)> = vec![(3, 200), (5, 200), (5, 400), (7, 400)];
    let (best, _, scores) = grid_search(&train_data, &grid, 5, 11, |&(depth, rounds), fold| {
        let model = GbrtRegressor::fit(
            fold,
            GbdtParams {
                max_depth: depth,
                n_estimators: rounds,
                learning_rate: 0.06,
                min_samples_leaf: 3,
                subsample: 0.9,
                seed: 5,
            },
        );
        move |x: &[f64]| model.predict(x).clamp(0.01, 1.05)
    });
    let mut t = Table::new(["depth", "rounds", "CV error", "selected"]);
    for (i, (&(d, r), &s)) in grid.iter().zip(&scores).enumerate() {
        t.row([
            d.to_string(),
            r.to_string(),
            pct(s),
            if i == best {
                "◀".to_string()
            } else {
                String::new()
            },
        ]);
    }
    t
}

/// Re-profile a 30-game subcatalog at several granularities and compare
/// GBRT error with the resulting (coarser / finer) sensitivity features.
fn granularity_ablation(seed: u64) -> Table {
    let server = Server::reference(seed);
    let catalog = GameCatalog::generate(42, 30);
    let plan = ColocationPlan {
        pairs: 150,
        triples: 40,
        quads: 40,
        seed: seed ^ 0xAB1,
    };
    let colocations = plan_colocations(&catalog, &plan);
    let mut measured = measure_colocations(&server, &catalog, &colocations);
    // Shuffle before splitting so train and test both span all colocation
    // sizes (the plan generates them grouped by size).
    use rand::seq::SliceRandom;
    measured.shuffle(&mut gaugur_gamesim::rng::rng_for(seed, &[0x4B_5350]));
    let (train, test) = measured.split_at(160);

    let mut t = Table::new(["granularity k", "features", "GBRT test error"]);
    for k in [2usize, 5, 10, 20] {
        let profiler = Profiler::new(ProfilingConfig {
            granularity: k,
            ..ProfilingConfig::default()
        });
        let profiles = ProfileStore::new(profiler.profile_catalog(&server, &catalog));
        let err = gbrt_error(&profiles, train, test, &feats_eq5);
        t.row([k.to_string(), format!("{}", 7 * (k + 1) + 15), pct(err)]);
    }
    t
}
