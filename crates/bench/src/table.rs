//! Minimal aligned-text table rendering for the reproduction reports.

/// A simple text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Table {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `p` decimals.
pub fn f(v: f64, p: usize) -> String {
    format!("{v:.p$}")
}

/// Format a ratio as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "12345"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        assert!(lines[2].contains("alpha"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.079), "7.9%");
    }
}
