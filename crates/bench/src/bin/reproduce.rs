//! The reproduction driver: regenerates every figure of the GAugur paper.
//!
//! ```text
//! reproduce all            # everything (slow)
//! reproduce fig7           # one figure
//! reproduce fig7 --seed 3  # different noise/measurement realization
//! ```
//!
//! Reports go to stdout and, when `--out <dir>` is given, to one text file
//! per figure in that directory.

use gaugur_bench::figures;
use gaugur_bench::ExperimentContext;
use std::io::Write;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: reproduce <all|fig1|fig2|fig4|fig5|fig6|fig7|fig8|fig9|fig10|obs|ablation|ext> [--seed N] [--out DIR]");
        std::process::exit(2);
    }
    let mut targets: Vec<String> = Vec::new();
    let mut seed = 7u64;
    let mut out_dir: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().expect("--seed N").parse().expect("seed"),
            "--out" => out_dir = Some(it.next().expect("--out DIR")),
            other => targets.push(other.to_string()),
        }
    }
    if targets.iter().any(|t| t == "all") {
        targets = [
            "fig1", "fig2", "fig4", "fig5", "fig6", "obs", "fig7", "fig8", "fig9", "fig10",
            "ablation", "ext",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    eprintln!("[reproduce] building experiment context (seed {seed}) …");
    let t0 = Instant::now();
    let ctx = ExperimentContext::standard(seed);
    eprintln!(
        "[reproduce] context ready in {:.1}s ({} games, {} train / {} test colocations)",
        t0.elapsed().as_secs_f64(),
        ctx.catalog.len(),
        ctx.train.len(),
        ctx.test.len()
    );

    for target in &targets {
        let t = Instant::now();
        let report = match target.as_str() {
            "fig1" => figures::fig1::run(&ctx),
            "fig2" => figures::fig2::run(&ctx),
            "fig4" => figures::fig45::run_fig4(&ctx),
            "fig5" => figures::fig45::run_fig5(&ctx),
            "fig6" => figures::fig6::run(&ctx),
            "obs" => figures::obs::run(&ctx),
            "fig7" => figures::fig7::Fig7::run(&ctx).report(),
            "fig8" => figures::fig8::Fig8::run(&ctx).report(),
            "fig9" => figures::fig9::Fig9::run(&ctx).report(),
            "fig10" => figures::fig10::Fig10::run(&ctx).report(),
            "ablation" => gaugur_bench::ablation::run(&ctx),
            "ext" => figures::ext::run(&ctx),
            "stats" => {
                // Diagnostic: degradation-ratio distribution per colocation
                // size over the whole campaign.
                let mut by_size: std::collections::BTreeMap<usize, Vec<f64>> = Default::default();
                for m in ctx.train.iter().chain(&ctx.test) {
                    for (i, &(id, res)) in m.members.iter().enumerate() {
                        let solo = ctx.profiles.get(id).solo_fps_at(res);
                        by_size
                            .entry(m.members.len())
                            .or_default()
                            .push((m.fps[i] / solo).clamp(0.0, 1.3));
                    }
                }
                let mut s = String::new();
                for (size, mut v) in by_size {
                    v.sort_by(f64::total_cmp);
                    let q = |p: f64| v[((v.len() - 1) as f64 * p) as usize];
                    s.push_str(&format!(
                        "size {size}: n={} p10={:.3} p25={:.3} p50={:.3} p75={:.3} p90={:.3}\n",
                        v.len(),
                        q(0.1),
                        q(0.25),
                        q(0.5),
                        q(0.75),
                        q(0.9)
                    ));
                }
                s
            }
            other => {
                eprintln!("[reproduce] unknown target {other}");
                continue;
            }
        };
        eprintln!(
            "[reproduce] {target} done in {:.1}s",
            t.elapsed().as_secs_f64()
        );
        println!("\n######## {target} ########\n{report}");
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).expect("create out dir");
            let path = format!("{dir}/{target}.txt");
            let mut f = std::fs::File::create(&path).expect("create report file");
            f.write_all(report.as_bytes()).expect("write report");
        }
    }
}
