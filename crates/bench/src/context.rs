//! Shared experiment state: one profiled catalog plus one measured
//! colocation campaign, reused by every figure generator.
//!
//! Mirrors the paper's Section 4 setup: 100 games profiled at two
//! resolutions each, and a campaign of measured colocations (500 pairs +
//! 110 triples + 110 quads here; the paper's 500/100/100 yields slightly
//! fewer than the 1000 training samples its Figure 7a sweeps, so we measure
//! ten extra of each larger size) split into a training pool and a test
//! pool by colocation — never by sample, so no colocation leaks across the
//! split.

use gaugur_core::{
    measure_colocations, plan_colocations, ColocationPlan, MeasuredColocation, ProfileStore,
    Profiler, ProfilingConfig,
};
use gaugur_gamesim::{GameCatalog, GameId, Resolution, Server};
use rand::seq::SliceRandom;

/// A fully prepared experiment environment.
pub struct ExperimentContext {
    /// The simulated testbed.
    pub server: Server,
    /// The game catalog.
    pub catalog: GameCatalog,
    /// Profiled contention features of every game.
    pub profiles: ProfileStore,
    /// Measured colocations available for training.
    pub train: Vec<MeasuredColocation>,
    /// Held-out measured colocations for testing.
    pub test: Vec<MeasuredColocation>,
}

impl ExperimentContext {
    /// The paper-scale context: 100 games, 720 measured colocations,
    /// 420 train / 300 test.
    pub fn standard(seed: u64) -> ExperimentContext {
        ExperimentContext::with_scale(seed, 100, 500, 110, 110, 420)
    }

    /// A reduced context for fast tests: 20 games, 120 colocations.
    pub fn small(seed: u64) -> ExperimentContext {
        ExperimentContext::with_scale(seed, 20, 80, 20, 20, 70)
    }

    /// Fully parameterized construction.
    pub fn with_scale(
        seed: u64,
        games: usize,
        pairs: usize,
        triples: usize,
        quads: usize,
        n_train_colocations: usize,
    ) -> ExperimentContext {
        let server = Server::reference(seed);
        let catalog = GameCatalog::generate(42, games);
        let profiler = Profiler::new(ProfilingConfig::default());
        let profiles = ProfileStore::new(profiler.profile_catalog(&server, &catalog));

        let plan = ColocationPlan {
            pairs,
            triples,
            quads,
            seed: seed ^ 0xC0_10C,
        };
        let colocations = plan_colocations(&catalog, &plan);
        let mut measured = measure_colocations(&server, &catalog, &colocations);

        let mut rng = gaugur_gamesim::rng::rng_for(seed, &[0x5350_4c49]);
        measured.shuffle(&mut rng);
        let n_train = n_train_colocations.min(measured.len());
        let test = measured.split_off(n_train);

        ExperimentContext {
            server,
            catalog,
            profiles,
            train: measured,
            test,
        }
    }

    /// The ten games used for the Section 5 scheduling experiments: drawn
    /// deterministically from the *mid-weight* band — solo 1080p frame rate
    /// in (70, 160) FPS and non-trivial contention intensity. The paper's
    /// ten random games must be QoS-servable alone for a 60-FPS requirement
    /// to be meaningful, and a cohort in which colocation feasibility is a
    /// boundary question (rather than trivially yes for featherweight games
    /// or trivially no for GPU-saturating ones) is what makes the Figure 9
    /// comparison informative.
    pub fn scheduling_games(&self) -> Vec<GameId> {
        // QoS-servable candidates, ordered by total contention weight.
        let mut candidates: Vec<(GameId, f64)> = self
            .catalog
            .games()
            .iter()
            .filter(|g| self.profiles.contains(g.id))
            .filter_map(|g| {
                let p = self.profiles.get(g.id);
                let solo = p.solo_fps_at(Resolution::Fhd1080);
                ((70.0..260.0).contains(&solo))
                    .then(|| (g.id, p.intensity_at(Resolution::Fhd1080).sum()))
            })
            .collect();
        candidates.sort_by(|a, b| a.1.total_cmp(&b.1));

        // Stratified draw: 5 light / 3 mid / 2 heavy. A cohort spanning the
        // weight spectrum makes colocation feasibility a boundary question
        // at every size (pure-light quads work, anything with the heavies is
        // a judgement call) — the regime where prediction quality matters.
        let n = candidates.len();
        let thirds = [
            &candidates[..n / 3],
            &candidates[n / 3..2 * n / 3],
            &candidates[2 * n / 3..],
        ];
        let mut rng = gaugur_gamesim::rng::rng_for(self.server.seed, &[0x0031_3047]);
        let mut selected = Vec::with_capacity(10);
        for (stratum, take) in thirds.iter().zip([5usize, 3, 2]) {
            let mut pool: Vec<GameId> = stratum.iter().map(|&(id, _)| id).collect();
            pool.shuffle(&mut rng);
            selected.extend(pool.into_iter().take(take));
        }
        selected.sort();
        selected.dedup();
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_context_has_expected_shape() {
        let ctx = ExperimentContext::small(1);
        assert_eq!(ctx.catalog.len(), 20);
        assert_eq!(ctx.profiles.len(), 20);
        assert_eq!(ctx.train.len(), 70);
        assert_eq!(ctx.test.len(), 50);
    }

    #[test]
    fn split_does_not_leak_colocations() {
        let ctx = ExperimentContext::small(2);
        let key = |m: &gaugur_core::MeasuredColocation| {
            let mut ids: Vec<(u32, u32)> = m
                .members
                .iter()
                .map(|&(id, res)| (id.0, res.pixels() as u32))
                .collect();
            ids.sort_unstable();
            ids
        };
        let train_keys: std::collections::HashSet<_> = ctx.train.iter().map(key).collect();
        for t in &ctx.test {
            assert!(!train_keys.contains(&key(t)));
        }
    }

    #[test]
    fn scheduling_games_are_qos_servable() {
        // The small 20-game catalog may not hold ten candidates in the
        // stratified band; the full catalog always does.
        let ctx = ExperimentContext::small(3);
        let games = ctx.scheduling_games();
        assert!(games.len() >= 6, "too few candidates: {}", games.len());
        assert!(games.len() <= 10);
        for id in &games {
            let solo = ctx.profiles.get(*id).solo_fps_at(Resolution::Fhd1080);
            assert!((70.0..260.0).contains(&solo), "{id}: {solo}");
        }
        // Determinism.
        assert_eq!(games, ctx.scheduling_games());
    }
}
