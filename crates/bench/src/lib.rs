//! # gaugur-bench — the reproduction harness
//!
//! Regenerates every figure of the GAugur paper (Figures 1, 2, 4, 5, 6, 7,
//! 8, 9, 10 — Figure 3 is the design schematic) plus the Section 3
//! observation validations and a set of design-choice ablations.
//!
//! The `reproduce` binary drives everything:
//!
//! ```text
//! cargo run -p gaugur-bench --release --bin reproduce -- all
//! cargo run -p gaugur-bench --release --bin reproduce -- fig7
//! ```
//!
//! Criterion benches (`cargo bench`) cover the timing claims: online
//! prediction latency, profiling cost, training cost, simulator and
//! scheduler throughput.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablation;
pub mod context;
pub mod figures;
pub mod table;

pub use context::ExperimentContext;
