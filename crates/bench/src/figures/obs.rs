//! Validation of Section 3's observations (4, 6, 7, 8) and Eq. 2 against
//! the simulated testbed — the reproduction's analogue of the paper's
//! "systematic investigation".

use crate::context::ExperimentContext;
use crate::table::{f, Table};
use gaugur_gamesim::game::ALL_RESOLUTIONS;
use gaugur_gamesim::{Game, Microbenchmark, Resolution, Resource, Workload, ALL_RESOURCES};
use gaugur_ml::metrics::r2;
use gaugur_ml::{Dataset, LinearRegression, Regressor};

/// How many catalog games the sweeps sample (keeps the report quick).
const SAMPLE_GAMES: usize = 12;

fn sample(ctx: &ExperimentContext) -> Vec<&Game> {
    ctx.catalog
        .games()
        .iter()
        .step_by((ctx.catalog.len() / SAMPLE_GAMES).max(1))
        .take(SAMPLE_GAMES)
        .collect()
}

/// Linear-fit R² of `ys` against `xs`.
fn linear_r2(xs: &[f64], ys: &[f64]) -> f64 {
    let data = Dataset::from_parts(xs.iter().map(|&x| vec![x]).collect(), ys.to_vec());
    let m = LinearRegression::fit(&data);
    let pred: Vec<f64> = xs.iter().map(|&x| m.predict(&[x])).collect();
    r2(&pred, ys)
}

/// Sweep one game against one benchmark at a resolution, returning the
/// sensitivity curve samples.
fn sensitivity_sweep(
    ctx: &ExperimentContext,
    game: &Game,
    r: Resource,
    res: Resolution,
) -> Vec<f64> {
    let solo = ctx.server.measure_solo_fps(game, res);
    let bench = Microbenchmark::for_resource(r);
    (0..=10)
        .map(|step| {
            let out = ctx.server.measure_colocation(&[
                Workload::game(game, res),
                Workload::bench(bench, step as f64 / 10.0),
            ]);
            out.game_fps(0).expect("game") / solo
        })
        .collect()
}

/// Intensity of a game for one resource at a resolution (mean benchmark
/// slowdown − 1 over the pressure sweep).
fn intensity(ctx: &ExperimentContext, game: &Game, r: Resource, res: Resolution) -> f64 {
    let bench = Microbenchmark::for_resource(r);
    let mut sum = 0.0;
    for step in 0..=10 {
        let out = ctx.server.measure_colocation(&[
            Workload::game(game, res),
            Workload::bench(bench, step as f64 / 10.0),
        ]);
        sum += out.bench_slowdown(1).expect("bench");
    }
    (sum / 11.0 - 1.0).max(0.0)
}

/// Run all observation validations.
pub fn run(ctx: &ExperimentContext) -> String {
    let games = sample(ctx);
    let mut out = String::from("== Section 3 observation validations ==\n\n");

    // --- Observation 4: sensitivity curves are nonlinear ----------------
    let pressures: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let mut nonlinear = 0usize;
    let mut total = 0usize;
    let mut worst_r2: f64 = 1.0;
    for g in &games {
        let profile = ctx.profiles.get(g.id);
        for r in ALL_RESOURCES {
            let curve = &profile.sensitivity_for(r).samples;
            let fit = linear_r2(&pressures, curve);
            worst_r2 = worst_r2.min(fit);
            total += 1;
            // A curve that moves at least a little and is poorly explained
            // by a line counts as nonlinear.
            let range = curve[0] - curve[curve.len() - 1];
            if range > 0.05 && fit < 0.97 {
                nonlinear += 1;
            }
        }
    }
    out.push_str(&format!(
        "Observation 4 (nonlinear sensitivity): {nonlinear}/{total} curves with \
         meaningful degradation are poorly fit by a line (worst linear R² = {worst_r2:.2}).\n\n",
    ));

    // --- Observation 6: sensitivity curves are resolution-independent ---
    let mut max_diff: f64 = 0.0;
    let mut mean_diff = 0.0;
    let mut n_curves = 0;
    for g in games.iter().take(4) {
        for r in ALL_RESOURCES {
            let lo = sensitivity_sweep(ctx, g, r, Resolution::Hd720);
            let hi = sensitivity_sweep(ctx, g, r, Resolution::Qhd1440);
            let diff: f64 = lo
                .iter()
                .zip(&hi)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            max_diff = max_diff.max(diff);
            mean_diff += diff;
            n_curves += 1;
        }
    }
    mean_diff /= n_curves as f64;
    out.push_str(&format!(
        "Observation 6 (resolution-independent sensitivity): over {n_curves} curves \
         profiled at 720p vs 1440p, mean max-deviation = {mean_diff:.3}, worst = {max_diff:.3}.\n\n",
    ));

    // --- Observations 7 & 8: intensity vs resolution ---------------------
    let mpix: Vec<f64> = ALL_RESOLUTIONS.iter().map(|r| r.megapixels()).collect();
    let mut t = Table::new(["resource", "kind", "mean |Δ| 720p→1440p", "mean linear R²"]);
    for r in ALL_RESOURCES {
        let mut rel_change = 0.0;
        let mut fit_sum = 0.0;
        let mut n = 0;
        for g in games.iter().take(4) {
            let series: Vec<f64> = ALL_RESOLUTIONS
                .iter()
                .map(|&res| intensity(ctx, g, r, res))
                .collect();
            let base = series[0].max(1e-6);
            rel_change += (series[3] - series[0]).abs() / base;
            fit_sum += linear_r2(&mpix, &series);
            n += 1;
        }
        t.row([
            r.short_name().to_string(),
            if r.scales_with_pixels() {
                "GPU-side (Obs 8: linear in pixels)".to_string()
            } else {
                "CPU-side (Obs 7: insensitive)".to_string()
            },
            f(rel_change / n as f64, 2),
            f(fit_sum / n as f64, 2),
        ]);
    }
    out.push_str("Observations 7–8 (intensity vs resolution):\n");
    out.push_str(&t.render());
    out.push('\n');

    // --- Eq. 2: solo FPS linear in pixel count ---------------------------
    let mut t = Table::new(["game", "FPS@720p", "FPS@1080p", "FPS@1440p", "linear R²"]);
    let mut min_r2: f64 = 1.0;
    for g in games.iter().take(8) {
        let series: Vec<f64> = ALL_RESOLUTIONS
            .iter()
            .map(|&res| ctx.server.measure_solo_fps(g, res))
            .collect();
        let fit = linear_r2(&mpix, &series);
        min_r2 = min_r2.min(fit);
        t.row([
            g.name.clone(),
            f(series[0], 0),
            f(series[2], 0),
            f(series[3], 0),
            f(fit, 3),
        ]);
    }
    out.push_str("Eq. 2 (solo FPS ≈ b − a·N_pixels):\n");
    out.push_str(&t.render());
    out.push_str(&format!("Minimum linear R² across games: {min_r2:.3}\n"));
    out
}
