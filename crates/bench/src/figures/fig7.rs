//! Figure 7: regression accuracy.
//!
//! * (a) mean prediction error `|δ̃ − δ| / δ` of GAugur(RM) under four ML
//!   algorithms, sweeping the number of training samples (400–1000);
//! * (b) error breakdown by colocation size, GAugur(RM) vs Sigmoid vs SMiTe;
//! * (c) CDF of per-sample errors per methodology.
//!
//! Paper anchors: GBRT@1000 ≈ 7.9% (best of the four), Sigmoid ≈ 22.5%,
//! SMiTe ≈ 23.6%, with SMiTe degrading sharply at size 4 because intensity
//! is not additive.

use crate::context::ExperimentContext;
use crate::figures::common::{
    degradation_error, eval_records, rm_training_pool, take_dataset, EvalRecord,
};
use crate::table::{pct, Table};
use gaugur_baselines::InterferencePredictor;
use gaugur_core::features::rm_features;
use gaugur_core::{Algorithm, RegressionModel, ALL_ALGORITHMS};
use gaugur_ml::metrics::Cdf;
use rayon::prelude::*;

/// Training-set sizes swept in Figure 7a.
pub const SAMPLE_SWEEP: [usize; 4] = [400, 600, 800, 1000];

/// Structured results for Figure 7.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// `(n_samples, per-algorithm error)` — Figure 7a.
    pub sweep: Vec<(usize, Vec<(Algorithm, f64)>)>,
    /// `(method, [overall, 2-games, 3-games, 4-games])` — Figure 7b.
    pub by_size: Vec<(String, [f64; 4])>,
    /// `(method, error CDF)` — Figure 7c.
    pub cdfs: Vec<(String, Cdf)>,
}

/// A GAugur RM wrapped as a degradation predictor over profiles.
struct RmPredictor<'a> {
    ctx: &'a ExperimentContext,
    model: &'a RegressionModel,
}

impl InterferencePredictor for RmPredictor<'_> {
    fn predict_degradation(
        &self,
        target: gaugur_core::Placement,
        others: &[gaugur_core::Placement],
    ) -> f64 {
        let profile = self.ctx.profiles.get(target.0);
        let intensities = self.ctx.profiles.intensities(others);
        self.model.predict(&rm_features(profile, &intensities))
    }

    fn meets_qos(
        &self,
        qos: f64,
        target: gaugur_core::Placement,
        others: &[gaugur_core::Placement],
    ) -> bool {
        let solo = self.ctx.profiles.get(target.0).solo_fps_at(target.1);
        self.predict_degradation(target, others) * solo >= qos
    }

    fn name(&self) -> &'static str {
        "GAugur(RM)"
    }
}

impl Fig7 {
    /// Run the full Figure 7 experiment.
    pub fn run(ctx: &ExperimentContext) -> Fig7 {
        let pool = rm_training_pool(ctx, 0xF167);
        let records = eval_records(ctx, &ctx.test);

        // --- 7a: algorithm × sample-count sweep -------------------------
        let sweep: Vec<(usize, Vec<(Algorithm, f64)>)> = SAMPLE_SWEEP
            .iter()
            .map(|&n| {
                let data = take_dataset(&pool, n);
                let errors: Vec<(Algorithm, f64)> = ALL_ALGORITHMS
                    .par_iter()
                    .map(|&algo| {
                        let model = RegressionModel::train(&data, algo, 7);
                        let rm = RmPredictor { ctx, model: &model };
                        (algo, degradation_error(&rm, &records))
                    })
                    .collect();
                (n, errors)
            })
            .collect();

        // --- 7b/7c: best model vs baselines ------------------------------
        let data = take_dataset(&pool, 1000);
        let gbrt = RegressionModel::train(&data, Algorithm::GradientBoosting, 7);
        let rm = RmPredictor { ctx, model: &gbrt };
        let (sigmoid, smite) = crate::figures::common::train_baselines(ctx);

        let methods: Vec<(&str, &dyn InterferencePredictor)> = vec![
            ("GAugur(RM)", &rm),
            ("Sigmoid", &sigmoid),
            ("SMiTe", &smite),
        ];

        let mut by_size = Vec::new();
        let mut cdfs = Vec::new();
        for (name, m) in &methods {
            let split = |pred: &dyn InterferencePredictor, size: Option<usize>| -> f64 {
                let subset: Vec<EvalRecord> = records
                    .iter()
                    .filter(|r| size.is_none_or(|s| r.size == s))
                    .cloned()
                    .collect();
                degradation_error(pred, &subset)
            };
            by_size.push((
                name.to_string(),
                [
                    split(*m, None),
                    split(*m, Some(2)),
                    split(*m, Some(3)),
                    split(*m, Some(4)),
                ],
            ));
            let errs: Vec<f64> = records
                .iter()
                .map(|r| {
                    let p = m.predict_degradation(r.target, &r.others);
                    (p - r.actual_degradation).abs() / r.actual_degradation
                })
                .collect();
            cdfs.push((name.to_string(), Cdf::new(errs)));
        }

        Fig7 {
            sweep,
            by_size,
            cdfs,
        }
    }

    /// Error of one algorithm at one training size (panics if absent).
    pub fn error_at(&self, n: usize, algo: Algorithm) -> f64 {
        self.sweep
            .iter()
            .find(|(s, _)| *s == n)
            .and_then(|(_, v)| v.iter().find(|(a, _)| *a == algo))
            .map(|(_, e)| *e)
            .expect("sweep point present")
    }

    /// Overall error of a named method in the 7b breakdown.
    pub fn overall_error(&self, method: &str) -> f64 {
        self.by_size
            .iter()
            .find(|(n, _)| n == method)
            .map(|(_, v)| v[0])
            .expect("method present")
    }

    /// Render the three panels as text.
    pub fn report(&self) -> String {
        let mut out = String::from("== Figure 7a: RM prediction error vs training samples ==\n");
        let mut t = Table::new(["samples", "DTR", "GBRT", "RF", "SVR"]);
        for (n, errs) in &self.sweep {
            let get = |a: Algorithm| {
                errs.iter()
                    .find(|(x, _)| *x == a)
                    .map(|(_, e)| pct(*e))
                    .unwrap_or_default()
            };
            t.row([
                n.to_string(),
                get(Algorithm::DecisionTree),
                get(Algorithm::GradientBoosting),
                get(Algorithm::RandomForest),
                get(Algorithm::Svm),
            ]);
        }
        out.push_str(&t.render());

        out.push_str("\n== Figure 7b: error breakdown by colocation size ==\n");
        let mut t = Table::new(["method", "overall", "2-games", "3-games", "4-games"]);
        for (name, v) in &self.by_size {
            t.row([name.clone(), pct(v[0]), pct(v[1]), pct(v[2]), pct(v[3])]);
        }
        out.push_str(&t.render());

        out.push_str("\n== Figure 7c: prediction-error CDF (quantiles) ==\n");
        let mut t = Table::new(["method", "p25", "p50", "p75", "p90", "p99"]);
        for (name, cdf) in &self.cdfs {
            t.row([
                name.clone(),
                pct(cdf.quantile(0.25)),
                pct(cdf.quantile(0.50)),
                pct(cdf.quantile(0.75)),
                pct(cdf.quantile(0.90)),
                pct(cdf.quantile(0.99)),
            ]);
        }
        out.push_str(&t.render());
        out
    }
}
