//! Figure 2: solo resource demand and solo frame rates of the 100 games.
//!
//! * (a) CPU vs GPU demand scatter (bubble = memory demand), each normalized
//!   to the maximum across games;
//! * (b) solo frame rate per game.
//!
//! The paper's point: demand is wildly diverse (colocation opportunity) and
//! many games render far above 60 FPS alone (over-provisioning when run on
//! dedicated servers).

use crate::context::ExperimentContext;
use crate::table::{f, Table};
use gaugur_gamesim::Resolution;

/// Measure demands and solo FPS of the whole catalog and render the
/// figure's data.
pub fn run(ctx: &ExperimentContext) -> String {
    let res = Resolution::Fhd1080;
    let demands: Vec<_> = ctx
        .catalog
        .games()
        .iter()
        .map(|g| (g, g.solo_demand(res)))
        .collect();
    let max_cpu = demands.iter().map(|(_, d)| d.cpu).fold(0.0, f64::max);
    let max_gpu = demands.iter().map(|(_, d)| d.gpu).fold(0.0, f64::max);
    let max_mem = demands
        .iter()
        .map(|(_, d)| d.cpu_mem + d.gpu_mem)
        .fold(0.0, f64::max);

    let mut t = Table::new(["game", "genre", "CPU", "GPU", "mem", "solo FPS"]);
    let mut above_60 = 0usize;
    let mut fps_min = f64::INFINITY;
    let mut fps_max: f64 = 0.0;
    for (g, d) in &demands {
        let fps = ctx.server.measure_solo_fps(g, res);
        above_60 += usize::from(fps >= 60.0);
        fps_min = fps_min.min(fps);
        fps_max = fps_max.max(fps);
        t.row([
            g.name.clone(),
            g.genre.to_string(),
            f(d.cpu / max_cpu, 2),
            f(d.gpu / max_gpu, 2),
            f((d.cpu_mem + d.gpu_mem) / max_mem, 2),
            f(fps, 0),
        ]);
    }

    format!(
        "== Figure 2: solo demand (normalized) and solo FPS of {} games (1080p) ==\n{}\n\
         {} of {} games exceed 60 FPS alone (over-provisioned on dedicated servers);\n\
         solo FPS spans {:.0}–{:.0}.\n",
        demands.len(),
        t.render(),
        above_60,
        demands.len(),
        fps_min,
        fps_max
    )
}
