//! Figures 4 and 5: sensitivity curves and intensities of six representative
//! games.
//!
//! The same six titles as the paper: Dota2, Far Cry 4, Granado Espada, Rise
//! of The Tomb Raider, The Elder Scrolls V and World of Warcraft. Figure 4
//! plots each game's FPS-retention ratio against benchmark pressure for all
//! seven resources; Figure 5 the intensity each game exerts on each
//! resource's benchmark.

use crate::context::ExperimentContext;
use crate::table::{f, Table};
use gaugur_gamesim::{Resolution, ALL_RESOURCES};

/// The paper's six representative games.
pub const REPRESENTATIVE_GAMES: [&str; 6] = [
    "Dota2",
    "Far Cry 4",
    "Granado Espada",
    "Rise of The Tomb Raider",
    "The Elder Scrolls V: Skyrim",
    "World of Warcraft",
];

/// Render Figure 4: per-game sensitivity curves (from the profiles).
pub fn run_fig4(ctx: &ExperimentContext) -> String {
    let mut out =
        String::from("== Figure 4: sensitivity curves (FPS retention vs pressure, k = 10) ==\n");
    for name in REPRESENTATIVE_GAMES {
        let game = ctx.catalog.by_name(name).expect("game in catalog");
        let profile = ctx.profiles.get(game.id);
        out.push_str(&format!("\n-- {name} --\n"));
        let mut header = vec!["resource".to_string()];
        header.extend((0..=10).map(|i| format!("{:.1}", i as f64 / 10.0)));
        let mut t = Table::new(header);
        for r in ALL_RESOURCES {
            let curve = profile.sensitivity_for(r);
            let mut row = vec![r.short_name().to_string()];
            row.extend(curve.samples.iter().map(|&v| f(v, 2)));
            t.row(row);
        }
        out.push_str(&t.render());
    }
    out
}

/// Render Figure 5: per-game intensities at 1080p.
pub fn run_fig5(ctx: &ExperimentContext) -> String {
    let mut out = String::from("== Figure 5: intensity of selected games (1080p) ==\n");
    let mut header = vec!["game".to_string()];
    header.extend(ALL_RESOURCES.iter().map(|r| r.short_name().to_string()));
    let mut t = Table::new(header);
    for name in REPRESENTATIVE_GAMES {
        let game = ctx.catalog.by_name(name).expect("game in catalog");
        let intensity = ctx.profiles.get(game.id).intensity_at(Resolution::Fhd1080);
        let mut row = vec![name.to_string()];
        row.extend(ALL_RESOURCES.iter().map(|&r| f(intensity[r], 2)));
        t.row(row);
    }
    out.push_str(&t.render());
    out
}
