//! Figure 10: maximizing overall performance on a fixed fleet
//! (Section 5.2).
//!
//! * (a) measured average FPS achieved by each methodology's placement of
//!   5000 requests onto 1500 / 2000 / 2500 / 3000 servers;
//! * (b) the FPS CDF across all games at 2000 servers.
//!
//! Paper anchors: GAugur(RM) wins at every fleet size, by up to 15%; more
//! servers → higher average FPS for everyone.

use crate::context::ExperimentContext;
use crate::figures::fig9::{build_gaugur, SCHED_RESOLUTION};
use crate::table::{f, Table};
use gaugur_baselines::VbpPolicy;
use gaugur_ml::metrics::Cdf;
use gaugur_sched::{
    assign_max_fps, assign_worst_fit, evaluate_cluster, random_requests, FpsModel, GaugurRm,
    PredictorFps,
};
use serde::Serialize;

/// Fleet sizes swept in Figure 10a.
pub const FLEET_SWEEP: [usize; 4] = [1500, 2000, 2500, 3000];

/// Number of gaming requests placed.
pub const N_REQUESTS: usize = 5000;

/// Structured results for Figure 10.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10 {
    /// `(n_servers, methodology, measured average FPS, unplaced requests)`.
    pub average_fps: Vec<(usize, String, f64, usize)>,
    /// `(methodology, FPS quantiles p10/p25/p50/p75/p90)` at 2000 servers.
    pub cdf_at_2000: Vec<(String, [f64; 5])>,
}

impl Fig10 {
    /// Run the full Figure 10 experiment.
    pub fn run(ctx: &ExperimentContext) -> Fig10 {
        let games = ctx.scheduling_games();
        let requests =
            random_requests(&games, N_REQUESTS, ctx.server.seed ^ 0x9C).as_request_stream(11);

        let gaugur = build_gaugur(ctx);
        let (sigmoid, smite) = crate::figures::common::train_baselines(ctx);
        let vbp = VbpPolicy::from_catalog(&ctx.catalog);

        let rm = GaugurRm(&gaugur);
        let sig = PredictorFps {
            predictor: &sigmoid,
            profiles: &ctx.profiles,
        };
        let smi = PredictorFps {
            predictor: &smite,
            profiles: &ctx.profiles,
        };
        let models: Vec<&dyn FpsModel> = vec![&rm, &sig, &smi];

        let mut average_fps = Vec::new();
        let mut cdf_at_2000 = Vec::new();
        for &n_servers in &FLEET_SWEEP {
            for model in &models {
                let result = assign_max_fps(*model, SCHED_RESOLUTION, &requests, n_servers);
                let eval =
                    evaluate_cluster(&ctx.server, &ctx.catalog, &result.servers, SCHED_RESOLUTION);
                average_fps.push((
                    n_servers,
                    model.model_name().to_string(),
                    eval.average_fps(),
                    result.unplaced,
                ));
                if n_servers == 2000 {
                    cdf_at_2000.push((model.model_name().to_string(), quantiles(&eval.fps_cdf())));
                }
            }
            // VBP worst-fit.
            let result = assign_worst_fit(&vbp, SCHED_RESOLUTION, &requests, n_servers);
            let eval =
                evaluate_cluster(&ctx.server, &ctx.catalog, &result.servers, SCHED_RESOLUTION);
            average_fps.push((
                n_servers,
                "VBP".to_string(),
                eval.average_fps(),
                result.unplaced,
            ));
            if n_servers == 2000 {
                cdf_at_2000.push(("VBP".to_string(), quantiles(&eval.fps_cdf())));
            }
        }

        Fig10 {
            average_fps,
            cdf_at_2000,
        }
    }

    /// Measured average FPS of a methodology at a fleet size.
    pub fn avg_fps(&self, n_servers: usize, name: &str) -> f64 {
        self.average_fps
            .iter()
            .find(|(n, m, _, _)| *n == n_servers && m == name)
            .map(|(_, _, fps, _)| *fps)
            .expect("methodology present")
    }

    /// Render both panels as text.
    pub fn report(&self) -> String {
        let mut out = String::from("== Figure 10a: measured average FPS vs fleet size ==\n");
        let mut t = Table::new(["servers", "method", "avg FPS", "unplaced"]);
        for (n, name, fps, unplaced) in &self.average_fps {
            t.row([
                n.to_string(),
                name.clone(),
                f(*fps, 1),
                unplaced.to_string(),
            ]);
        }
        out.push_str(&t.render());

        out.push_str("\n== Figure 10b: FPS distribution at 2000 servers (quantiles) ==\n");
        let mut t = Table::new(["method", "p10", "p25", "p50", "p75", "p90"]);
        for (name, q) in &self.cdf_at_2000 {
            t.row([
                name.clone(),
                f(q[0], 1),
                f(q[1], 1),
                f(q[2], 1),
                f(q[3], 1),
                f(q[4], 1),
            ]);
        }
        out.push_str(&t.render());
        out
    }
}

fn quantiles(cdf: &Cdf) -> [f64; 5] {
    [
        cdf.quantile(0.10),
        cdf.quantile(0.25),
        cdf.quantile(0.50),
        cdf.quantile(0.75),
        cdf.quantile(0.90),
    ]
}
