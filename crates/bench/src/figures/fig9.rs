//! Figure 9: minimizing resource usage with QoS guarantees (Section 5.1).
//!
//! * (a) TP / FP / FN / TN of each methodology over the 385 candidate
//!   colocations of 10 games;
//! * (b) accuracy / precision / recall;
//! * (c) servers used by Algorithm 1 to pack 5000 requests, QoS ∈ {60, 50}.
//!
//! Paper anchors: GAugur(CM) precision ≈ 94%, recall ≈ 88%, and a 20–40%
//! server saving over Sigmoid / SMiTe / VBP (up to 60% vs no colocation).

use crate::context::ExperimentContext;
use crate::table::{pct, Table};
use gaugur_baselines::VbpPolicy;
use gaugur_core::{GAugur, GAugurConfig};
use gaugur_gamesim::{GameId, Resolution};
use gaugur_ml::metrics::Confusion;
use gaugur_sched::{
    pack_requests, random_requests, ColocationTable, FeasibilityReport, GaugurCm, GaugurRm,
    PredictorFps, VbpJudge,
};
use serde::Serialize;

/// The resolution the Section 5 experiments run at.
pub const SCHED_RESOLUTION: Resolution = Resolution::Fhd1080;

/// Number of gaming requests packed in Figure 9c.
pub const N_REQUESTS: usize = 5000;

/// Structured results for Figure 9.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9 {
    /// The ten selected games.
    pub games: Vec<GameId>,
    /// Per-methodology confusion over the 385 colocations (QoS = 60).
    pub confusions: Vec<(String, Confusion)>,
    /// Usable (TP) colocations per size `[1, 2, 3, 4]` per methodology.
    pub usable_by_size: Vec<(String, [usize; 4])>,
    /// Actually feasible colocations per size `[1, 2, 3, 4]`.
    pub actual_by_size: [usize; 4],
    /// `(qos, methodology, servers used, fallback servers)` — Figure 9c.
    pub servers: Vec<(f64, String, usize, usize)>,
    /// Servers needed with colocation disallowed (= request count).
    pub no_colocation_servers: usize,
}

/// Build the shared GAugur predictor for the Section 5 experiments
/// ("trained as in Section 4").
pub fn build_gaugur(ctx: &ExperimentContext) -> GAugur {
    GAugur::from_measurements(ctx.profiles.clone(), &ctx.train, GAugurConfig::default())
}

impl Fig9 {
    /// Run the full Figure 9 experiment.
    pub fn run(ctx: &ExperimentContext) -> Fig9 {
        let games = ctx.scheduling_games();
        let table =
            ColocationTable::measure(&ctx.server, &ctx.catalog, &games, SCHED_RESOLUTION, 4);

        let gaugur = build_gaugur(ctx);
        let (sigmoid, smite) = crate::figures::common::train_baselines(ctx);
        let vbp = VbpPolicy::from_catalog(&ctx.catalog);

        let cm = GaugurCm(&gaugur);
        let rm = GaugurRm(&gaugur);
        let sig = PredictorFps {
            predictor: &sigmoid,
            profiles: &ctx.profiles,
        };
        let smi = PredictorFps {
            predictor: &smite,
            profiles: &ctx.profiles,
        };
        let vbpj = VbpJudge(&vbp);
        let judges: Vec<&dyn gaugur_sched::FeasibilityModel> = vec![&cm, &rm, &sig, &smi, &vbpj];

        // --- 9a/9b: feasibility judgement quality (QoS = 60) -------------
        let mut confusions = Vec::new();
        let mut usable_by_size = Vec::new();
        let actual60 = table.feasible_indices(60.0);
        let actual_sizes = size_histogram(&table, &actual60);
        for judge in &judges {
            let report = FeasibilityReport::build(&table, *judge, 60.0);
            confusions.push((report.name.clone(), report.confusion));
            usable_by_size.push((report.name.clone(), size_histogram(&table, &report.usable)));
        }

        // --- 9c: Algorithm 1 server counts --------------------------------
        let requests = random_requests(&games, N_REQUESTS, ctx.server.seed ^ 0x9C);
        let mut servers = Vec::new();
        for &qos in &[60.0, 50.0] {
            for judge in &judges {
                let report = FeasibilityReport::build(&table, *judge, qos);
                let packed = pack_requests(&table, &report.usable, &requests);
                servers.push((
                    qos,
                    report.name.clone(),
                    packed.server_count(),
                    packed.fallback_servers,
                ));
            }
            // Oracle: perfect feasibility knowledge (upper bound on what any
            // predictor can enable under the same greedy).
            let oracle = pack_requests(&table, &table.feasible_indices(qos), &requests);
            servers.push((
                qos,
                "Oracle".to_string(),
                oracle.server_count(),
                oracle.fallback_servers,
            ));
        }

        Fig9 {
            games,
            confusions,
            usable_by_size,
            actual_by_size: actual_sizes,
            servers,
            no_colocation_servers: N_REQUESTS,
        }
    }

    /// The confusion matrix of a named methodology.
    pub fn confusion(&self, name: &str) -> Confusion {
        self.confusions
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .expect("methodology present")
    }

    /// Servers used by a named methodology at a QoS level.
    pub fn servers_used(&self, qos: f64, name: &str) -> usize {
        self.servers
            .iter()
            .find(|(q, n, _, _)| *q == qos && n == name)
            .map(|(_, _, s, _)| *s)
            .expect("methodology present")
    }

    /// Render the three panels as text.
    pub fn report(&self) -> String {
        let names: Vec<String> = self.games.iter().map(|id| id.to_string()).collect();
        let mut out = format!(
            "Selected games: {} ({} candidate colocations)\n\n",
            names.join(" "),
            385
        );

        out.push_str("== Figure 9a: TP / FP / FN / TN over 385 colocations (QoS = 60) ==\n");
        let mut t = Table::new(["method", "TP", "FP", "FN", "TN"]);
        for (name, c) in &self.confusions {
            t.row([
                name.clone(),
                c.tp.to_string(),
                c.fp.to_string(),
                c.fn_.to_string(),
                c.tn.to_string(),
            ]);
        }
        out.push_str(&t.render());

        out.push_str("\n== Figure 9b: accuracy / precision / recall (QoS = 60) ==\n");
        let mut t = Table::new(["method", "accuracy", "precision", "recall"]);
        for (name, c) in &self.confusions {
            t.row([
                name.clone(),
                pct(c.accuracy()),
                pct(c.precision()),
                pct(c.recall()),
            ]);
        }
        out.push_str(&t.render());

        out.push_str("\nUsable (true-positive) colocations by size:\n");
        let mut t = Table::new(["method", "1-game", "2-games", "3-games", "4-games"]);
        t.row([
            "actually feasible".to_string(),
            self.actual_by_size[0].to_string(),
            self.actual_by_size[1].to_string(),
            self.actual_by_size[2].to_string(),
            self.actual_by_size[3].to_string(),
        ]);
        for (name, h) in &self.usable_by_size {
            t.row([
                name.clone(),
                h[0].to_string(),
                h[1].to_string(),
                h[2].to_string(),
                h[3].to_string(),
            ]);
        }
        out.push_str(&t.render());

        out.push_str(&format!(
            "\n== Figure 9c: servers used to pack {} requests ==\n",
            N_REQUESTS
        ));
        let mut t = Table::new(["QoS", "method", "servers", "fallback (QoS-risk)"]);
        for (qos, name, servers, fallback) in &self.servers {
            t.row([
                format!("{qos} FPS"),
                name.clone(),
                servers.to_string(),
                fallback.to_string(),
            ]);
        }
        t.row([
            "any".into(),
            "No colocation".into(),
            self.no_colocation_servers.to_string(),
            "0".into(),
        ]);
        out.push_str(&t.render());
        out
    }
}

/// Count colocations of each size (1–4) among `indices`.
fn size_histogram(table: &ColocationTable, indices: &[usize]) -> [usize; 4] {
    let mut h = [0usize; 4];
    for &i in indices {
        let s = table.sets[i].len();
        if (1..=4).contains(&s) {
            h[s - 1] += 1;
        }
    }
    h
}
