//! Shared evaluation plumbing for the Figure 7/8 accuracy experiments.

use crate::context::ExperimentContext;
use gaugur_baselines::{InterferencePredictor, SigmoidPredictor, SmitePredictor};
use gaugur_core::{build_rm_samples, to_dataset, MeasuredColocation, Placement, TaggedSample};
use gaugur_gamesim::rng::rng_for;
use rand::seq::SliceRandom;

/// One held-out evaluation record: a target game in a measured colocation,
/// with its ground-truth degradation ratio.
#[derive(Debug, Clone)]
pub struct EvalRecord {
    /// The member being predicted.
    pub target: Placement,
    /// Its co-runners.
    pub others: Vec<Placement>,
    /// Ground-truth degradation (measured FPS / Eq.-2 solo FPS).
    pub actual_degradation: f64,
    /// Measured FPS.
    pub actual_fps: f64,
    /// Eq.-2 solo FPS of the target at its resolution.
    pub solo_fps: f64,
    /// Colocation size.
    pub size: usize,
}

/// Expand measured colocations into per-member evaluation records.
pub fn eval_records(ctx: &ExperimentContext, measured: &[MeasuredColocation]) -> Vec<EvalRecord> {
    let mut out = Vec::new();
    for m in measured {
        for (i, &(id, res)) in m.members.iter().enumerate() {
            let others: Vec<Placement> = m
                .members
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &p)| p)
                .collect();
            let solo = ctx.profiles.get(id).solo_fps_at(res);
            out.push(EvalRecord {
                target: (id, res),
                others,
                actual_degradation: (m.fps[i] / solo).clamp(0.01, 1.2),
                actual_fps: m.fps[i],
                solo_fps: solo,
                size: m.size(),
            });
        }
    }
    out
}

/// The shuffled RM training-sample pool (tagged with colocation size).
pub fn rm_training_pool(ctx: &ExperimentContext, seed: u64) -> Vec<TaggedSample> {
    let mut pool = build_rm_samples(&ctx.profiles, &ctx.train);
    pool.shuffle(&mut rng_for(seed, &[0x524D_504F]));
    pool
}

/// Take the first `n` samples of a pool as a dataset.
pub fn take_dataset(pool: &[TaggedSample], n: usize) -> gaugur_ml::Dataset {
    to_dataset(&pool[..n.min(pool.len())])
}

/// Train the two baselines on the training colocations.
pub fn train_baselines(ctx: &ExperimentContext) -> (SigmoidPredictor, SmitePredictor) {
    (
        SigmoidPredictor::train(ctx.profiles.clone(), &ctx.train),
        SmitePredictor::train(ctx.profiles.clone(), &ctx.train),
    )
}

/// Mean relative degradation error of a predictor over records.
pub fn degradation_error(predictor: &dyn InterferencePredictor, records: &[EvalRecord]) -> f64 {
    let errs: Vec<f64> = records
        .iter()
        .map(|r| {
            let pred = predictor.predict_degradation(r.target, &r.others);
            (pred - r.actual_degradation).abs() / r.actual_degradation
        })
        .collect();
    errs.iter().sum::<f64>() / errs.len().max(1) as f64
}
