//! Per-figure reproduction generators.
//!
//! Each submodule regenerates one figure (or figure group) of the paper and
//! returns both structured results (consumed by integration tests and
//! EXPERIMENTS.md) and a rendered text report.

pub mod common;
pub mod ext;
pub mod fig1;
pub mod fig10;
pub mod fig2;
pub mod fig45;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod obs;
