//! Extension experiments — the paper's Section 7 discussion points and
//! Section 8 future-work items, implemented and measured:
//!
//! 1. **Temporal QoS violations** (Sec. 7): dynamic scenes make mean-FPS
//!    feasibility optimistic; a conservative margin trades capacity for
//!    fewer dips.
//! 2. **Server heterogeneity** (future work #1): how well does a model
//!    trained on one hardware class transfer to another, vs retraining?
//! 3. **Collaborative-filtering profiling** (related work \[13, 14\]): how
//!    much profiling cost can ALS completion save before accuracy suffers?
//! 4. **Dynamic sessions**: live arrivals/departures under three placement
//!    policies, measured end to end.

use crate::context::ExperimentContext;
use crate::figures::common::eval_records;
use crate::table::{f, pct, Table};
use gaugur_baselines::VbpPolicy;
use gaugur_core::cf::{profile_catalog_cf, CfConfig};
use gaugur_core::features::rm_features;
use gaugur_core::{
    measure_colocations, plan_colocations, Algorithm, ColocationPlan, ProfileStore, Profiler,
    ProfilingConfig, RegressionModel,
};
use gaugur_gamesim::{Resolution, Server, Workload, ALL_SERVER_CLASSES};
use gaugur_sched::{simulate_dynamic, DynamicConfig, GaugurRm, Policy};

/// Run all four extension experiments.
pub fn run(ctx: &ExperimentContext) -> String {
    let mut out = String::new();
    out.push_str(&temporal_qos(ctx));
    out.push('\n');
    out.push_str(&heterogeneity(ctx));
    out.push('\n');
    out.push_str(&cf_profiling(ctx));
    out.push('\n');
    out.push_str(&dynamic_sessions(ctx));
    out
}

/// Extension 1: temporary QoS violations under dynamic scenes.
fn temporal_qos(ctx: &ExperimentContext) -> String {
    let res = Resolution::Fhd1080;
    let qos = 60.0;
    let games = ctx.scheduling_games();

    // Find pairs whose *mean* colocated FPS clears the bar, then replay
    // them with dynamic scenes.
    let mut rows = Vec::new();
    let mut mean_feasible = 0usize;
    let mut dips = 0usize;
    let mut conservative_kept = 0usize;
    let mut conservative_dips = 0usize;
    let margin = 1.12; // ≈ the scene swing a worst-case alignment adds

    for i in 0..games.len() {
        for j in (i + 1)..games.len() {
            let a = ctx.catalog.get(games[i]).expect("id");
            let b = ctx.catalog.get(games[j]).expect("id");
            let pair = [Workload::game(a, res), Workload::game(b, res)];
            let steady = ctx.server.measure_colocation(&pair);
            let min_member = (0..2)
                .map(|k| steady.game_fps(k).expect("game"))
                .fold(f64::INFINITY, f64::min);
            if min_member < qos {
                continue;
            }
            mean_feasible += 1;
            let ts = ctx.server.measure_timeseries(&pair, 600.0, 2.0);
            let viol = (0..2)
                .map(|k| ts.violation_rate(k, qos))
                .fold(0.0_f64, f64::max);
            if viol > 0.0 {
                dips += 1;
            }
            let conservative_ok = min_member >= qos * margin;
            if conservative_ok {
                conservative_kept += 1;
                if viol > 0.0 {
                    conservative_dips += 1;
                }
            }
            if rows.len() < 8 {
                rows.push((
                    format!("{} + {}", a.name, b.name),
                    min_member,
                    viol,
                    conservative_ok,
                ));
            }
        }
    }

    let mut t = Table::new(["pair", "min mean FPS", "time below QoS", "kept by margin"]);
    for (name, fps, viol, kept) in rows {
        t.row([name, f(fps, 1), pct(viol), kept.to_string()]);
    }
    format!(
        "== Extension 1: temporary QoS violations under dynamic scenes (Sec. 7) ==\n\
         {}\nOf {mean_feasible} mean-feasible pairs, {dips} dip below {qos} FPS at least once\n\
         during a 10-minute window. A {:.0}% headroom margin keeps {conservative_kept} pairs,\n\
         of which {conservative_dips} still dip — conservative profiling trades capacity for\n\
         steadier QoS, exactly the Section 7 trade-off.\n",
        t.render(),
        (margin - 1.0) * 100.0
    )
}

/// Extension 2: cross-hardware-class transfer.
fn heterogeneity(ctx: &ExperimentContext) -> String {
    let plan = ColocationPlan {
        pairs: 120,
        triples: 30,
        quads: 20,
        seed: 0xE2,
    };
    let profiler = Profiler::new(ProfilingConfig::default());

    // Reference-trained model (reuses the context's profiles + campaign).
    let ref_pool = crate::figures::common::rm_training_pool(ctx, 0xF167);
    let ref_data = crate::figures::common::take_dataset(&ref_pool, 1000);
    let ref_model = RegressionModel::train(&ref_data, Algorithm::GradientBoosting, 7);

    let mut t = Table::new([
        "evaluation class",
        "transfer (ref-trained, ref profiles)",
        "retrained on class",
    ]);
    for class in ALL_SERVER_CLASSES {
        let server = Server::of_class(ctx.server.seed ^ 0xC1A5, class);
        let colocs = plan_colocations(&ctx.catalog, &plan);
        let mut measured = measure_colocations(&server, &ctx.catalog, &colocs);
        // Shuffle before splitting so both halves span all colocation sizes.
        use rand::seq::SliceRandom;
        measured.shuffle(&mut gaugur_gamesim::rng::rng_for(plan.seed, &[0xE2_5F]));
        let (train, test) = measured.split_at(measured.len() * 2 / 3);

        // Class-native profiles anchor both labels and the retrained model.
        let class_profiles = ProfileStore::new(profiler.profile_catalog(&server, &ctx.catalog));

        let err_with = |model: &RegressionModel, profiles: &ProfileStore| -> f64 {
            let mut errs = Vec::new();
            for m in test {
                for (i, &(id, res)) in m.members.iter().enumerate() {
                    let others: Vec<_> = m
                        .members
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .map(|(_, &p)| p)
                        .collect();
                    let actual =
                        (m.fps[i] / class_profiles.get(id).solo_fps_at(res)).clamp(0.01, 1.2);
                    let pred = model.predict(&rm_features(
                        profiles.get(id),
                        &profiles.intensities(&others),
                    ));
                    errs.push((pred - actual).abs() / actual);
                }
            }
            errs.iter().sum::<f64>() / errs.len().max(1) as f64
        };

        // Transfer: reference-trained model fed reference-class profiles.
        let transfer = err_with(&ref_model, &ctx.profiles);

        // Retrain: class profiles, class campaign.
        let retrain_samples = gaugur_core::build_rm_samples(&class_profiles, train);
        let retrain_data = gaugur_core::to_dataset(&retrain_samples);
        let retrained = RegressionModel::train(&retrain_data, Algorithm::GradientBoosting, 7);
        let retrain_err = err_with(&retrained, &class_profiles);

        t.row([class.to_string(), pct(transfer), pct(retrain_err)]);
    }
    format!(
        "== Extension 2: server heterogeneity (future work #1) ==\n{}\
         Transfer error grows with hardware distance from the training class;\n\
         the retrained column uses a smaller per-class campaign (~110\n\
         colocations), so it only overtakes transfer once the classes diverge\n\
         enough — on the flagship, retraining wins despite the smaller data.\n",
        t.render()
    )
}

/// Extension 3: profiling-cost reduction via collaborative filtering.
fn cf_profiling(ctx: &ExperimentContext) -> String {
    let profiler = Profiler::new(ProfilingConfig::default());
    let mut t = Table::new(["profiling scheme", "sweep cost", "GBRT test error"]);

    let records = eval_records(ctx, &ctx.test);
    let eval = |profiles: &ProfileStore| -> f64 {
        let samples = gaugur_core::build_rm_samples(profiles, &ctx.train);
        let data = gaugur_core::to_dataset(&samples[..1000.min(samples.len())]);
        let model = RegressionModel::train(&data, Algorithm::GradientBoosting, 7);
        let errs: Vec<f64> = records
            .iter()
            .map(|r| {
                let actual = (r.actual_fps / profiles.get(r.target.0).solo_fps_at(r.target.1))
                    .clamp(0.01, 1.2);
                let pred = model.predict(&rm_features(
                    profiles.get(r.target.0),
                    &profiles.intensities(&r.others),
                ));
                (pred - actual).abs() / actual
            })
            .collect();
        errs.iter().sum::<f64>() / errs.len().max(1) as f64
    };

    t.row([
        "full profiling (baseline)".to_string(),
        pct(1.0),
        pct(eval(&ctx.profiles)),
    ]);
    for (frac, per_game) in [(0.3, 3), (0.2, 2)] {
        let config = CfConfig {
            full_fraction: frac,
            resources_per_game: per_game,
            seed: 0xCF,
            ..CfConfig::default()
        };
        let (profiles, stats) = profile_catalog_cf(&profiler, &ctx.server, &ctx.catalog, &config);
        let store = ProfileStore::new(profiles);
        t.row([
            format!("CF: {:.0}% full + {per_game}/7 resources", frac * 100.0),
            pct(stats.cost_fraction()),
            pct(eval(&store)),
        ]);
    }
    format!(
        "== Extension 3: collaborative-filtering profile completion ==\n{}\
         (Paragon/Quasar-style completion, an explicitly complementary\n\
         technique per the paper's related work.)\n",
        t.render()
    )
}

/// Extension 4: dynamic session stream under three placement policies.
fn dynamic_sessions(ctx: &ExperimentContext) -> String {
    let games = ctx.scheduling_games();
    let gaugur = crate::figures::fig9::build_gaugur(ctx);
    let vbp = VbpPolicy::from_catalog(&ctx.catalog);
    let config = DynamicConfig {
        n_servers: 40,
        arrival_rate: 0.22,
        mean_session_seconds: 600.0,
        duration_seconds: 4000.0,
        qos: 60.0,
        seed: ctx.server.seed ^ 0xD1,
    };

    let rm = GaugurRm(&gaugur);
    let policies: Vec<(&str, Policy<'_>)> = vec![
        ("GAugur(RM) max-predicted-FPS", Policy::MaxPredictedFps(&rm)),
        ("VBP worst-fit", Policy::WorstFitVbp(&vbp)),
        ("first-fit", Policy::FirstFit),
    ];

    let mut t = Table::new([
        "policy",
        "served",
        "rejected",
        "mean FPS",
        "time below QoS",
        "avg colocation",
    ]);
    for (name, policy) in policies {
        let r = simulate_dynamic(
            &ctx.server,
            &ctx.catalog,
            &games,
            Resolution::Fhd1080,
            &policy,
            &config,
        );
        t.row([
            name.to_string(),
            r.sessions_served.to_string(),
            r.sessions_rejected.to_string(),
            f(r.mean_fps, 1),
            pct(r.violation_fraction),
            f(r.mean_colocation_size, 2),
        ]);
    }
    format!(
        "== Extension 4: live session stream (discrete-event, {} s) ==\n{}",
        config.duration_seconds,
        t.render()
    )
}
