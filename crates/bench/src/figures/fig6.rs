//! Figure 6: aggregate intensity vs the sum of individual intensities
//! (Observation 5: intensity is not additive).
//!
//! The paper colocates AirMech Strike and Hobo: Tough Life together with
//! each benchmark and compares the benchmark's holistic slowdown against the
//! sum of the slowdowns each game causes alone.

use crate::context::ExperimentContext;
use crate::table::{f, Table};
use gaugur_gamesim::{Microbenchmark, Resolution, Workload, ALL_RESOURCES};

/// The paper's two probe games.
pub const FIG6_GAMES: [&str; 2] = ["AirMech Strike", "Hobo: Tough Life"];

/// Mean benchmark slowdown − 1 over the pressure sweep, with a set of games
/// colocated (the same intensity measurement the profiler performs).
fn holistic_intensity(
    ctx: &ExperimentContext,
    bench: Microbenchmark,
    games: &[&gaugur_gamesim::Game],
) -> f64 {
    let k = 10;
    let mut sum = 0.0;
    for step in 0..=k {
        let level = step as f64 / k as f64;
        let mut ws = vec![Workload::bench(bench, level)];
        for g in games {
            ws.push(Workload::game(g, Resolution::Fhd1080));
        }
        sum += ctx
            .server
            .measure_colocation(&ws)
            .bench_slowdown(0)
            .expect("bench at 0");
    }
    (sum / (k + 1) as f64 - 1.0).max(0.0)
}

/// Run the Figure 6 comparison.
pub fn run(ctx: &ExperimentContext) -> String {
    let g1 = ctx.catalog.by_name(FIG6_GAMES[0]).expect("game in catalog");
    let g2 = ctx.catalog.by_name(FIG6_GAMES[1]).expect("game in catalog");

    let mut t = Table::new(["resource", "sum of individual", "holistic", "ratio"]);
    let mut any_nonadditive = false;
    for r in ALL_RESOURCES {
        let bench = Microbenchmark::for_resource(r);
        let i1 = holistic_intensity(ctx, bench, &[g1]);
        let i2 = holistic_intensity(ctx, bench, &[g2]);
        let both = holistic_intensity(ctx, bench, &[g1, g2]);
        let sum = i1 + i2;
        let ratio = if sum > 1e-9 { both / sum } else { 1.0 };
        if (ratio - 1.0).abs() > 0.1 {
            any_nonadditive = true;
        }
        t.row([
            r.short_name().to_string(),
            f(sum, 3),
            f(both, 3),
            f(ratio, 2),
        ]);
    }
    format!(
        "== Figure 6: aggregate intensity vs sum of intensities ==\n\
         Games: {} + {}\n{}\nNon-additive resources present: {}\n\
         (Observation 5: the holistic intensity of two colocated games differs\n\
         from the sum of their individual intensities.)\n",
        FIG6_GAMES[0],
        FIG6_GAMES[1],
        t.render(),
        any_nonadditive
    )
}
