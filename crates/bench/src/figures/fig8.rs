//! Figure 8: classification accuracy.
//!
//! * (a) CM accuracy vs training-set size under QoS = 60 FPS for
//!   DTC/GBDT/RF/SVC;
//! * (b) the same under QoS = 50 FPS;
//! * (c) accuracy breakdown by colocation size for GAugur(CM), GAugur(RM)
//!   used as a classifier, Sigmoid and SMiTe.
//!
//! Paper anchors: GBDT@1000 ≈ 95% accuracy; CM beats RM-as-classifier;
//! Sigmoid and SMiTe sit around 80%.

use crate::context::ExperimentContext;
use crate::figures::common::{eval_records, train_baselines, EvalRecord};
use crate::table::{pct, Table};
use gaugur_baselines::InterferencePredictor;
use gaugur_core::features::{cm_features, rm_features};
use gaugur_core::{
    build_cm_samples, to_dataset, Algorithm, ClassificationModel, RegressionModel, TaggedSample,
    ALL_ALGORITHMS,
};
use gaugur_gamesim::rng::rng_for;
use rand::seq::SliceRandom;
use rayon::prelude::*;

/// Training-set sizes swept in Figures 8a/8b.
pub const SAMPLE_SWEEP: [usize; 4] = [400, 600, 800, 1000];

/// One sweep point: `(qos, n_samples, per-algorithm accuracy)`.
pub type SweepPoint = (f64, usize, Vec<(Algorithm, f64)>);

/// Structured results for Figure 8.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Figures 8a/8b data.
    pub sweep: Vec<SweepPoint>,
    /// `(method, [overall, 2-games, 3-games, 4-games])` accuracies at
    /// QoS = 60 — Figure 8c.
    pub by_size: Vec<(String, [f64; 4])>,
}

fn cm_pool(ctx: &ExperimentContext, qos: f64, seed: u64) -> Vec<TaggedSample> {
    let mut pool = build_cm_samples(&ctx.profiles, &ctx.train, &[qos]);
    pool.shuffle(&mut rng_for(seed, &[0x434d_504f, qos as u64]));
    pool
}

/// Judge one record with a CM (including the solo-FPS sanity guard the
/// online predictor applies).
fn cm_judgement(
    ctx: &ExperimentContext,
    model: &ClassificationModel,
    qos: f64,
    r: &EvalRecord,
) -> bool {
    if qos > r.solo_fps {
        return false;
    }
    let profile = ctx.profiles.get(r.target.0);
    let intensities = ctx.profiles.intensities(&r.others);
    model.classify(&cm_features(qos, r.solo_fps, profile, &intensities))
}

impl Fig8 {
    /// Run the full Figure 8 experiment.
    pub fn run(ctx: &ExperimentContext) -> Fig8 {
        let records = eval_records(ctx, &ctx.test);

        // --- 8a/8b: algorithm × sample sweep at two QoS levels -----------
        let mut sweep = Vec::new();
        for &qos in &[60.0, 50.0] {
            let pool = cm_pool(ctx, qos, 0xF18);
            for &n in &SAMPLE_SWEEP {
                let data = to_dataset(&pool[..n.min(pool.len())]);
                let accs: Vec<(Algorithm, f64)> = ALL_ALGORITHMS
                    .par_iter()
                    .map(|&algo| {
                        let model = ClassificationModel::train(&data, algo, 8);
                        let correct = records
                            .iter()
                            .filter(|r| cm_judgement(ctx, &model, qos, r) == (r.actual_fps >= qos))
                            .count();
                        (algo, correct as f64 / records.len() as f64)
                    })
                    .collect();
                sweep.push((qos, n, accs));
            }
        }

        // --- 8c: methodology breakdown at QoS = 60 -----------------------
        let qos = 60.0;
        let pool = cm_pool(ctx, qos, 0xF18);
        let cm_data = to_dataset(&pool[..1000.min(pool.len())]);
        let cm = ClassificationModel::train(&cm_data, Algorithm::GradientBoosting, 8);

        let rm_pool = crate::figures::common::rm_training_pool(ctx, 0xF167);
        let rm_data = crate::figures::common::take_dataset(&rm_pool, 1000);
        let rm = RegressionModel::train(&rm_data, Algorithm::GradientBoosting, 7);

        let (sigmoid, smite) = train_baselines(ctx);

        let judge_rm = |r: &EvalRecord| {
            let profile = ctx.profiles.get(r.target.0);
            let intensities = ctx.profiles.intensities(&r.others);
            rm.predict(&rm_features(profile, &intensities)) * r.solo_fps >= qos
        };
        let judge_deg = |m: &dyn InterferencePredictor, r: &EvalRecord| {
            m.predict_degradation(r.target, &r.others) * r.solo_fps >= qos
        };

        type Judge<'a> = Box<dyn Fn(&EvalRecord) -> bool + 'a>;
        let methods: Vec<(&str, Judge<'_>)> = vec![
            (
                "GAugur(CM)",
                Box::new(|r: &EvalRecord| cm_judgement(ctx, &cm, qos, r)),
            ),
            ("GAugur(RM)", Box::new(judge_rm)),
            ("Sigmoid", Box::new(|r: &EvalRecord| judge_deg(&sigmoid, r))),
            ("SMiTe", Box::new(|r: &EvalRecord| judge_deg(&smite, r))),
        ];

        let mut by_size = Vec::new();
        for (name, judge) in &methods {
            let acc = |size: Option<usize>| -> f64 {
                let subset: Vec<&EvalRecord> = records
                    .iter()
                    .filter(|r| size.is_none_or(|s| r.size == s))
                    .collect();
                let correct = subset
                    .iter()
                    .filter(|r| judge(r) == (r.actual_fps >= qos))
                    .count();
                correct as f64 / subset.len().max(1) as f64
            };
            by_size.push((
                name.to_string(),
                [acc(None), acc(Some(2)), acc(Some(3)), acc(Some(4))],
            ));
        }

        Fig8 { sweep, by_size }
    }

    /// Accuracy of one algorithm at one `(qos, n)` sweep point.
    pub fn accuracy_at(&self, qos: f64, n: usize, algo: Algorithm) -> f64 {
        self.sweep
            .iter()
            .find(|(q, s, _)| *q == qos && *s == n)
            .and_then(|(_, _, v)| v.iter().find(|(a, _)| *a == algo))
            .map(|(_, acc)| *acc)
            .expect("sweep point present")
    }

    /// Overall accuracy of a named methodology in the 8c breakdown.
    pub fn overall_accuracy(&self, method: &str) -> f64 {
        self.by_size
            .iter()
            .find(|(n, _)| n == method)
            .map(|(_, v)| v[0])
            .expect("method present")
    }

    /// Render the three panels as text.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for &qos in &[60.0, 50.0] {
            let panel = if qos == 60.0 { "8a" } else { "8b" };
            out.push_str(&format!(
                "== Figure {panel}: CM accuracy vs training samples (QoS = {qos} FPS) ==\n"
            ));
            let mut t = Table::new(["samples", "DTC", "GBDT", "RF", "SVC"]);
            for (q, n, accs) in &self.sweep {
                if *q != qos {
                    continue;
                }
                let get = |a: Algorithm| {
                    accs.iter()
                        .find(|(x, _)| *x == a)
                        .map(|(_, acc)| pct(*acc))
                        .unwrap_or_default()
                };
                t.row([
                    n.to_string(),
                    get(Algorithm::DecisionTree),
                    get(Algorithm::GradientBoosting),
                    get(Algorithm::RandomForest),
                    get(Algorithm::Svm),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }

        out.push_str("== Figure 8c: accuracy breakdown by colocation size (QoS = 60) ==\n");
        let mut t = Table::new(["method", "overall", "2-games", "3-games", "4-games"]);
        for (name, v) in &self.by_size {
            t.row([name.clone(), pct(v[0]), pct(v[1]), pct(v[2]), pct(v[3])]);
        }
        out.push_str(&t.render());
        out
    }
}
