//! Figure 1: frame rates of colocated game pairs (the paper's motivating
//! example).
//!
//! "Some games such as Ancestors Legacy and Borderland can still run at high
//! frame rates when colocated with each other … Ancestors Legacy can render
//! 105 FPS when colocated with Borderland, but can only run at 57 FPS when
//! colocated with H1Z1." The reproduction measures the same six pairs of the
//! same four titles on the simulated server.

use crate::context::ExperimentContext;
use crate::table::{f, Table};
use gaugur_gamesim::{Resolution, Workload};

/// The four games of the paper's Figure 1, in its pairing order.
pub const FIG1_GAMES: [&str; 4] = [
    "Ancestors Legacy",
    "Borderland2",
    "H1Z1",
    "ARK Survival Evolved",
];

/// Measure the six pairs and render the figure's data.
pub fn run(ctx: &ExperimentContext) -> String {
    let res = Resolution::Fhd1080;
    let pairs: [(usize, usize); 6] = [(0, 1), (0, 2), (1, 2), (3, 0), (3, 1), (3, 2)];

    let mut t = Table::new(["pair", "game", "solo FPS", "colocated FPS", "ratio"]);
    for (a, b) in pairs {
        let ga = ctx.catalog.by_name(FIG1_GAMES[a]).expect("game in catalog");
        let gb = ctx.catalog.by_name(FIG1_GAMES[b]).expect("game in catalog");
        let out = ctx
            .server
            .measure_colocation(&[Workload::game(ga, res), Workload::game(gb, res)]);
        for (idx, g) in [(0, ga), (1, gb)] {
            let solo = ctx.server.measure_solo_fps(g, res);
            let coloc = out.game_fps(idx).expect("game fps");
            t.row([
                format!("{} + {}", FIG1_GAMES[a], FIG1_GAMES[b]),
                g.name.clone(),
                f(solo, 1),
                f(coloc, 1),
                f(coloc / solo, 2),
            ]);
        }
    }
    format!(
        "== Figure 1: FPS of colocated game pairs (1080p) ==\n{}\n\
         Takeaway: the same game's colocated FPS varies strongly with its\n\
         partner — interference depends on WHO shares the server, not just\n\
         how many share it.\n",
        t.render()
    )
}
