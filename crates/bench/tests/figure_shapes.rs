//! Shape tests: the paper's qualitative findings must hold on a reduced
//! experiment context. These are the guardrails that keep future changes to
//! the simulator or the models from silently breaking the reproduction.

use gaugur_bench::figures::{fig10::Fig10, fig7::Fig7, fig8::Fig8, fig9::Fig9};
use gaugur_bench::ExperimentContext;
use gaugur_core::Algorithm;
use std::sync::OnceLock;

/// The full figure pipelines train dozens of models; in unoptimized builds
/// that takes tens of minutes, so these tests only run under `--release`
/// (`cargo test -p gaugur-bench --release --test figure_shapes`).
macro_rules! release_only {
    () => {
        if cfg!(debug_assertions) {
            eprintln!("skipped: figure-shape tests run in release builds only");
            return;
        }
    };
}

/// A mid-size context: big enough for stable orderings, small enough for CI.
fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::with_scale(7, 60, 250, 60, 60, 240))
}

#[test]
fn fig7_gaugur_beats_both_baselines_and_data_helps() {
    release_only!();
    let fig = Fig7::run(ctx());

    // The paper's headline ordering: GAugur(RM) ≪ Sigmoid and SMiTe.
    let gaugur = fig.overall_error("GAugur(RM)");
    let sigmoid = fig.overall_error("Sigmoid");
    let smite = fig.overall_error("SMiTe");
    assert!(gaugur < 0.25, "GAugur error {gaugur}");
    assert!(
        gaugur * 1.3 < sigmoid,
        "GAugur {gaugur} vs Sigmoid {sigmoid}"
    );
    assert!(gaugur * 1.2 < smite, "GAugur {gaugur} vs SMiTe {smite}");

    // More training data must not hurt much (paper Fig 7a trend).
    let at_min = fig.error_at(400, Algorithm::GradientBoosting);
    let at_max = fig.error_at(1000, Algorithm::GradientBoosting);
    assert!(at_max <= at_min * 1.05, "{at_min} → {at_max}");

    // Error CDF dominance at the median.
    let med = |name: &str| {
        fig.cdfs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.quantile(0.5))
            .unwrap()
    };
    assert!(med("GAugur(RM)") < med("Sigmoid"));
    assert!(med("GAugur(RM)") < med("SMiTe"));
}

#[test]
fn fig8_classification_shapes_hold() {
    release_only!();
    let fig = Fig8::run(ctx());

    // GBDT is the best family at full data, at both QoS levels.
    for qos in [60.0, 50.0] {
        let gbdt = fig.accuracy_at(qos, 1000, Algorithm::GradientBoosting);
        assert!(gbdt > 0.85, "GBDT accuracy {gbdt} at QoS {qos}");
        for algo in [Algorithm::DecisionTree, Algorithm::Svm] {
            assert!(
                gbdt + 1e-9 >= fig.accuracy_at(qos, 1000, algo) - 0.02,
                "GBDT should be at least on par with {algo:?} at QoS {qos}"
            );
        }
    }

    // Both GAugur variants beat both baselines overall.
    let cm = fig.overall_accuracy("GAugur(CM)");
    let rm = fig.overall_accuracy("GAugur(RM)");
    let sigmoid = fig.overall_accuracy("Sigmoid");
    assert!(cm > sigmoid, "CM {cm} vs Sigmoid {sigmoid}");
    assert!(rm > sigmoid, "RM {rm} vs Sigmoid {sigmoid}");
}

#[test]
fn fig9_gaugur_identifies_feasible_colocations_better() {
    release_only!();
    let fig = Fig9::run(ctx());

    let cm = fig.confusion("GAugur(CM)");
    let sigmoid = fig.confusion("Sigmoid");
    assert!(cm.accuracy() > 0.85, "CM accuracy {}", cm.accuracy());
    assert!(
        cm.recall() > sigmoid.recall(),
        "CM recall {} vs Sigmoid {}",
        cm.recall(),
        sigmoid.recall()
    );

    // Colocation always beats dedicated servers by a wide margin.
    for qos in [60.0, 50.0] {
        let servers = fig.servers_used(qos, "GAugur(CM)");
        assert!(
            (servers as f64) < 0.8 * fig.no_colocation_servers as f64,
            "QoS {qos}: {servers} servers"
        );
    }
}

#[test]
fn fig10_gaugur_wins_at_every_fleet_size() {
    release_only!();
    let fig = Fig10::run(ctx());
    for &n in &gaugur_bench::figures::fig10::FLEET_SWEEP {
        let g = fig.avg_fps(n, "GAugur(RM)");
        let v = fig.avg_fps(n, "VBP");
        let s = fig.avg_fps(n, "Sigmoid");
        assert!(g > v, "{n} servers: GAugur {g} vs VBP {v}");
        assert!(g > s * 0.98, "{n} servers: GAugur {g} vs Sigmoid {s}");
    }
    // Larger fleets help everyone.
    assert!(fig.avg_fps(3000, "GAugur(RM)") > fig.avg_fps(1500, "GAugur(RM)"));
    assert!(fig.avg_fps(3000, "VBP") > fig.avg_fps(1500, "VBP"));
}
