//! Offline model-training cost (paper Section 3.6: "the overhead of model
//! training is also O(N)"). Compares the paper's four algorithm families on
//! the RM task at a fixed training-set size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaugur_bench::ExperimentContext;
use gaugur_core::{build_rm_samples, to_dataset, RegressionModel, ALL_ALGORITHMS};

fn bench(c: &mut Criterion) {
    let ctx = ExperimentContext::small(1);
    let samples = build_rm_samples(&ctx.profiles, &ctx.train);
    let data = to_dataset(&samples[..samples.len().min(200)]);

    let mut g = c.benchmark_group("rm_training_200_samples");
    g.sample_size(10);
    for algo in ALL_ALGORITHMS {
        g.bench_with_input(
            BenchmarkId::new("train", algo.regression_name()),
            &algo,
            |b, &algo| b.iter(|| RegressionModel::train(std::hint::black_box(&data), algo, 1)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
