//! Placement-daemon throughput over a real localhost socket.
//!
//! The serving story only holds if online placement keeps up with request
//! arrival — the bar is ≥10k placement requests/s through the full stack
//! (TCP framing, JSON decode, memoized prediction, cluster mutation).

use criterion::{criterion_group, criterion_main, Criterion};
use gaugur_bench::ExperimentContext;
use gaugur_core::{GAugur, GAugurConfig, Placement};
use gaugur_gamesim::{GameId, Resolution};
use gaugur_sched::{select_server, select_server_incremental, Policy, ScoreCache};
use gaugur_serve::{
    daemon, load, Client, DaemonConfig, LoadConfig, MemoizedFps, ModelHandle, MonotonicClock,
    PredictionMemo, RequestTrace, SlowMeta, Stage, TraceCollector, WindowedCollector,
};
use std::time::Instant;

/// Deep-fleet placement-path comparison, in-process (no wire): the old
/// per-request full recompute (occupancy clone + stateless scorer) against
/// the incremental scorer with a persistent per-server score cache. Printed
/// as µs/request and a speedup ratio; the cache is what buys the win, so the
/// fleet is pre-loaded near-full where the quadratic cost bites. Returns
/// `(full-recompute µs/req, incremental µs/req)` for the JSON report.
fn deep_fleet_comparison(model: &GAugur) -> (f64, f64) {
    const N_SERVERS: usize = 64;
    const N_GAMES: u32 = 20;
    const REPS: u32 = 400;
    const R: Resolution = Resolution::Fhd1080;

    let handle = ModelHandle::from_model(model.clone());
    let loaded = handle.get();
    let memo = PredictionMemo::new(1 << 16);
    let fps = MemoizedFps {
        model: &loaded,
        memo: &memo,
        qos: 60.0,
    };

    // Three distinct games per server (7 and 14 are coprime spacings mod 20).
    let mut occupancy: Vec<Vec<Placement>> = (0..N_SERVERS)
        .map(|s| {
            [s, s + 7, s + 14]
                .iter()
                .map(|&g| (GameId((g % N_GAMES as usize) as u32), R))
                .collect()
        })
        .collect();

    // One warm-up pass per path so the shared prediction memo is equally hot
    // before either timer starts.
    let run_old = |occupancy: &mut Vec<Vec<Placement>>| {
        for i in 0..REPS {
            let request = (GameId(i % N_GAMES), R);
            let snapshot = occupancy.clone(); // what the daemon used to do
            if let Some(server) = select_server(&snapshot, request, &Policy::MaxPredictedFps(&fps))
            {
                occupancy[server].push(request);
                occupancy[server].pop();
            }
        }
    };
    run_old(&mut occupancy);
    let t0 = Instant::now();
    run_old(&mut occupancy);
    let old_us = t0.elapsed().as_secs_f64() * 1e6 / f64::from(REPS);

    let mut cache = ScoreCache::new(N_SERVERS);
    let run_new = |occupancy: &mut Vec<Vec<Placement>>, cache: &mut ScoreCache| {
        for i in 0..REPS {
            let request = (GameId(i % N_GAMES), R);
            if let Some(sel) = select_server_incremental(&*occupancy, request, &fps, 1, cache) {
                occupancy[sel.server].push(request);
                occupancy[sel.server].pop();
                cache.invalidate(sel.server); // the immediate depart
            }
        }
    };
    run_new(&mut occupancy, &mut cache);
    let t1 = Instant::now();
    run_new(&mut occupancy, &mut cache);
    let new_us = t1.elapsed().as_secs_f64() * 1e6 / f64::from(REPS);

    let (hits, misses) = cache.counts();
    eprintln!(
        "placement_deep_fleet ({N_SERVERS} servers, 3 games each): \
         full recompute {old_us:.1} µs/req, incremental {new_us:.1} µs/req \
         ({:.1}x, score cache {hits} hits / {misses} misses)",
        old_us / new_us.max(1e-9)
    );
    (old_us, new_us)
}

/// Per-request cost of the tracing path, in-process: one full request's
/// worth of stage recording — five stage adds into the request-local
/// accumulator, the sharded histogram merge, and the slow-ring offer. The
/// budget is well under a microsecond; at 10k req/s that keeps tracing below
/// 1% of the request path.
fn trace_overhead_ns() -> f64 {
    const REPS: u64 = 1_000_000;
    let collector = TraceCollector::new(4, 16);
    let t0 = Instant::now();
    for i in 0..REPS {
        let mut trace = RequestTrace::new();
        trace.add(Stage::Decode, 3);
        trace.add(Stage::Predict, 40);
        trace.add(Stage::Place, 60);
        trace.add(Stage::Encode, 5);
        trace.add(Stage::WriteReply, 7 + (i & 63));
        collector.record_request((i % 4) as usize, "place", &trace, SlowMeta::default());
    }
    let ns = t0.elapsed().as_nanos() as f64 / REPS as f64;
    std::hint::black_box(collector.stage_snapshot());
    eprintln!("trace_record: {ns:.0} ns per fully-staged request");
    assert!(
        ns < 1_000.0,
        "tracing blew its overhead budget: {ns:.0} ns/request"
    );
    ns
}

/// Per-request cost of the windowed-telemetry path, in-process: one
/// `record_request` into the recording worker's ring of per-second buckets
/// (request counters, per-stage latency histograms, place tallies). This
/// rides the same hot path as `trace_record`; its budget is ≤100 ns on top.
fn windowed_overhead_ns() -> f64 {
    const REPS: u64 = 1_000_000;
    let collector = WindowedCollector::new(4, 2, std::sync::Arc::new(MonotonicClock::new()));
    let mut trace = RequestTrace::new();
    trace.add(Stage::Decode, 3);
    trace.add(Stage::Predict, 40);
    trace.add(Stage::Place, 60);
    trace.add(Stage::Encode, 5);
    trace.add(Stage::WriteReply, 7);
    let t0 = Instant::now();
    for i in 0..REPS {
        collector.record_request((i % 4) as usize, true, true, &trace);
    }
    let ns = t0.elapsed().as_nanos() as f64 / REPS as f64;
    std::hint::black_box(collector.views());
    eprintln!("windowed_record: {ns:.0} ns per request");
    assert!(
        ns < 500.0,
        "windowed telemetry blew its overhead budget: {ns:.0} ns/request"
    );
    ns
}

/// Cost of rendering the Prometheus exposition from a populated snapshot —
/// the price of one `Metrics` scrape, minus the wire.
fn metrics_render_us(client: &mut Client) -> f64 {
    const REPS: u32 = 200;
    let snap = client.stats().expect("stats scrape");
    let t0 = Instant::now();
    for _ in 0..REPS {
        std::hint::black_box(gaugur_serve::render_prometheus(&snap));
    }
    let us = t0.elapsed().as_secs_f64() * 1e6 / f64::from(REPS);
    eprintln!("metrics_render: {us:.1} µs per exposition");
    us
}

/// Contended `Place` scaling curve: the same closed-loop driver at
/// 1/2/4/8 workers against a single-lock fleet (`shards = 1`) and a
/// sharded one (`shards = 4`). A fresh daemon per cell so score caches
/// and session counters start cold; best-of-`RUNS` per cell to damp
/// scheduler noise. Returns `(workers, shards, req/s)` rows.
fn contended_scaling(model: &GAugur, games: &[GameId]) -> Vec<(usize, usize, f64)> {
    const RUNS: usize = 3;
    let mut curve = Vec::new();
    for &workers in &[1usize, 2, 4, 8] {
        for &shards in &[1usize, 4] {
            let mut best = 0f64;
            for run in 0..RUNS {
                let handle = daemon::start(
                    DaemonConfig {
                        n_servers: 64,
                        workers,
                        shards,
                        print_stats_on_shutdown: false,
                        ..Default::default()
                    },
                    ModelHandle::from_model(model.clone()),
                )
                .expect("daemon starts");
                let report = load::run(&LoadConfig {
                    addr: handle.local_addr().to_string(),
                    seed: 7 + run as u64,
                    connections: workers,
                    requests: 4_000,
                    rate: f64::INFINITY,
                    mean_session_arrivals: 4.0,
                    games: games.to_vec(),
                    resolutions: vec![Resolution::Fhd1080],
                    qos: 60.0,
                    batch: 1,
                    expect_shards: Some(shards),
                    ..Default::default()
                });
                assert_eq!(report.errors, 0, "contended run hit errors");
                assert_eq!(report.shard_violation, None, "{report}");
                best = best.max(report.achieved_rps);
                handle.shutdown();
            }
            eprintln!(
                "contended_place: {workers} worker(s) x {shards} shard(s): \
                 {best:.0} req/s (best of {RUNS})"
            );
            curve.push((workers, shards, best));
        }
    }
    curve
}

/// Write the machine-readable report the CI gate checks for.
#[allow(clippy::too_many_arguments)]
fn emit_report(
    placement_us: (f64, f64),
    single_rps: f64,
    batch_rps: f64,
    p50: u64,
    p99: u64,
    trace_ns: f64,
    windowed_ns: f64,
    render_us: f64,
    curve: &[(usize, usize, f64)],
) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    let (old_us, new_us) = placement_us;
    let mut curve_json = String::new();
    for &(workers, shards, rps) in curve {
        curve_json.push_str(&format!(
            "  \"contended_place_w{workers}_s{shards}_rps\": {rps:.0},\n"
        ));
    }
    let rps_at = |w: usize, s: usize| {
        curve
            .iter()
            .find(|&&(cw, cs, _)| cw == w && cs == s)
            .map_or(0.0, |&(_, _, r)| r)
    };
    let json = format!(
        "{{\n  \"benchmark\": \"serving\",\n  \
         \"placement_full_recompute_us_per_req\": {old_us:.1},\n  \
         \"placement_incremental_us_per_req\": {new_us:.1},\n  \
         \"placement_speedup\": {:.2},\n  \
         \"throughput_rps\": {single_rps:.0},\n  \
         \"throughput_batch16_rps\": {batch_rps:.0},\n  \
         \"latency_p50_us\": {p50},\n  \
         \"latency_p99_us\": {p99},\n\
         {curve_json}  \
         \"contended_speedup_w8_s4_vs_s1\": {:.3},\n  \
         \"trace_record_ns_per_request\": {trace_ns:.0},\n  \
         \"windowed_record_ns_per_request\": {windowed_ns:.0},\n  \
         \"metrics_render_us\": {render_us:.1}\n}}\n",
        old_us / new_us.max(1e-9),
        rps_at(8, 4) / rps_at(8, 1).max(1e-9),
    );
    std::fs::write(path, json).expect("write BENCH_serving.json");
    eprintln!("wrote {path}");
}

fn bench(c: &mut Criterion) {
    let ctx = ExperimentContext::small(1);
    let model =
        GAugur::from_measurements(ctx.profiles.clone(), &ctx.train, GAugurConfig::default());
    let games: Vec<GameId> = ctx.catalog.games().iter().map(|g| g.id).collect();

    let placement_us = deep_fleet_comparison(&model);
    let trace_ns = trace_overhead_ns();
    let windowed_ns = windowed_overhead_ns();
    let curve = contended_scaling(&model, &games);
    let handle = daemon::start(
        DaemonConfig {
            n_servers: 64,
            workers: 4,
            print_stats_on_shutdown: false,
            ..Default::default()
        },
        ModelHandle::from_model(model),
    )
    .expect("daemon starts");
    let addr = handle.local_addr().to_string();

    // Headline number first: a closed-loop driver run, reported as req/s.
    let report = load::run(&LoadConfig {
        addr: addr.clone(),
        seed: 7,
        connections: 4,
        requests: 10_000,
        rate: f64::INFINITY,
        mean_session_arrivals: 4.0,
        games: games.clone(),
        resolutions: vec![Resolution::Fhd1080],
        qos: 60.0,
        batch: 1,
        verify_trace: true,
        ..Default::default()
    });
    eprintln!(
        "serving_throughput: {:.0} placement req/s over localhost \
         (4 connections, p50 {}µs, p99 {}µs, {} errors)",
        report.achieved_rps, report.p50_us, report.p99_us, report.errors
    );
    assert!(report.errors == 0, "load driver hit errors");
    assert_eq!(
        report.trace_violation, None,
        "stage accounting must reconcile after the headline run"
    );

    // Same stream batched 16 arrivals per PlaceBatch frame: fewer round
    // trips and one fleet-lock acquisition per burst.
    let batched = load::run(&LoadConfig {
        addr: addr.clone(),
        seed: 7,
        connections: 4,
        requests: 10_000,
        rate: f64::INFINITY,
        mean_session_arrivals: 4.0,
        games: games.clone(),
        resolutions: vec![Resolution::Fhd1080],
        qos: 60.0,
        batch: 16,
        ..Default::default()
    });
    eprintln!(
        "serving_throughput_batch16: {:.0} arrivals/s over localhost \
         ({:.2}x vs single-place, {} errors)",
        batched.achieved_rps,
        batched.achieved_rps / report.achieved_rps.max(1e-9),
        batched.errors
    );
    assert!(batched.errors == 0, "batched load driver hit errors");

    // Single-connection round trip: one place + one depart per iteration.
    let mut client = Client::connect(&*addr).expect("client connects");
    let render_us = metrics_render_us(&mut client);

    emit_report(
        placement_us,
        report.achieved_rps,
        batched.achieved_rps,
        report.p50_us,
        report.p99_us,
        trace_ns,
        windowed_ns,
        render_us,
        &curve,
    );
    c.bench_function("serve_place_depart_roundtrip", |b| {
        b.iter(|| {
            let placed = client
                .place(games[0], Resolution::Fhd1080)
                .expect("placement succeeds");
            client.depart(placed.session).expect("departure succeeds");
        })
    });

    // Concurrent throughput: one iteration = a 2000-request driver run.
    let mut g = c.benchmark_group("serve_throughput");
    g.sample_size(5);
    g.bench_function("place_2000_over_4_connections", |b| {
        b.iter(|| {
            let r = load::run(&LoadConfig {
                addr: addr.clone(),
                seed: 7,
                connections: 4,
                requests: 2000,
                rate: f64::INFINITY,
                mean_session_arrivals: 4.0,
                games: games.clone(),
                resolutions: vec![Resolution::Fhd1080],
                qos: 60.0,
                batch: 1,
                ..Default::default()
            });
            assert_eq!(r.errors, 0);
            r
        })
    });
    g.finish();

    drop(client);
    handle.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
