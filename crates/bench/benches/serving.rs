//! Placement-daemon throughput over a real localhost socket.
//!
//! The serving story only holds if online placement keeps up with request
//! arrival — the bar is ≥10k placement requests/s through the full stack
//! (TCP framing, JSON decode, memoized prediction, cluster mutation).

use criterion::{criterion_group, criterion_main, Criterion};
use gaugur_bench::ExperimentContext;
use gaugur_core::{GAugur, GAugurConfig};
use gaugur_gamesim::{GameId, Resolution};
use gaugur_serve::{daemon, load, Client, DaemonConfig, LoadConfig, ModelHandle};

fn bench(c: &mut Criterion) {
    let ctx = ExperimentContext::small(1);
    let model =
        GAugur::from_measurements(ctx.profiles.clone(), &ctx.train, GAugurConfig::default());
    let games: Vec<GameId> = ctx.catalog.games().iter().map(|g| g.id).collect();
    let handle = daemon::start(
        DaemonConfig {
            n_servers: 64,
            workers: 4,
            print_stats_on_shutdown: false,
            ..Default::default()
        },
        ModelHandle::from_model(model),
    )
    .expect("daemon starts");
    let addr = handle.local_addr().to_string();

    // Headline number first: a closed-loop driver run, reported as req/s.
    let report = load::run(&LoadConfig {
        addr: addr.clone(),
        seed: 7,
        connections: 4,
        requests: 10_000,
        rate: f64::INFINITY,
        mean_session_arrivals: 4.0,
        games: games.clone(),
        resolutions: vec![Resolution::Fhd1080],
        qos: 60.0,
    });
    eprintln!(
        "serving_throughput: {:.0} placement req/s over localhost \
         (4 connections, p50 {}µs, p99 {}µs, {} errors)",
        report.achieved_rps, report.p50_us, report.p99_us, report.errors
    );
    assert!(report.errors == 0, "load driver hit errors");

    // Single-connection round trip: one place + one depart per iteration.
    let mut client = Client::connect(&*addr).expect("client connects");
    c.bench_function("serve_place_depart_roundtrip", |b| {
        b.iter(|| {
            let placed = client
                .place(games[0], Resolution::Fhd1080)
                .expect("placement succeeds");
            client.depart(placed.session).expect("departure succeeds");
        })
    });

    // Concurrent throughput: one iteration = a 2000-request driver run.
    let mut g = c.benchmark_group("serve_throughput");
    g.sample_size(5);
    g.bench_function("place_2000_over_4_connections", |b| {
        b.iter(|| {
            let r = load::run(&LoadConfig {
                addr: addr.clone(),
                seed: 7,
                connections: 4,
                requests: 2000,
                rate: f64::INFINITY,
                mean_session_arrivals: 4.0,
                games: games.clone(),
                resolutions: vec![Resolution::Fhd1080],
                qos: 60.0,
            });
            assert_eq!(r.errors, 0);
            r
        })
    });
    g.finish();

    drop(client);
    handle.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
