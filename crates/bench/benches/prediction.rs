//! Online prediction latency — the paper's "negligible overhead for online
//! prediction" claim (Sections 1 and 3.6).
//!
//! Gaming requests must be placed the moment they arrive, so the per-request
//! prediction cost is the latency budget that matters.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gaugur_baselines::{DegradationPredictor, SigmoidPredictor, SmitePredictor, VbpPolicy};
use gaugur_bench::ExperimentContext;
use gaugur_core::{GAugur, GAugurConfig, Placement};
use gaugur_gamesim::Resolution;

fn bench(c: &mut Criterion) {
    let ctx = ExperimentContext::small(1);
    let gaugur =
        GAugur::from_measurements(ctx.profiles.clone(), &ctx.train, GAugurConfig::default());
    let sigmoid = SigmoidPredictor::train(ctx.profiles.clone(), &ctx.train);
    let smite = SmitePredictor::train(ctx.profiles.clone(), &ctx.train);
    let vbp = VbpPolicy::from_catalog(&ctx.catalog);

    let res = Resolution::Fhd1080;
    let target: Placement = (ctx.catalog[0].id, res);
    let others: Vec<Placement> = vec![
        (ctx.catalog[1].id, res),
        (ctx.catalog[2].id, res),
        (ctx.catalog[3].id, res),
    ];
    let members: Vec<Placement> = std::iter::once(target).chain(others.clone()).collect();

    let mut g = c.benchmark_group("online_prediction");
    g.bench_function("gaugur_cm_qos", |b| {
        b.iter(|| gaugur.predict_qos(60.0, std::hint::black_box(target), &others))
    });
    g.bench_function("gaugur_rm_degradation", |b| {
        b.iter(|| gaugur.predict_degradation(std::hint::black_box(target), &others))
    });
    g.bench_function("gaugur_cm_full_colocation", |b| {
        b.iter(|| gaugur.colocation_feasible(60.0, std::hint::black_box(&members)))
    });
    g.bench_function("sigmoid_degradation", |b| {
        b.iter(|| sigmoid.predict_degradation(std::hint::black_box(target), &others))
    });
    g.bench_function("smite_degradation", |b| {
        b.iter(|| smite.predict_degradation(std::hint::black_box(target), &others))
    });
    g.bench_function("vbp_feasible", |b| {
        b.iter(|| vbp.feasible(std::hint::black_box(&members)))
    });
    g.finish();

    // Feature assembly alone (shows the model evaluation dominates).
    let mut g = c.benchmark_group("feature_assembly");
    let profile = ctx.profiles.get(target.0);
    g.bench_function("rm_features", |b| {
        b.iter_batched(
            || ctx.profiles.intensities(&others),
            |ints| gaugur_core::features::rm_features(std::hint::black_box(profile), &ints),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
