//! Online prediction latency — the paper's "negligible overhead for online
//! prediction" claim (Sections 1 and 3.6).
//!
//! Gaming requests must be placed the moment they arrive, so the per-request
//! prediction cost is the latency budget that matters.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gaugur_baselines::{InterferencePredictor, SigmoidPredictor, SmitePredictor, VbpPolicy};
use gaugur_bench::ExperimentContext;
use gaugur_core::{DegradationBatch, FeatureBuffer, GAugur, GAugurConfig, Placement};
use gaugur_gamesim::Resolution;
use std::time::Instant;

/// Batch sizes swept by the batched-vs-scalar comparison.
const BATCH_SIZES: [usize; 4] = [1, 8, 32, 128];

/// Time the scalar loop against the fused batch path at each batch size.
/// Returns `(batch size, scalar ns/query, batch ns/query)` rows.
fn batch_vs_scalar(ctx: &ExperimentContext, gaugur: &GAugur) -> Vec<(usize, f64, f64)> {
    let res = Resolution::Fhd1080;
    let ids: Vec<_> = ctx.catalog.games().iter().map(|g| g.id).collect();
    let mut scratch = FeatureBuffer::new();
    let mut out = Vec::new();
    let mut results = Vec::new();
    let mut sink = 0.0f64;
    for &n in &BATCH_SIZES {
        // n queries, each a distinct target under three co-runners — the
        // shape one admit produces when scoring every candidate server.
        let queries: Vec<(Placement, [Placement; 3])> = (0..n)
            .map(|i| {
                let t = (ids[i % ids.len()], res);
                let o = [
                    (ids[(i + 1) % ids.len()], res),
                    (ids[(i + 2) % ids.len()], Resolution::Hd720),
                    (ids[(i + 3) % ids.len()], res),
                ];
                (t, o)
            })
            .collect();
        let mut batch = DegradationBatch::new();
        for (t, o) in &queries {
            batch.push(*t, o);
        }
        let reps = (20_000 / n).max(20);

        for (t, o) in &queries {
            sink += gaugur.predict_degradation(*t, o);
        }
        let t0 = Instant::now();
        for _ in 0..reps {
            for (t, o) in &queries {
                sink += gaugur.predict_degradation(*t, o);
            }
        }
        let scalar_ns = t0.elapsed().as_nanos() as f64 / (reps * n) as f64;

        gaugur.predict_degradation_batch(&batch, &mut scratch, &mut out);
        sink += out[0];
        let t1 = Instant::now();
        for _ in 0..reps {
            gaugur.predict_degradation_batch(&batch, &mut scratch, &mut out);
            sink += out[0];
        }
        let batch_ns = t1.elapsed().as_nanos() as f64 / (reps * n) as f64;

        eprintln!(
            "prediction_batch_vs_scalar n={n}: scalar {scalar_ns:.0} ns/query, \
             batch {batch_ns:.0} ns/query ({:.2}x)",
            scalar_ns / batch_ns.max(1e-9)
        );
        results.push((n, scalar_ns, batch_ns));
    }
    std::hint::black_box(sink);
    results
}

/// Write the machine-readable report the CI gate checks for.
fn emit_report(results: &[(usize, f64, f64)]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_prediction.json");
    let mut rows = String::new();
    for (i, &(n, scalar_ns, batch_ns)) in results.iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            "\n    {{\"batch\": {n}, \"scalar_ns_per_query\": {scalar_ns:.1}, \
             \"batch_ns_per_query\": {batch_ns:.1}, \"speedup\": {:.2}}}",
            scalar_ns / batch_ns.max(1e-9)
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"prediction\",\n  \"unit\": \"ns/query\",\n  \
         \"results\": [{rows}\n  ]\n}}\n"
    );
    std::fs::write(path, json).expect("write BENCH_prediction.json");
    eprintln!("wrote {path}");
}

fn bench(c: &mut Criterion) {
    let ctx = ExperimentContext::small(1);
    let gaugur =
        GAugur::from_measurements(ctx.profiles.clone(), &ctx.train, GAugurConfig::default());
    let sigmoid = SigmoidPredictor::train(ctx.profiles.clone(), &ctx.train);
    let smite = SmitePredictor::train(ctx.profiles.clone(), &ctx.train);
    let vbp = VbpPolicy::from_catalog(&ctx.catalog);

    let res = Resolution::Fhd1080;
    let target: Placement = (ctx.catalog[0].id, res);
    let others: Vec<Placement> = vec![
        (ctx.catalog[1].id, res),
        (ctx.catalog[2].id, res),
        (ctx.catalog[3].id, res),
    ];
    let members: Vec<Placement> = std::iter::once(target).chain(others.clone()).collect();

    emit_report(&batch_vs_scalar(&ctx, &gaugur));

    let mut g = c.benchmark_group("online_prediction");
    g.bench_function("gaugur_cm_qos", |b| {
        b.iter(|| gaugur.predict_qos(60.0, std::hint::black_box(target), &others))
    });
    g.bench_function("gaugur_rm_degradation", |b| {
        b.iter(|| gaugur.predict_degradation(std::hint::black_box(target), &others))
    });
    g.bench_function("gaugur_cm_full_colocation", |b| {
        b.iter(|| gaugur.colocation_feasible(60.0, std::hint::black_box(&members)))
    });
    g.bench_function("sigmoid_degradation", |b| {
        b.iter(|| sigmoid.predict_degradation(std::hint::black_box(target), &others))
    });
    g.bench_function("smite_degradation", |b| {
        b.iter(|| smite.predict_degradation(std::hint::black_box(target), &others))
    });
    g.bench_function("vbp_feasible", |b| {
        b.iter(|| vbp.feasible(std::hint::black_box(&members)))
    });
    g.finish();

    // Feature assembly alone (shows the model evaluation dominates).
    let mut g = c.benchmark_group("feature_assembly");
    let profile = ctx.profiles.get(target.0);
    g.bench_function("rm_features", |b| {
        b.iter_batched(
            || ctx.profiles.intensities(&others),
            |ints| gaugur_core::features::rm_features(std::hint::black_box(profile), &ints),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
