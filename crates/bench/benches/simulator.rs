//! Substrate throughput: how fast the simulated testbed measures
//! colocations. This bounds the cost of every offline campaign (profiling,
//! training measurements, ground-truth evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaugur_gamesim::{GameCatalog, Microbenchmark, Resolution, Resource, Server, Workload};

fn bench(c: &mut Criterion) {
    let server = Server::reference(1);
    let catalog = GameCatalog::generate(42, 8);
    let res = Resolution::Fhd1080;

    let mut g = c.benchmark_group("measure_colocation");
    for n in [1usize, 2, 4, 6] {
        let workloads: Vec<Workload<'_>> = catalog
            .games()
            .iter()
            .take(n)
            .map(|game| Workload::game(game, res))
            .collect();
        g.bench_with_input(BenchmarkId::new("games", n), &n, |b, _| {
            b.iter(|| server.measure_colocation(std::hint::black_box(&workloads)))
        });
    }
    let with_bench = [
        Workload::game(&catalog[0], res),
        Workload::bench(Microbenchmark::for_resource(Resource::GpuBw), 0.5),
    ];
    g.bench_function("game_plus_benchmark", |b| {
        b.iter(|| server.measure_colocation(std::hint::black_box(&with_bench)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
