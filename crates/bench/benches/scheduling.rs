//! Request-assignment throughput (Section 5): request arrival rates in a
//! production cloud-gaming front-end make per-request assignment latency a
//! real constraint.

use criterion::{criterion_group, criterion_main, Criterion};
use gaugur_bench::ExperimentContext;
use gaugur_core::{GAugur, GAugurConfig};
use gaugur_gamesim::{GameId, Resolution};
use gaugur_sched::{
    assign_max_fps, pack_requests, random_requests, ColocationTable, FeasibilityReport, GaugurCm,
    GaugurRm,
};

fn bench(c: &mut Criterion) {
    let ctx = ExperimentContext::small(1);
    let gaugur =
        GAugur::from_measurements(ctx.profiles.clone(), &ctx.train, GAugurConfig::default());
    let ids: Vec<GameId> = ctx.catalog.games().iter().take(8).map(|g| g.id).collect();
    let table = ColocationTable::measure(&ctx.server, &ctx.catalog, &ids, Resolution::Fhd1080, 4);
    let report = FeasibilityReport::build(&table, &GaugurCm(&gaugur), 60.0);
    let requests = random_requests(&ids, 500, 3);
    let stream = requests.as_request_stream(4);

    let mut g = c.benchmark_group("scheduling");
    g.sample_size(20);
    g.bench_function("algorithm1_pack_500_requests", |b| {
        b.iter(|| pack_requests(&table, std::hint::black_box(&report.usable), &requests))
    });
    g.bench_function("max_fps_assign_500_requests_200_servers", |b| {
        b.iter(|| {
            assign_max_fps(
                &GaugurRm(&gaugur),
                Resolution::Fhd1080,
                std::hint::black_box(&stream),
                200,
            )
        })
    });
    g.bench_function("feasibility_report_all_subsets", |b| {
        b.iter(|| FeasibilityReport::build(&table, &GaugurCm(&gaugur), 60.0))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
