//! Feedback-loop overhead: outcome ingestion on the serving path and the
//! warm-start retrain that turns buffered outcomes into a fresh artifact.
//!
//! Ingestion sits on the daemon's request path, so its per-report cost must
//! be negligible next to a placement (~µs); the retrain runs on a background
//! thread, so what matters there is wall time staying in the low seconds at
//! realistic buffer sizes (it bounds how fast the loop can react to drift).

use criterion::{criterion_group, criterion_main, Criterion};
use gaugur_bench::ExperimentContext;
use gaugur_core::{GAugur, GAugurConfig, Placement, SessionOutcome};
use gaugur_gamesim::{GameId, Resolution};
use gaugur_serve::{DriftDetector, Feedback, FeedbackConfig, OutcomeRecord};
use std::time::Instant;

/// Synthesize `n` pair outcomes whose observed FPS sits a fixed factor
/// below the model's prediction — the drifted-environment shape the
/// retrain path exists for.
fn outcomes(gaugur: &GAugur, ids: &[GameId], n: usize) -> Vec<SessionOutcome> {
    let res = Resolution::Fhd1080;
    (0..n)
        .map(|i| {
            let target: Placement = (ids[i % ids.len()], res);
            let others: Vec<Placement> = vec![(ids[(i + 1 + i % 3) % ids.len()], res)];
            let observed_fps = 0.85 * gaugur.predict_fps(target, &others);
            SessionOutcome {
                target,
                others,
                observed_fps,
            }
        })
        .collect()
}

/// Per-report ingestion cost, single-threaded and across 4 threads (the
/// sharded buffer's contention story). Returns `(µs/report single,
/// reports/s over 4 threads)`.
fn ingest_costs(gaugur: &GAugur, ids: &[GameId]) -> (f64, f64) {
    const N: usize = 100_000;
    let records: Vec<(OutcomeRecord, f64)> = outcomes(gaugur, ids, 512)
        .into_iter()
        .map(|o| {
            let predicted = o.observed_fps / 0.85;
            (
                OutcomeRecord {
                    target: o.target,
                    others: o.others,
                    observed_fps: o.observed_fps,
                },
                predicted,
            )
        })
        .collect();

    let feedback = Feedback::new(FeedbackConfig::default());
    let t0 = Instant::now();
    for i in 0..N {
        let (record, predicted) = &records[i % records.len()];
        feedback.ingest(record.clone(), *predicted, false);
    }
    let single_us = t0.elapsed().as_secs_f64() * 1e6 / N as f64;

    let feedback = Feedback::new(FeedbackConfig::default());
    let t1 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..4 {
            let feedback = &feedback;
            let records = &records;
            scope.spawn(move || {
                for i in 0..N / 4 {
                    let (record, predicted) = &records[(t * 31 + i) % records.len()];
                    feedback.ingest(record.clone(), *predicted, false);
                }
            });
        }
    });
    let mt_rps = N as f64 / t1.elapsed().as_secs_f64();
    (single_us, mt_rps)
}

/// Page–Hinkley + windowed-MAE update cost per observation, in ns.
fn drift_observe_ns() -> f64 {
    const N: usize = 1_000_000;
    let mut detector = DriftDetector::new(256, 0.005, 2.5);
    let t0 = Instant::now();
    for i in 0..N {
        detector.observe(0.05 + 0.01 * ((i % 7) as f64));
    }
    let ns = t0.elapsed().as_secs_f64() * 1e9 / N as f64;
    assert!(detector.observations() as usize == N);
    // Drift updates ride the request path (one per fresh outcome report), so
    // they share tracing's overhead budget: well under a microsecond each.
    assert!(
        ns < 1_000.0,
        "drift observation blew its overhead budget: {ns:.1} ns"
    );
    // The post-retrain reset clears the whole state, window included.
    detector.reset();
    assert_eq!(detector.windowed_mae(), 0.0);
    assert_eq!(detector.observations(), 0);
    ns
}

/// Warm-start retrain wall time over a realistic buffer, in ms.
fn retrain_ms(gaugur: &GAugur, ids: &[GameId], samples: usize) -> f64 {
    let data = outcomes(gaugur, ids, samples);
    let t0 = Instant::now();
    let (retrained, report) = gaugur
        .retrain_from_outcomes(&data, 60)
        .expect("synthetic outcomes are usable");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.samples_used, samples);
    assert!(retrained.profiles.len() == gaugur.profiles.len());
    ms
}

/// Write the machine-readable report the CI gate checks for.
fn emit_report(single_us: f64, mt_rps: f64, observe_ns: f64, warm_ms: f64, samples: usize) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_feedback.json");
    let json = format!(
        "{{\n  \"benchmark\": \"feedback\",\n  \
         \"ingest_us_per_report\": {single_us:.2},\n  \
         \"ingest_4threads_reports_per_s\": {mt_rps:.0},\n  \
         \"drift_observe_ns\": {observe_ns:.1},\n  \
         \"retrain_warm_start_ms\": {warm_ms:.1},\n  \
         \"retrain_samples\": {samples}\n}}\n"
    );
    std::fs::write(path, json).expect("write BENCH_feedback.json");
    eprintln!("wrote {path}");
}

fn bench(c: &mut Criterion) {
    let ctx = ExperimentContext::small(1);
    let gaugur =
        GAugur::from_measurements(ctx.profiles.clone(), &ctx.train, GAugurConfig::default());
    let ids: Vec<GameId> = ctx.catalog.games().iter().map(|g| g.id).collect();

    let (single_us, mt_rps) = ingest_costs(&gaugur, &ids);
    eprintln!(
        "feedback_ingest: {single_us:.2} µs/report single-threaded, \
         {mt_rps:.0} reports/s over 4 threads"
    );
    let observe_ns = drift_observe_ns();
    eprintln!("drift_observe: {observe_ns:.1} ns/observation");
    const SAMPLES: usize = 512;
    let warm_ms = retrain_ms(&gaugur, &ids, SAMPLES);
    eprintln!("retrain_warm_start: {warm_ms:.1} ms over {SAMPLES} outcomes (60 extra rounds)");
    emit_report(single_us, mt_rps, observe_ns, warm_ms, SAMPLES);

    let records: Vec<(OutcomeRecord, f64)> = outcomes(&gaugur, &ids, 64)
        .into_iter()
        .map(|o| {
            let predicted = o.observed_fps / 0.85;
            (
                OutcomeRecord {
                    target: o.target,
                    others: o.others,
                    observed_fps: o.observed_fps,
                },
                predicted,
            )
        })
        .collect();
    let feedback = Feedback::new(FeedbackConfig::default());
    let mut i = 0usize;
    c.bench_function("feedback_ingest_report", |b| {
        b.iter(|| {
            let (record, predicted) = &records[i % records.len()];
            i += 1;
            feedback.ingest(record.clone(), *predicted, false)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
