//! Offline contention-profiling cost (paper Section 3.6): profiling is
//! `O(N)` in the number of games, so the per-game cost is the unit that
//! matters. On the paper's physical testbed this is hours of wall-clock
//! game play; on the simulator it is the sweep computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaugur_core::{Profiler, ProfilingConfig};
use gaugur_gamesim::{GameCatalog, Server};

fn bench(c: &mut Criterion) {
    let server = Server::reference(1);
    let catalog = GameCatalog::generate(42, 10);

    let mut g = c.benchmark_group("profiling");
    for k in [5usize, 10, 20] {
        let profiler = Profiler::new(ProfilingConfig {
            granularity: k,
            ..ProfilingConfig::default()
        });
        g.bench_with_input(BenchmarkId::new("profile_game_k", k), &k, |b, _| {
            b.iter(|| profiler.profile_game(&server, std::hint::black_box(&catalog[0])))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
