//! Performance ablations: where the online-prediction time goes, across the
//! paper's four model families (tree ensembles pay per-tree traversal; the
//! SVMs pay per-support-vector kernel evaluations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaugur_bench::ExperimentContext;
use gaugur_core::{build_rm_samples, to_dataset, RegressionModel, ALL_ALGORITHMS};

fn bench(c: &mut Criterion) {
    let ctx = ExperimentContext::small(1);
    let samples = build_rm_samples(&ctx.profiles, &ctx.train);
    let data = to_dataset(&samples[..samples.len().min(200)]);
    let probe = data.features[0].clone();

    let mut g = c.benchmark_group("rm_inference_by_algorithm");
    for algo in ALL_ALGORITHMS {
        let model = RegressionModel::train(&data, algo, 1);
        g.bench_with_input(
            BenchmarkId::new("predict", algo.regression_name()),
            &model,
            |b, model| b.iter(|| model.predict(std::hint::black_box(&probe))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
