//! The SMiTe baseline \[39\], extended to >2 co-runners with Paragon's \[13\]
//! additive-intensity assumption (paper Section 4.1, Eqs. 8–9).
//!
//! SMiTe models the degradation of game A colocated with B, C, … as
//!
//! `δ̃ = Σ_r c_r · sens_r^A · (I_r^B + I_r^C + …) + c₀`
//!
//! where `sens_r^A` is A's sensitivity *score* (degradation under maximum
//! pressure on resource r) and the coefficients `c_r, c₀` are fitted by
//! regression on the training set. Two assumptions break for games: the
//! linearity of the response (Observation 4) and the additivity of intensity
//! (Observation 5) — which is exactly why its error explodes for 4-game
//! colocations in Figure 7b.

use gaugur_core::{InterferencePredictor, MeasuredColocation, Placement, ProfileStore};
use gaugur_gamesim::{ResourceVec, ALL_RESOURCES, NUM_RESOURCES};
use gaugur_ml::{Dataset, LinearRegression, Regressor};
use serde::{Deserialize, Serialize};

/// The fitted SMiTe model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmitePredictor {
    model: LinearRegression,
    profiles: ProfileStore,
}

/// SMiTe's feature vector: per resource, the sensitivity score of the target
/// times the *summed* intensity of the co-runners.
fn smite_features(profiles: &ProfileStore, target: Placement, others: &[Placement]) -> Vec<f64> {
    let profile = profiles.get(target.0);
    let mut summed = ResourceVec::ZERO;
    for &(id, res) in others {
        let i = profiles.get(id).intensity_at(res);
        for r in ALL_RESOURCES {
            summed[r] += i[r];
        }
    }
    let mut f = Vec::with_capacity(NUM_RESOURCES);
    for r in ALL_RESOURCES {
        // Sensitivity score: degradation suffered at maximum pressure
        // (1 − retention ratio), per the SMiTe definition.
        let sens = 1.0 - profile.sensitivity_for(r).at_max_pressure();
        f.push(sens * summed[r]);
    }
    f
}

impl SmitePredictor {
    /// Fit the coefficients by least squares on the training colocations.
    pub fn train(profiles: ProfileStore, measured: &[MeasuredColocation]) -> SmitePredictor {
        let mut data = Dataset::new();
        for m in measured {
            for (i, &(id, res)) in m.members.iter().enumerate() {
                let others: Vec<Placement> = m
                    .members
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &p)| p)
                    .collect();
                let solo = profiles.get(id).solo_fps_at(res);
                let degradation = (m.fps[i] / solo).clamp(0.01, 1.2);
                data.push(smite_features(&profiles, (id, res), &others), degradation);
            }
        }
        SmitePredictor {
            model: LinearRegression::fit(&data),
            profiles,
        }
    }

    /// The fitted per-resource coefficients `c_r` (diagnostics).
    pub fn coefficients(&self) -> &[f64] {
        &self.model.weights
    }

    /// The fitted constant `c₀` (diagnostics).
    pub fn intercept(&self) -> f64 {
        self.model.intercept
    }
}

impl InterferencePredictor for SmitePredictor {
    fn predict_degradation(&self, target: Placement, others: &[Placement]) -> f64 {
        let f = smite_features(&self.profiles, target, others);
        self.model.predict(&f).clamp(0.01, 1.05)
    }

    fn meets_qos(&self, qos: f64, target: Placement, others: &[Placement]) -> bool {
        let solo = self.profiles.get(target.0).solo_fps_at(target.1);
        self.predict_degradation(target, others) * solo >= qos
    }

    fn name(&self) -> &'static str {
        "SMiTe"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugur_core::{
        measure_colocations, plan_colocations, ColocationPlan, Profiler, ProfilingConfig,
    };
    use gaugur_gamesim::{GameCatalog, Resolution, Server};

    fn setup() -> (GameCatalog, SmitePredictor) {
        let server = Server::reference(5);
        let catalog = GameCatalog::generate(42, 10);
        let profiles = gaugur_core::ProfileStore::new(
            Profiler::new(ProfilingConfig::default()).profile_catalog(&server, &catalog),
        );
        let plan = ColocationPlan {
            pairs: 80,
            triples: 20,
            quads: 10,
            seed: 12,
        };
        let measured = measure_colocations(&server, &catalog, &plan_colocations(&catalog, &plan));
        (catalog, SmitePredictor::train(profiles, &measured))
    }

    #[test]
    fn heavier_corunners_predict_more_degradation() {
        let (catalog, model) = setup();
        let res = Resolution::Fhd1080;
        let target = (catalog.by_name("Battlerite").unwrap().id, res);
        let light = [(catalog.by_name("A Walk in the Woods").unwrap().id, res)];
        let heavy = [(catalog.by_name("ARK Survival Evolved").unwrap().id, res)];
        let d_light = model.predict_degradation(target, &light);
        let d_heavy = model.predict_degradation(target, &heavy);
        assert!(
            d_heavy < d_light,
            "heavy co-runner should predict lower ratio: {d_heavy} vs {d_light}"
        );
    }

    #[test]
    fn intensity_is_assumed_additive() {
        // The defining (flawed) extension: doubling the co-runner set scales
        // the summed-intensity features exactly linearly.
        let (catalog, model) = setup();
        let res = Resolution::Fhd1080;
        let target = (catalog[0].id, res);
        let one = [(catalog[1].id, res)];
        let two = [(catalog[1].id, res), (catalog[1].id, res)];
        let f1 = smite_features(&model.profiles, target, &one);
        let f2 = smite_features(&model.profiles, target, &two);
        for (a, b) in f1.iter().zip(&f2) {
            assert!((2.0 * a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn predictions_are_valid_ratios() {
        let (catalog, model) = setup();
        let res = Resolution::Qhd1440;
        for g in catalog.games() {
            let others = [(catalog[3].id, res), (catalog[7].id, res)];
            let d = model.predict_degradation((g.id, res), &others);
            assert!(d > 0.0 && d <= 1.05);
        }
    }

    #[test]
    fn coefficients_are_finite() {
        let (_, model) = setup();
        assert_eq!(model.coefficients().len(), 7);
        assert!(model.coefficients().iter().all(|c| c.is_finite()));
        assert!(model.intercept().is_finite());
    }
}
