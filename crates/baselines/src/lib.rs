//! # gaugur-baselines — the comparator predictors of the GAugur paper
//!
//! Section 4.1 ("Alternative Prediction Approaches") and Section 5 compare
//! GAugur against three prior-art policies, all reproduced here:
//!
//! * [`sigmoid`] — the Sigmoid model of \[6, 21\]: a game's frame rate depends
//!   only on *how many* games it is colocated with,
//!   `FPS(n) = α₁ / (1 + exp(−α₂·n + α₃))`, fitted per game.
//! * [`smite`] — SMiTe \[39\]: a linear model over (sensitivity score ×
//!   intensity) per resource, extended to more than two co-runners with
//!   Paragon's additive-intensity assumption — the assumption Observation 5
//!   shows to be false for games.
//! * [`vbp`] — Vector Bin Packing (Section 2.2): demand-vector feasibility
//!   with no interference modelling at all.
//!
//! Every methodology implements the workspace-wide
//! [`InterferencePredictor`] trait from `gaugur-core`, so the evaluation
//! harness, the scheduler and the serving daemon sweep them uniformly —
//! including through the batched
//! [`predict_degradation_batch`](InterferencePredictor::predict_degradation_batch)
//! hot path (the baselines inherit the scalar-fallback default, which is
//! bit-identical to the per-query path by contract).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod sigmoid;
pub mod smite;
pub mod vbp;

pub use gaugur_core::{DegradationBatch, FeatureBuffer, InterferencePredictor};
pub use sigmoid::SigmoidPredictor;
pub use smite::SmitePredictor;
pub use vbp::VbpPolicy;
