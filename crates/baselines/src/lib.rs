//! # gaugur-baselines — the comparator predictors of the GAugur paper
//!
//! Section 4.1 ("Alternative Prediction Approaches") and Section 5 compare
//! GAugur against three prior-art policies, all reproduced here:
//!
//! * [`sigmoid`] — the Sigmoid model of \[6, 21\]: a game's frame rate depends
//!   only on *how many* games it is colocated with,
//!   `FPS(n) = α₁ / (1 + exp(−α₂·n + α₃))`, fitted per game.
//! * [`smite`] — SMiTe \[39\]: a linear model over (sensitivity score ×
//!   intensity) per resource, extended to more than two co-runners with
//!   Paragon's additive-intensity assumption — the assumption Observation 5
//!   shows to be false for games.
//! * [`vbp`] — Vector Bin Packing (Section 2.2): demand-vector feasibility
//!   with no interference modelling at all.
//!
//! All the degradation-capable methodologies implement
//! [`DegradationPredictor`], so the evaluation harness can sweep them
//! uniformly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod sigmoid;
pub mod smite;
pub mod vbp;

pub use sigmoid::SigmoidPredictor;
pub use smite::SmitePredictor;
pub use vbp::VbpPolicy;

use gaugur_core::Placement;

/// A methodology that predicts the degradation ratio of a target game under
/// colocation (GAugur's RM, Sigmoid and SMiTe all qualify; VBP does not — it
/// only judges feasibility).
pub trait DegradationPredictor {
    /// Predicted degradation ratio (colocated FPS / solo FPS) of `target`
    /// when colocated with `others`.
    fn predict_degradation(&self, target: Placement, others: &[Placement]) -> f64;

    /// Short display name for result tables.
    fn name(&self) -> &'static str;
}
