//! The Vector Bin Packing policy (paper Sections 2.2 and 5).
//!
//! Each game is a resource-demand vector measured when it runs alone; a
//! colocation is judged feasible iff the summed demand fits the server on
//! every dimension. The paper excludes caches from the check ("LLC and
//! GPU-L2 are not included because cache is generally not characterized by
//! utilization") but includes CPU and GPU memory. VBP neither over- nor
//! under-provisions deliberately — it simply cannot see interference, which
//! is why the DDDA / Little Witch Academia example of Section 2.2 passes
//! VBP yet violates QoS in reality.

use gaugur_core::{InterferencePredictor, Placement};
use gaugur_gamesim::{GameCatalog, Resolution, ResourceVec, ALL_RESOURCES};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A game's VBP description: per-resource utilization (caches zeroed) plus
/// the two memory demands.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct VbpEntry {
    utilization: ResourceVec,
    cpu_mem: f64,
    gpu_mem: f64,
}

/// The VBP feasibility policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VbpPolicy {
    entries: HashMap<(u32, u32), VbpEntry>, // (game id, resolution ordinal)
}

fn res_ordinal(res: Resolution) -> u32 {
    match res {
        Resolution::Hd720 => 0,
        Resolution::Hd900 => 1,
        Resolution::Fhd1080 => 2,
        Resolution::Qhd1440 => 3,
    }
}

impl VbpPolicy {
    /// Build the demand table from solo measurements of every game at every
    /// resolution (these are plain counter readings — no interference
    /// modelling involved).
    pub fn from_catalog(catalog: &GameCatalog) -> VbpPolicy {
        let mut entries = HashMap::new();
        for g in catalog.games() {
            for res in gaugur_gamesim::game::ALL_RESOLUTIONS {
                let mut utilization = g.solo_utilization(res);
                // Caches are not characterized by utilization.
                utilization[gaugur_gamesim::Resource::Llc] = 0.0;
                utilization[gaugur_gamesim::Resource::GpuL2] = 0.0;
                let demand = g.solo_demand(res);
                entries.insert(
                    (g.id.0, res_ordinal(res)),
                    VbpEntry {
                        utilization,
                        cpu_mem: demand.cpu_mem,
                        gpu_mem: demand.gpu_mem,
                    },
                );
            }
        }
        VbpPolicy { entries }
    }

    fn entry(&self, p: Placement) -> &VbpEntry {
        self.entries
            .get(&(p.0 .0, res_ordinal(p.1)))
            .expect("placement in demand table")
    }

    /// Whether the summed demand of a colocation fits the unit-capacity
    /// server on every (non-cache) resource dimension plus both memories.
    pub fn feasible(&self, members: &[Placement]) -> bool {
        let mut total = ResourceVec::ZERO;
        let mut cpu_mem = 0.0;
        let mut gpu_mem = 0.0;
        for &p in members {
            let e = self.entry(p);
            for r in ALL_RESOURCES {
                total[r] += e.utilization[r];
            }
            cpu_mem += e.cpu_mem;
            gpu_mem += e.gpu_mem;
        }
        ALL_RESOURCES.iter().all(|&r| total[r] <= 1.0) && cpu_mem <= 1.0 && gpu_mem <= 1.0
    }

    /// Total remaining (non-cache) capacity of a server after placing
    /// `members` — the worst-fit score used by the Section 5.2 VBP
    /// assignment ("the total remaining capacity of all the shared resources
    /// except for LLC and GPU-L2").
    pub fn remaining_capacity(&self, members: &[Placement]) -> f64 {
        let mut total = ResourceVec::ZERO;
        for &p in members {
            let e = self.entry(p);
            for r in ALL_RESOURCES {
                total[r] += e.utilization[r];
            }
        }
        ALL_RESOURCES
            .iter()
            .map(|&r| (1.0 - total[r]).max(0.0))
            .sum()
    }
}

/// VBP as an [`InterferencePredictor`]: it cannot model interference, so its
/// "degradation" is the all-or-nothing demand-fit judgement — 1.0 (no
/// degradation) when the full colocation fits the server's demand vectors,
/// 0.0 when it does not. `meets_qos` is likewise the QoS-oblivious
/// feasibility check of the whole set. This is exactly the approximation
/// the paper criticizes, expressed through the common interface so sweeps
/// can include VBP without special-casing it.
impl InterferencePredictor for VbpPolicy {
    fn predict_degradation(&self, target: Placement, others: &[Placement]) -> f64 {
        let mut members = Vec::with_capacity(others.len() + 1);
        members.extend_from_slice(others);
        members.push(target);
        if self.feasible(&members) {
            1.0
        } else {
            0.0
        }
    }

    fn meets_qos(&self, _qos: f64, target: Placement, others: &[Placement]) -> bool {
        self.predict_degradation(target, others) == 1.0
    }

    fn name(&self) -> &'static str {
        "VBP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugur_gamesim::Resolution;

    fn setup() -> (GameCatalog, VbpPolicy) {
        let catalog = GameCatalog::generate(42, 30);
        let policy = VbpPolicy::from_catalog(&catalog);
        (catalog, policy)
    }

    #[test]
    fn empty_and_single_light_colocations_are_feasible() {
        let (catalog, policy) = setup();
        assert!(policy.feasible(&[]));
        let indie = catalog.by_name("A Walk in the Woods").unwrap();
        assert!(policy.feasible(&[(indie.id, Resolution::Hd720)]));
    }

    #[test]
    fn stacked_heavy_games_become_infeasible() {
        let (catalog, policy) = setup();
        let heavy: Vec<Placement> = catalog
            .games()
            .iter()
            .filter(|g| g.genre == gaugur_gamesim::Genre::AaaOpenWorld)
            .map(|g| (g.id, Resolution::Qhd1440))
            .collect();
        assert!(heavy.len() >= 2);
        // Enough AAA games at max resolution must exceed some dimension.
        assert!(!policy.feasible(&heavy));
    }

    #[test]
    fn feasibility_is_monotone_in_set_inclusion() {
        let (catalog, policy) = setup();
        let res = Resolution::Fhd1080;
        let a = (catalog[0].id, res);
        let b = (catalog[1].id, res);
        let c = (catalog[2].id, res);
        if !policy.feasible(&[a, b]) {
            assert!(
                !policy.feasible(&[a, b, c]),
                "superset cannot become feasible"
            );
        }
    }

    #[test]
    fn remaining_capacity_decreases_with_load() {
        let (catalog, policy) = setup();
        let res = Resolution::Fhd1080;
        let empty = policy.remaining_capacity(&[]);
        let one = policy.remaining_capacity(&[(catalog[0].id, res)]);
        let two = policy.remaining_capacity(&[(catalog[0].id, res), (catalog[4].id, res)]);
        assert_eq!(empty, 7.0);
        assert!(one < empty);
        assert!(two < one);
    }

    #[test]
    fn caches_are_excluded_from_the_check() {
        let (catalog, policy) = setup();
        let e = policy.entry((catalog[0].id, Resolution::Fhd1080));
        assert_eq!(e.utilization[gaugur_gamesim::Resource::Llc], 0.0);
        assert_eq!(e.utilization[gaugur_gamesim::Resource::GpuL2], 0.0);
    }

    #[test]
    fn trait_degradation_is_the_feasibility_indicator() {
        let (catalog, policy) = setup();
        let indie = catalog.by_name("A Walk in the Woods").unwrap();
        let solo = (indie.id, Resolution::Hd720);
        assert_eq!(policy.predict_degradation(solo, &[]), 1.0);
        assert!(
            policy.meets_qos(1e9, solo, &[]),
            "VBP ignores the QoS floor"
        );
        let heavy: Vec<Placement> = catalog
            .games()
            .iter()
            .filter(|g| g.genre == gaugur_gamesim::Genre::AaaOpenWorld)
            .map(|g| (g.id, Resolution::Qhd1440))
            .collect();
        assert_eq!(policy.predict_degradation(heavy[0], &heavy[1..]), 0.0);
        assert!(!policy.meets_qos(0.0, heavy[0], &heavy[1..]));
        assert_eq!(policy.name(), "VBP");
    }

    #[test]
    fn higher_resolution_demands_more_gpu() {
        let (catalog, policy) = setup();
        let lo = policy.entry((catalog[5].id, Resolution::Hd720)).utilization
            [gaugur_gamesim::Resource::GpuCore];
        let hi = policy
            .entry((catalog[5].id, Resolution::Qhd1440))
            .utilization[gaugur_gamesim::Resource::GpuCore];
        assert!(hi > lo);
    }
}
