//! The Sigmoid baseline of prior work \[6, 21\] (paper Section 4.1).
//!
//! "This approach assumes the performance degradation of a game is only
//! dependent on the number of games colocated. The frame rate of game A when
//! colocated with n games is modeled by α₁ / (1 + e^{−α₂·n + α₃})." The
//! parameters are fitted per game from the training colocations that contain
//! it. Because it ignores *which* games share the server, its error is large
//! whenever co-runner identity matters — which Figure 1 of the paper shows
//! is the norm.

use gaugur_core::{InterferencePredictor, MeasuredColocation, Placement, ProfileStore};
use gaugur_gamesim::GameId;
use gaugur_ml::curvefit::SigmoidFit;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-game sigmoid frame-rate model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SigmoidPredictor {
    fits: HashMap<GameId, SigmoidFit>,
    /// Fallback over all games, on degradation ratios, for games that never
    /// appear in the training colocations.
    global_degradation: SigmoidFit,
    profiles: ProfileStore,
}

impl SigmoidPredictor {
    /// Fit per-game sigmoids on `(n co-runners, measured FPS)` points from
    /// the training colocations, exactly as the paper's implementation
    /// derives them.
    pub fn train(profiles: ProfileStore, measured: &[MeasuredColocation]) -> SigmoidPredictor {
        let mut per_game: HashMap<GameId, Vec<(f64, f64)>> = HashMap::new();
        let mut global: Vec<(f64, f64)> = Vec::new();
        for m in measured {
            let n = (m.size() - 1) as f64;
            for (i, &(id, res)) in m.members.iter().enumerate() {
                per_game.entry(id).or_default().push((n, m.fps[i]));
                let solo = profiles.get(id).solo_fps_at(res);
                global.push((n, (m.fps[i] / solo).clamp(0.01, 1.2)));
            }
        }
        let fits = per_game
            .into_iter()
            .map(|(id, pts)| (id, SigmoidFit::fit(&pts)))
            .collect();
        let global_degradation = SigmoidFit::fit(&global);
        SigmoidPredictor {
            fits,
            global_degradation,
            profiles,
        }
    }

    /// Predicted FPS of a game colocated with `n` other games.
    pub fn predict_fps(&self, target: Placement, n_corunners: usize) -> f64 {
        let n = n_corunners as f64;
        match self.fits.get(&target.0) {
            Some(fit) => fit.eval(n).max(1.0),
            None => {
                let solo = self.profiles.get(target.0).solo_fps_at(target.1);
                (self.global_degradation.eval(n).clamp(0.01, 1.0) * solo).max(1.0)
            }
        }
    }
}

impl InterferencePredictor for SigmoidPredictor {
    fn predict_degradation(&self, target: Placement, others: &[Placement]) -> f64 {
        let solo = self.profiles.get(target.0).solo_fps_at(target.1);
        (self.predict_fps(target, others.len()) / solo).clamp(0.01, 1.05)
    }

    fn meets_qos(&self, qos: f64, target: Placement, others: &[Placement]) -> bool {
        let solo = self.profiles.get(target.0).solo_fps_at(target.1);
        self.predict_degradation(target, others) * solo >= qos
    }

    fn name(&self) -> &'static str {
        "Sigmoid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugur_core::{
        measure_colocations, plan_colocations, ColocationPlan, Profiler, ProfilingConfig,
    };
    use gaugur_gamesim::{GameCatalog, Resolution, Server};

    fn setup() -> (GameCatalog, SigmoidPredictor) {
        let server = Server::reference(5);
        let catalog = GameCatalog::generate(42, 10);
        let profiles = gaugur_core::ProfileStore::new(
            Profiler::new(ProfilingConfig::default()).profile_catalog(&server, &catalog),
        );
        let plan = ColocationPlan {
            pairs: 60,
            triples: 20,
            quads: 10,
            seed: 6,
        };
        let measured = measure_colocations(&server, &catalog, &plan_colocations(&catalog, &plan));
        (catalog, SigmoidPredictor::train(profiles, &measured))
    }

    #[test]
    fn more_corunners_predict_lower_fps() {
        let (catalog, model) = setup();
        let res = Resolution::Fhd1080;
        for g in catalog.games().iter().take(5) {
            let f1 = model.predict_fps((g.id, res), 1);
            let f3 = model.predict_fps((g.id, res), 3);
            assert!(
                f3 <= f1 * 1.05,
                "{}: fps should not rise with more co-runners ({f1} → {f3})",
                g.name
            );
        }
    }

    #[test]
    fn prediction_ignores_corunner_identity() {
        let (catalog, model) = setup();
        let res = Resolution::Fhd1080;
        let target = (catalog[0].id, res);
        let light = [(catalog[1].id, res)];
        let heavy = [(catalog.by_name("ARK Survival Evolved").unwrap().id, res)];
        // The defining (flawed) property of the Sigmoid baseline.
        assert_eq!(
            model.predict_degradation(target, &light),
            model.predict_degradation(target, &heavy)
        );
    }

    #[test]
    fn degradation_is_a_valid_ratio() {
        let (catalog, model) = setup();
        let res = Resolution::Hd720;
        for g in catalog.games() {
            for n in 1..=4 {
                let others = vec![(catalog[0].id, res); n];
                let d = model.predict_degradation((g.id, res), &others);
                assert!(d > 0.0 && d <= 1.05, "{}: {d}", g.name);
            }
        }
    }

    #[test]
    fn batched_trait_path_matches_scalar_bit_for_bit() {
        let (catalog, model) = setup();
        let res = Resolution::Fhd1080;
        let mut batch = gaugur_core::DegradationBatch::new();
        let mut expected = Vec::new();
        for w in catalog.games().windows(3) {
            let target = (w[0].id, res);
            let others = [(w[1].id, res), (w[2].id, Resolution::Hd720)];
            batch.push(target, &others);
            expected.push(model.predict_degradation(target, &others));
        }
        let mut scratch = gaugur_core::FeatureBuffer::new();
        let mut out = Vec::new();
        model.predict_degradation_batch(&batch, &mut scratch, &mut out);
        assert_eq!(out.len(), expected.len());
        for (a, b) in out.iter().zip(&expected) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn meets_qos_agrees_with_predicted_fps() {
        let (catalog, model) = setup();
        let res = Resolution::Fhd1080;
        let target = (catalog[0].id, res);
        let others = [(catalog[1].id, res), (catalog[2].id, res)];
        let solo = model.profiles.get(target.0).solo_fps_at(target.1);
        let fps = model.predict_degradation(target, &others) * solo;
        assert!(model.meets_qos(fps - 1.0, target, &others));
        assert!(!model.meets_qos(fps + 1.0, target, &others));
    }

    #[test]
    fn unseen_game_falls_back_to_global_fit() {
        let server = Server::reference(5);
        let catalog = GameCatalog::generate(42, 10);
        let profiles = gaugur_core::ProfileStore::new(
            Profiler::new(ProfilingConfig::default()).profile_catalog(&server, &catalog),
        );
        // Train only on colocations of games 0..4; game 9 is unseen.
        let plan = ColocationPlan {
            pairs: 20,
            triples: 0,
            quads: 0,
            seed: 8,
        };
        let small = GameCatalog::generate(42, 5);
        let measured = measure_colocations(&server, &small, &plan_colocations(&small, &plan));
        let model = SigmoidPredictor::train(profiles, &measured);
        let res = Resolution::Fhd1080;
        let d = model.predict_degradation((catalog[9].id, res), &[(catalog[0].id, res)]);
        assert!(d > 0.0 && d <= 1.05);
    }
}
