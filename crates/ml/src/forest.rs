//! Random forests: bagged CART trees with per-split feature subsampling,
//! trained in parallel (Rayon).

use crate::data::Dataset;
use crate::tree::{Tree, TreeParams};
use crate::{Classifier, Regressor};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters (the `max_features`/`seed` fields are filled per
    /// tree by the ensemble).
    pub tree: TreeParams,
    /// Features sampled per split; `None` uses `√width` (classification) or
    /// `width / 3` (regression).
    pub max_features: Option<usize>,
    /// Master seed for bootstraps and feature subsampling.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 100,
            tree: TreeParams {
                max_depth: 12,
                min_samples_split: 4,
                min_samples_leaf: 1,
                max_features: None,
                seed: 0,
            },
            max_features: None,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Forest {
    trees: Vec<Tree>,
}

impl Forest {
    fn fit(data: &Dataset, params: &ForestParams, default_features: usize) -> Forest {
        assert!(!data.is_empty(), "cannot fit a forest on an empty dataset");
        assert!(params.n_trees > 0, "forest needs at least one tree");
        let max_features = params
            .max_features
            .unwrap_or(default_features)
            .clamp(1, data.width().max(1));
        let n = data.len();
        let trees = (0..params.n_trees)
            .into_par_iter()
            .map(|t| {
                let mut rng = ChaCha8Rng::seed_from_u64(
                    params.seed ^ (0x466f_7265_7374 /* "Forest" */ + t as u64 * 0x9E37_79B9),
                );
                let boot: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                let sample = data.subset(&boot);
                let tree_params = TreeParams {
                    max_features: Some(max_features),
                    seed: rng.gen(),
                    ..params.tree
                };
                Tree::fit(&sample, &tree_params)
            })
            .collect();
        Forest { trees }
    }

    fn mean_prediction(&self, x: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Batched tree-mean: sum per row in tree order, then one division —
    /// the same float operation order as [`Forest::mean_prediction`].
    fn mean_prediction_batch(&self, rows: crate::batch::Rows<'_>, out: &mut Vec<f64>) {
        crate::batch::reset_out(out, rows.len());
        crate::batch::sum_trees_into(&self.trees, rows, out);
        let n = self.trees.len() as f64;
        for v in out.iter_mut() {
            *v /= n;
        }
    }
}

/// Random-forest regressor (the paper's RF for the regression model).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForestRegressor {
    forest: Forest,
    /// The hyperparameters used for training.
    pub params: ForestParams,
}

impl RandomForestRegressor {
    /// Fit on a dataset.
    pub fn fit(data: &Dataset, params: ForestParams) -> RandomForestRegressor {
        let default_features = (data.width() / 3).max(1);
        RandomForestRegressor {
            forest: Forest::fit(data, &params, default_features),
            params,
        }
    }

    /// Number of trees (diagnostics).
    pub fn n_trees(&self) -> usize {
        self.forest.trees.len()
    }

    /// Batched prediction into a reusable output buffer; bit-identical to
    /// calling [`Regressor::predict`] per row.
    pub fn predict_batch(&self, rows: crate::batch::Rows<'_>, out: &mut Vec<f64>) {
        self.forest.mean_prediction_batch(rows, out);
    }
}

impl Regressor for RandomForestRegressor {
    fn predict(&self, x: &[f64]) -> f64 {
        self.forest.mean_prediction(x)
    }

    fn predict_rows(&self, rows: crate::batch::Rows<'_>, out: &mut Vec<f64>) {
        self.predict_batch(rows, out);
    }
}

/// Random-forest classifier (the paper's RF for the classification model).
/// Targets must be `0.0` / `1.0`; the score is the fraction of trees voting
/// positive (soft voting over leaf probabilities).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForestClassifier {
    forest: Forest,
    /// The hyperparameters used for training.
    pub params: ForestParams,
}

impl RandomForestClassifier {
    /// Fit on a dataset with `{0, 1}` targets.
    pub fn fit(data: &Dataset, params: ForestParams) -> RandomForestClassifier {
        debug_assert!(
            data.targets.iter().all(|&y| y == 0.0 || y == 1.0),
            "classification targets must be 0/1"
        );
        let default_features = (data.width() as f64).sqrt().round() as usize;
        RandomForestClassifier {
            forest: Forest::fit(data, &params, default_features.max(1)),
            params,
        }
    }

    /// Batched scoring into a reusable output buffer; bit-identical to
    /// calling [`Classifier::score`] per row.
    pub fn score_batch(&self, rows: crate::batch::Rows<'_>, out: &mut Vec<f64>) {
        self.forest.mean_prediction_batch(rows, out);
    }
}

impl Classifier for RandomForestClassifier {
    fn score(&self, x: &[f64]) -> f64 {
        self.forest.mean_prediction(x)
    }

    fn score_rows(&self, rows: crate::batch::Rows<'_>, out: &mut Vec<f64>) {
        self.score_batch(rows, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_quadratic(n: usize) -> Dataset {
        // y = x² with a deterministic pseudo-noise term.
        let features: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let targets = features
            .iter()
            .enumerate()
            .map(|(i, f)| f[0] * f[0] + 0.01 * (((i * 31) % 7) as f64 - 3.0))
            .collect();
        Dataset::from_parts(features, targets)
    }

    #[test]
    fn regressor_fits_a_quadratic() {
        let data = noisy_quadratic(200);
        let rf = RandomForestRegressor::fit(
            &data,
            ForestParams {
                n_trees: 30,
                seed: 1,
                ..ForestParams::default()
            },
        );
        for &x in &[0.1, 0.5, 0.9] {
            let p = rf.predict(&[x]);
            assert!((p - x * x).abs() < 0.08, "at {x}: {p}");
        }
        assert_eq!(rf.n_trees(), 30);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let data = noisy_quadratic(100);
        let p = ForestParams {
            n_trees: 10,
            seed: 5,
            ..ForestParams::default()
        };
        let a = RandomForestRegressor::fit(&data, p);
        let b = RandomForestRegressor::fit(&data, p);
        assert_eq!(a.predict(&[0.3]), b.predict(&[0.3]));
        let c = RandomForestRegressor::fit(&data, ForestParams { seed: 6, ..p });
        assert_ne!(a.predict(&[0.3]), c.predict(&[0.3]));
    }

    #[test]
    fn classifier_separates_two_blobs() {
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for i in 0..100 {
            let jitter = ((i * 13) % 10) as f64 / 50.0;
            if i % 2 == 0 {
                features.push(vec![0.2 + jitter, 0.2 - jitter]);
                targets.push(0.0);
            } else {
                features.push(vec![0.8 + jitter, 0.8 - jitter]);
                targets.push(1.0);
            }
        }
        let data = Dataset::from_parts(features, targets);
        let rf = RandomForestClassifier::fit(
            &data,
            ForestParams {
                n_trees: 20,
                seed: 2,
                ..ForestParams::default()
            },
        );
        assert!(!rf.classify(&[0.15, 0.2]));
        assert!(rf.classify(&[0.85, 0.8]));
        assert!(rf.score(&[0.85, 0.8]) > 0.8);
    }

    #[test]
    fn ensemble_beats_its_own_single_tree_on_noise() {
        // Same data, same per-tree settings: averaging 30 bootstrapped trees
        // must not be worse than one of them on held-out points.
        let train = noisy_quadratic(160);
        let params = ForestParams {
            n_trees: 30,
            seed: 3,
            ..ForestParams::default()
        };
        let forest = RandomForestRegressor::fit(&train, params);
        let single = RandomForestRegressor::fit(
            &train,
            ForestParams {
                n_trees: 1,
                ..params
            },
        );
        let err = |m: &RandomForestRegressor| -> f64 {
            (0..50)
                .map(|i| {
                    let x = i as f64 / 50.0 + 0.003; // off-grid probes
                    (m.predict(&[x]) - x * x).abs()
                })
                .sum()
        };
        assert!(err(&forest) <= err(&single) * 1.05);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let data = noisy_quadratic(10);
        let _ = RandomForestRegressor::fit(
            &data,
            ForestParams {
                n_trees: 0,
                ..ForestParams::default()
            },
        );
    }
}
