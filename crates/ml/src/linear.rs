//! Ordinary / ridge least squares via the normal equations.
//!
//! Used by the SMiTe baseline (to fit its per-resource coefficients by
//! regression, Eq. 8/9 of the paper) and by the resolution model's Eq. 2
//! fits.

use crate::data::Dataset;
use crate::Regressor;
use serde::{Deserialize, Serialize};

/// A fitted linear model `y = w·x + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearRegression {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub intercept: f64,
}

impl LinearRegression {
    /// Ordinary least squares (with a tiny ridge term for numerical safety).
    pub fn fit(data: &Dataset) -> LinearRegression {
        LinearRegression::fit_ridge(data, 1e-9)
    }

    /// Ridge regression with penalty `lambda` on the weights (not the
    /// intercept).
    pub fn fit_ridge(data: &Dataset, lambda: f64) -> LinearRegression {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let n = data.len();
        let w = data.width();
        // Augmented design matrix [X | 1]; solve (AᵀA + λI')θ = Aᵀy.
        let dim = w + 1;
        let mut ata = vec![vec![0.0_f64; dim]; dim];
        let mut aty = vec![0.0_f64; dim];
        for (x, y) in data.iter() {
            for i in 0..dim {
                let xi = if i < w { x[i] } else { 1.0 };
                aty[i] += xi * y;
                for j in i..dim {
                    let xj = if j < w { x[j] } else { 1.0 };
                    ata[i][j] += xi * xj;
                }
            }
        }
        #[allow(clippy::needless_range_loop)]
        for i in 0..dim {
            for j in 0..i {
                ata[i][j] = ata[j][i];
            }
        }
        for (i, row) in ata.iter_mut().enumerate().take(w) {
            row[i] += lambda * n as f64;
        }
        let theta = solve(ata, aty);
        LinearRegression {
            weights: theta[..w].to_vec(),
            intercept: theta[w],
        }
    }
}

impl Regressor for LinearRegression {
    fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature width mismatch");
        self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + self.intercept
    }
}

/// Solve a symmetric positive-definite-ish system by Gaussian elimination
/// with partial pivoting.
pub(crate) fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty system");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-12 {
            continue; // singular direction; leave at zero
        }
        for row in col + 1..n {
            let factor = a[row][col] / diag;
            if factor == 0.0 {
                continue;
            }
            // Indexing both the pivot row and the target row keeps the
            // elimination readable; a split_at_mut dance would not.
            #[allow(clippy::needless_range_loop)]
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut sum = b[col];
        for k in col + 1..n {
            sum -= a[col][k] * x[k];
        }
        x[col] = if a[col][col].abs() < 1e-12 {
            0.0
        } else {
            sum / a[col][col]
        };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_coefficients() {
        let features: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i * i % 17) as f64])
            .collect();
        let targets: Vec<f64> = features
            .iter()
            .map(|f| 3.0 * f[0] - 2.0 * f[1] + 5.0)
            .collect();
        let data = Dataset::from_parts(features, targets);
        let m = LinearRegression::fit(&data);
        assert!((m.weights[0] - 3.0).abs() < 1e-6);
        assert!((m.weights[1] + 2.0).abs() < 1e-6);
        assert!((m.intercept - 5.0).abs() < 1e-5);
        assert!((m.predict(&[10.0, 4.0]) - (30.0 - 8.0 + 5.0)).abs() < 1e-5);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let features: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = features.iter().map(|f| 2.0 * f[0]).collect();
        let data = Dataset::from_parts(features, targets);
        let ols = LinearRegression::fit(&data);
        let ridge = LinearRegression::fit_ridge(&data, 10.0);
        assert!(ridge.weights[0].abs() < ols.weights[0].abs());
    }

    #[test]
    fn collinear_features_do_not_explode() {
        // Second feature is an exact copy of the first.
        let features: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, i as f64]).collect();
        let targets: Vec<f64> = (0..30).map(|i| 4.0 * i as f64 + 1.0).collect();
        let data = Dataset::from_parts(features, targets);
        let m = LinearRegression::fit_ridge(&data, 1e-6);
        let p = m.predict(&[10.0, 10.0]);
        assert!((p - 41.0).abs() < 0.1, "{p}");
        assert!(m.weights.iter().all(|w| w.is_finite()));
    }

    #[test]
    fn constant_target_yields_intercept_only() {
        let features: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let data = Dataset::from_parts(features, vec![7.0; 10]);
        let m = LinearRegression::fit(&data);
        assert!(m.weights[0].abs() < 1e-6);
        assert!((m.intercept - 7.0).abs() < 1e-6);
    }
}
