//! Nonlinear least squares for the Sigmoid baseline (paper Section 4.1).
//!
//! The prior work \[6, 21\] models the frame rate of game A colocated with `n`
//! other games as `α₁ / (1 + exp(−α₂·n + α₃))`. This module fits those three
//! parameters to observed `(n, fps)` pairs: `α₁` is solved in closed form
//! (it enters linearly), `(α₂, α₃)` by a deterministic coarse grid search
//! followed by pattern-search refinement.

use serde::{Deserialize, Serialize};

/// A fitted 3-parameter sigmoid `f(n) = α₁ / (1 + exp(−α₂·n + α₃))`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SigmoidFit {
    /// Scale α₁.
    pub a1: f64,
    /// Slope α₂.
    pub a2: f64,
    /// Offset α₃.
    pub a3: f64,
}

impl SigmoidFit {
    /// Evaluate the fitted curve at `n`.
    pub fn eval(&self, n: f64) -> f64 {
        self.a1 / (1.0 + (-self.a2 * n + self.a3).exp())
    }

    /// Fit to `(n, value)` observations by least squares. Returns a flat
    /// mean fit when fewer than two distinct `n` values exist.
    pub fn fit(points: &[(f64, f64)]) -> SigmoidFit {
        assert!(!points.is_empty(), "cannot fit a sigmoid to no points");
        let distinct = {
            let mut ns: Vec<f64> = points.iter().map(|p| p.0).collect();
            ns.sort_by(f64::total_cmp);
            ns.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
            ns.len()
        };
        let mean = points.iter().map(|p| p.1).sum::<f64>() / points.len() as f64;
        if distinct < 2 {
            // Degenerate: a flat curve through the mean (α₃ = −700 drives
            // the exponential to exactly 0, so eval(n) ≡ α₁).
            return SigmoidFit {
                a1: mean,
                a2: 0.0,
                a3: -700.0,
            };
        }

        // Given (a2, a3), the optimal a1 minimizes Σ (y − a1·g(n))².
        let best_a1 = |a2: f64, a3: f64| -> (f64, f64) {
            let mut num = 0.0;
            let mut den = 0.0;
            for &(n, y) in points {
                let g = 1.0 / (1.0 + (-a2 * n + a3).exp());
                num += y * g;
                den += g * g;
            }
            let a1 = if den > 1e-12 { num / den } else { mean };
            let sse: f64 = points
                .iter()
                .map(|&(n, y)| {
                    let g = 1.0 / (1.0 + (-a2 * n + a3).exp());
                    let e = y - a1 * g;
                    e * e
                })
                .sum();
            (a1, sse)
        };

        // Coarse grid.
        let mut best = (0.0, 0.0, f64::INFINITY); // (a2, a3, sse)
        for i in -20..=20 {
            let a2 = i as f64 * 0.25;
            for j in -20..=20 {
                let a3 = j as f64 * 0.5;
                let (_, sse) = best_a1(a2, a3);
                if sse < best.2 {
                    best = (a2, a3, sse);
                }
            }
        }

        // Pattern-search refinement.
        let (mut a2, mut a3, mut sse) = best;
        let mut step = 0.25;
        while step > 1e-5 {
            let mut improved = false;
            for (d2, d3) in [(step, 0.0), (-step, 0.0), (0.0, step), (0.0, -step)] {
                let (_, s) = best_a1(a2 + d2, a3 + d3);
                if s < sse - 1e-15 {
                    a2 += d2;
                    a3 += d3;
                    sse = s;
                    improved = true;
                }
            }
            if !improved {
                step *= 0.5;
            }
        }

        let (a1, _) = best_a1(a2, a3);
        SigmoidFit { a1, a2, a3 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_a_known_sigmoid() {
        let truth = SigmoidFit {
            a1: 100.0,
            a2: -1.2,
            a3: -2.0,
        };
        let points: Vec<(f64, f64)> = (0..=4).map(|n| (n as f64, truth.eval(n as f64))).collect();
        let fit = SigmoidFit::fit(&points);
        for n in 0..=4 {
            let e = (fit.eval(n as f64) - truth.eval(n as f64)).abs() / truth.eval(n as f64);
            assert!(
                e < 0.02,
                "n={n}: {} vs {}",
                fit.eval(n as f64),
                truth.eval(n as f64)
            );
        }
    }

    #[test]
    fn fits_decreasing_fps_data() {
        // FPS halving with each extra colocated game.
        let points = [(1.0, 80.0), (1.0, 84.0), (2.0, 45.0), (3.0, 24.0)];
        let fit = SigmoidFit::fit(&points);
        assert!(fit.eval(1.0) > fit.eval(2.0));
        assert!(fit.eval(2.0) > fit.eval(3.0));
        let e1 = (fit.eval(1.0) - 82.0).abs() / 82.0;
        assert!(e1 < 0.15, "{}", fit.eval(1.0));
    }

    #[test]
    fn single_point_degenerates_to_constant() {
        let fit = SigmoidFit::fit(&[(2.0, 50.0), (2.0, 54.0)]);
        assert!((fit.eval(1.0) - 52.0).abs() < 1e-9);
        assert!((fit.eval(5.0) - 52.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no points")]
    fn empty_input_panics() {
        let _ = SigmoidFit::fit(&[]);
    }
}
