//! Evaluation metrics used in the paper's Sections 4 and 5.
//!
//! * Regression: the **prediction error** `|δ̃ − δ| / δ` (Figure 7), plus
//!   MAE/RMSE, and error CDFs (Figure 7c).
//! * Classification: **accuracy**, and the confusion-matrix derived
//!   **precision** and **recall** of Section 5.1 (Figure 9).

use serde::{Deserialize, Serialize};

/// Mean relative error `mean(|pred − actual| / actual)` — the paper's
/// regression "prediction error". Samples with `actual == 0` are skipped.
pub fn mean_relative_error(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    let errs = relative_errors(pred, actual);
    if errs.is_empty() {
        return 0.0;
    }
    errs.iter().sum::<f64>() / errs.len() as f64
}

/// Per-sample relative errors `|pred − actual| / actual`, skipping zero
/// actuals.
pub fn relative_errors(pred: &[f64], actual: &[f64]) -> Vec<f64> {
    assert_eq!(pred.len(), actual.len());
    pred.iter()
        .zip(actual)
        .filter(|(_, &a)| a.abs() > f64::EPSILON)
        .map(|(&p, &a)| (p - a).abs() / a.abs())
        .collect()
}

/// Mean absolute error.
pub fn mae(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Root mean squared error.
pub fn rmse(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    if pred.is_empty() {
        return 0.0;
    }
    (pred
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a) * (p - a))
        .sum::<f64>()
        / pred.len() as f64)
        .sqrt()
}

/// Coefficient of determination R².
pub fn r2(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    if actual.is_empty() {
        return 0.0;
    }
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
    let ss_res: f64 = pred
        .iter()
        .zip(actual)
        .map(|(p, a)| (a - p) * (a - p))
        .sum();
    if ss_tot <= f64::EPSILON {
        return if ss_res <= f64::EPSILON { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// An empirical CDF over a set of values: `points()` yields
/// `(value, fraction ≤ value)` pairs, one per sample, sorted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from raw samples.
    pub fn new(mut values: Vec<f64>) -> Cdf {
        values.sort_by(f64::total_cmp);
        Cdf { sorted: values }
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), by nearest-rank.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.sorted.len() as f64 * q).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// `(value, cumulative fraction)` points for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// Binary confusion matrix (positive = "satisfies QoS" in the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// Actual positive judged positive.
    pub tp: usize,
    /// Actual negative judged positive.
    pub fp: usize,
    /// Actual positive judged negative.
    pub fn_: usize,
    /// Actual negative judged negative.
    pub tn: usize,
}

impl Confusion {
    /// Tally predictions against actual labels.
    pub fn from_predictions(pred: &[bool], actual: &[bool]) -> Confusion {
        assert_eq!(pred.len(), actual.len());
        let mut c = Confusion::default();
        for (&p, &a) in pred.iter().zip(actual) {
            match (a, p) {
                (true, true) => c.tp += 1,
                (false, true) => c.fp += 1,
                (true, false) => c.fn_ += 1,
                (false, false) => c.tn += 1,
            }
        }
        c
    }

    /// Total number of judgements.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// `(TP + TN) / total` — the paper's accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// `TP / (TP + FP)` — "the ability to identify only the feasible
    /// colocations".
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// `TP / (TP + FN)` — "the ability to find all the feasible colocations".
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }
}

/// Classification accuracy over boolean predictions.
pub fn accuracy(pred: &[bool], actual: &[bool]) -> f64 {
    Confusion::from_predictions(pred, actual).accuracy()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_matches_paper_definition() {
        // Predicted 0.44 vs actual 0.40 → 10% error.
        let e = mean_relative_error(&[0.44], &[0.40]);
        assert!((e - 0.1).abs() < 1e-12);
    }

    #[test]
    fn relative_error_skips_zero_actuals() {
        let e = mean_relative_error(&[1.0, 2.0], &[0.0, 1.0]);
        assert!((e - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mae_rmse_r2_basics() {
        let pred = [1.0, 2.0, 3.0];
        let act = [1.0, 2.0, 5.0];
        assert!((mae(&pred, &act) - 2.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&pred, &act) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(r2(&act, &act) > 0.999);
        assert!(r2(&pred, &act) < 1.0);
    }

    #[test]
    fn cdf_quantiles_and_points() {
        let cdf = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(cdf.quantile(0.5), 2.0);
        assert_eq!(cdf.quantile(1.0), 4.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.fraction_below(2.5), 0.5);
        assert_eq!(cdf.points().len(), 4);
        assert_eq!(cdf.points()[3], (4.0, 1.0));
        assert_eq!(cdf.len(), 4);
    }

    #[test]
    fn confusion_metrics() {
        let pred = [true, true, false, false, true];
        let actual = [true, false, true, false, true];
        let c = Confusion::from_predictions(&pred, &actual);
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (2, 1, 1, 1));
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.total(), 5);
        assert!((accuracy(&pred, &actual) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn degenerate_confusions_do_not_divide_by_zero() {
        let c = Confusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
    }
}
