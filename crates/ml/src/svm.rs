//! Kernel support vector machines: SVC trained by simplified SMO and ε-SVR
//! trained by pairwise dual coordinate descent.
//!
//! These are the paper's SVC/SVR comparators. They are the weakest of its
//! four model families on this problem (Figures 7a / 8a), but implementing
//! them faithfully matters for reproducing that ranking.
//!
//! Inputs should be standardized (see [`crate::scale::StandardScaler`]);
//! the RBF kernel's default `gamma = 1 / width` assumes unit-variance
//! features.

use crate::data::Dataset;
use crate::{Classifier, Regressor};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Kernel functions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// Dot product (linear SVM).
    Linear,
    /// Gaussian RBF `exp(−γ‖a−b‖²)`.
    Rbf {
        /// Bandwidth γ.
        gamma: f64,
    },
}

impl Kernel {
    /// Evaluate the kernel on two vectors.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            Kernel::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
        }
    }

    /// The conventional default bandwidth for `width` standardized features.
    pub fn default_rbf(width: usize) -> Kernel {
        Kernel::Rbf {
            gamma: 1.0 / width.max(1) as f64,
        }
    }
}

/// Shared SVM hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SvmParams {
    /// Box constraint C.
    pub c: f64,
    /// Kernel. `None` selects the default RBF for the data width at fit time.
    pub kernel: Option<Kernel>,
    /// ε-tube half-width (SVR only).
    pub epsilon: f64,
    /// KKT tolerance.
    pub tol: f64,
    /// Maximum optimization epochs.
    pub max_epochs: usize,
    /// Seed for partner selection in SMO.
    pub seed: u64,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            c: 10.0,
            kernel: None,
            epsilon: 0.02,
            tol: 1e-3,
            max_epochs: 60,
            seed: 0,
        }
    }
}

fn kernel_matrix(kernel: Kernel, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = xs.len();
    let mut k = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in i..n {
            let v = kernel.eval(&xs[i], &xs[j]);
            k[i][j] = v;
            k[j][i] = v;
        }
    }
    k
}

/// Kernel SVC trained with simplified SMO. Targets must be `0.0` / `1.0`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SvmClassifier {
    kernel: Kernel,
    support: Vec<Vec<f64>>,
    coef: Vec<f64>, // αᵢ yᵢ of the support vectors
    bias: f64,
    /// The hyperparameters used for training.
    pub params: SvmParams,
}

impl SvmClassifier {
    /// Fit on a dataset with `{0, 1}` targets.
    pub fn fit(data: &Dataset, params: SvmParams) -> SvmClassifier {
        assert!(!data.is_empty(), "cannot fit an SVM on an empty dataset");
        let kernel = params
            .kernel
            .unwrap_or_else(|| Kernel::default_rbf(data.width()));
        let n = data.len();
        let y: Vec<f64> = data
            .targets
            .iter()
            .map(|&t| if t > 0.5 { 1.0 } else { -1.0 })
            .collect();
        let k = kernel_matrix(kernel, &data.features);

        let mut alpha = vec![0.0_f64; n];
        let mut b = 0.0_f64;
        let mut rng = ChaCha8Rng::seed_from_u64(params.seed ^ 0x5356_4300);

        let f = |alpha: &[f64], b: f64, k_row: &[f64], y: &[f64]| -> f64 {
            alpha
                .iter()
                .zip(y)
                .zip(k_row)
                .map(|((&a, &yy), &kk)| a * yy * kk)
                .sum::<f64>()
                + b
        };

        let mut passes_without_change = 0;
        let mut epoch = 0;
        while passes_without_change < 3 && epoch < params.max_epochs {
            epoch += 1;
            let mut changed = 0;
            for i in 0..n {
                let ei = f(&alpha, b, &k[i], &y) - y[i];
                let violates = (y[i] * ei < -params.tol && alpha[i] < params.c)
                    || (y[i] * ei > params.tol && alpha[i] > 0.0);
                if !violates {
                    continue;
                }
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let ej = f(&alpha, b, &k[j], &y) - y[j];
                let (ai_old, aj_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if (y[i] - y[j]).abs() > f64::EPSILON {
                    (
                        (alpha[j] - alpha[i]).max(0.0),
                        (params.c + alpha[j] - alpha[i]).min(params.c),
                    )
                } else {
                    (
                        (alpha[i] + alpha[j] - params.c).max(0.0),
                        (alpha[i] + alpha[j]).min(params.c),
                    )
                };
                if hi - lo < 1e-12 {
                    continue;
                }
                let eta = 2.0 * k[i][j] - k[i][i] - k[j][j];
                if eta >= -1e-12 {
                    continue;
                }
                let mut aj = aj_old - y[j] * (ei - ej) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - aj_old).abs() < 1e-7 {
                    continue;
                }
                let ai = ai_old + y[i] * y[j] * (aj_old - aj);
                alpha[i] = ai;
                alpha[j] = aj;

                let b1 = b - ei - y[i] * (ai - ai_old) * k[i][i] - y[j] * (aj - aj_old) * k[i][j];
                let b2 = b - ej - y[i] * (ai - ai_old) * k[i][j] - y[j] * (aj - aj_old) * k[j][j];
                b = if ai > 0.0 && ai < params.c {
                    b1
                } else if aj > 0.0 && aj < params.c {
                    b2
                } else {
                    0.5 * (b1 + b2)
                };
                changed += 1;
            }
            if changed == 0 {
                passes_without_change += 1;
            } else {
                passes_without_change = 0;
            }
        }

        // Keep only support vectors.
        let mut support = Vec::new();
        let mut coef = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-9 {
                support.push(data.features[i].clone());
                coef.push(alpha[i] * y[i]);
            }
        }
        SvmClassifier {
            kernel,
            support,
            coef,
            bias: b,
            params,
        }
    }

    /// Signed decision value (positive = positive class).
    pub fn decision(&self, x: &[f64]) -> f64 {
        self.support
            .iter()
            .zip(&self.coef)
            .map(|(sv, &c)| c * self.kernel.eval(sv, x))
            .sum::<f64>()
            + self.bias
    }

    /// Number of support vectors (diagnostics).
    pub fn n_support(&self) -> usize {
        self.support.len()
    }
}

impl Classifier for SvmClassifier {
    fn score(&self, x: &[f64]) -> f64 {
        // Squash the margin so 0.5 corresponds to the decision boundary.
        1.0 / (1.0 + (-self.decision(x)).exp())
    }
}

/// Kernel ε-SVR trained by pairwise coordinate descent on the dual
/// (β = α − α*, box `[-C, C]`, equality constraint `Σβ = 0`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SvmRegressor {
    kernel: Kernel,
    support: Vec<Vec<f64>>,
    coef: Vec<f64>, // βᵢ of the support vectors
    bias: f64,
    /// The hyperparameters used for training.
    pub params: SvmParams,
}

impl SvmRegressor {
    /// Fit on a regression dataset.
    pub fn fit(data: &Dataset, params: SvmParams) -> SvmRegressor {
        assert!(!data.is_empty(), "cannot fit an SVM on an empty dataset");
        let kernel = params
            .kernel
            .unwrap_or_else(|| Kernel::default_rbf(data.width()));
        let n = data.len();
        let y = &data.targets;
        let k = kernel_matrix(kernel, &data.features);

        let mut beta = vec![0.0_f64; n];
        // f_cache[i] = Σ_j β_j K_ij (without bias).
        let mut f_cache = vec![0.0_f64; n];
        let mut rng = ChaCha8Rng::seed_from_u64(params.seed ^ 0x5356_5200);

        for _epoch in 0..params.max_epochs {
            let mut max_step = 0.0_f64;
            for i in 0..n {
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let eta = k[i][i] + k[j][j] - 2.0 * k[i][j];
                if eta < 1e-12 {
                    continue;
                }
                // Direction eᵢ − eⱼ preserves Σβ = 0. ΔW(t) is piecewise
                // quadratic with breakpoints where βᵢ + t or βⱼ − t cross 0.
                let gi = y[i] - f_cache[i];
                let gj = y[j] - f_cache[j];
                let t_lo = (-params.c - beta[i]).max(beta[j] - params.c);
                let t_hi = (params.c - beta[i]).min(beta[j] + params.c);
                if t_hi - t_lo < 1e-12 {
                    continue;
                }
                let mut candidates = vec![t_lo, t_hi];
                for bp in [-beta[i], beta[j]] {
                    if bp > t_lo && bp < t_hi {
                        candidates.push(bp);
                    }
                }
                // Segment-interior optima for each sign pattern.
                for si in [-1.0, 1.0] {
                    for sj in [-1.0, 1.0] {
                        let t = (gi - gj - params.epsilon * si + params.epsilon * sj) / eta;
                        if t > t_lo && t < t_hi {
                            // Only valid if the signs are consistent at t.
                            let ok_i = (beta[i] + t) * si >= -1e-12;
                            let ok_j = (beta[j] - t) * sj >= -1e-12;
                            if ok_i && ok_j {
                                candidates.push(t);
                            }
                        }
                    }
                }
                let delta_w = |t: f64| -> f64 {
                    t * (gi - gj)
                        - 0.5 * t * t * eta
                        - params.epsilon * ((beta[i] + t).abs() - beta[i].abs())
                        - params.epsilon * ((beta[j] - t).abs() - beta[j].abs())
                };
                let mut best_t = 0.0;
                let mut best_w = 0.0;
                for &t in &candidates {
                    let w = delta_w(t);
                    if w > best_w + 1e-15 {
                        best_w = w;
                        best_t = t;
                    }
                }
                if best_t.abs() < 1e-12 {
                    continue;
                }
                beta[i] += best_t;
                beta[j] -= best_t;
                for m in 0..n {
                    f_cache[m] += best_t * (k[i][m] - k[j][m]);
                }
                max_step = max_step.max(best_t.abs());
            }
            if max_step < params.tol * 1e-2 {
                break;
            }
        }

        // Bias from free support vectors; fallback to the mean residual.
        let mut b_sum = 0.0;
        let mut b_cnt = 0usize;
        for (i, &bi) in beta.iter().enumerate() {
            if bi.abs() > 1e-8 && bi.abs() < params.c - 1e-8 {
                b_sum += y[i] - f_cache[i] - params.epsilon * bi.signum();
                b_cnt += 1;
            }
        }
        let bias = if b_cnt > 0 {
            b_sum / b_cnt as f64
        } else {
            (0..n).map(|i| y[i] - f_cache[i]).sum::<f64>() / n as f64
        };

        let mut support = Vec::new();
        let mut coef = Vec::new();
        for (i, &bi) in beta.iter().enumerate() {
            if bi.abs() > 1e-9 {
                support.push(data.features[i].clone());
                coef.push(bi);
            }
        }
        SvmRegressor {
            kernel,
            support,
            coef,
            bias,
            params,
        }
    }

    /// Number of support vectors (diagnostics).
    pub fn n_support(&self) -> usize {
        self.support.len()
    }
}

impl Regressor for SvmRegressor {
    fn predict(&self, x: &[f64]) -> f64 {
        self.support
            .iter()
            .zip(&self.coef)
            .map(|(sv, &c)| c * self.kernel.eval(sv, x))
            .sum::<f64>()
            + self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_evaluate_correctly() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        assert_eq!(Kernel::Linear.eval(&a, &b), 11.0);
        let rbf = Kernel::Rbf { gamma: 0.5 };
        assert!((rbf.eval(&a, &a) - 1.0).abs() < 1e-12);
        assert!((rbf.eval(&a, &b) - (-0.5f64 * 8.0).exp()).abs() < 1e-12);
    }

    #[test]
    fn svc_separates_linearly_separable_blobs() {
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for i in 0..60 {
            let jitter = ((i * 13) % 10) as f64 / 25.0;
            if i % 2 == 0 {
                features.push(vec![-1.0 - jitter, -1.0 + jitter]);
                targets.push(0.0);
            } else {
                features.push(vec![1.0 + jitter, 1.0 - jitter]);
                targets.push(1.0);
            }
        }
        let data = Dataset::from_parts(features, targets);
        let m = SvmClassifier::fit(&data, SvmParams::default());
        assert!(m.classify(&[1.2, 1.2]));
        assert!(!m.classify(&[-1.2, -1.2]));
        assert!(m.n_support() > 0);
    }

    #[test]
    fn svc_with_rbf_solves_a_ring() {
        // Inner cluster positive, outer ring negative — not linearly
        // separable.
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for i in 0..120 {
            let angle = i as f64 * 0.7;
            let r = if i % 2 == 0 { 0.3 } else { 2.0 };
            features.push(vec![r * angle.cos(), r * angle.sin()]);
            targets.push(if i % 2 == 0 { 1.0 } else { 0.0 });
        }
        let data = Dataset::from_parts(features, targets);
        let m = SvmClassifier::fit(
            &data,
            SvmParams {
                kernel: Some(Kernel::Rbf { gamma: 1.0 }),
                ..SvmParams::default()
            },
        );
        assert!(m.classify(&[0.0, 0.1]));
        assert!(!m.classify(&[2.0, 0.0]));
    }

    #[test]
    fn svr_fits_a_linear_function() {
        let features: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 40.0 - 1.0]).collect();
        let targets: Vec<f64> = features.iter().map(|f| 2.0 * f[0] + 1.0).collect();
        let data = Dataset::from_parts(features, targets);
        let m = SvmRegressor::fit(
            &data,
            SvmParams {
                kernel: Some(Kernel::Linear),
                epsilon: 0.01,
                ..SvmParams::default()
            },
        );
        for &x in &[-0.8, 0.0, 0.7] {
            let p = m.predict(&[x]);
            assert!((p - (2.0 * x + 1.0)).abs() < 0.1, "at {x}: {p}");
        }
    }

    #[test]
    fn svr_fits_a_smooth_nonlinearity() {
        let features: Vec<Vec<f64>> = (0..120).map(|i| vec![i as f64 / 60.0 - 1.0]).collect();
        let targets: Vec<f64> = features.iter().map(|f| (2.5 * f[0]).tanh()).collect();
        let data = Dataset::from_parts(features, targets);
        let m = SvmRegressor::fit(
            &data,
            SvmParams {
                kernel: Some(Kernel::Rbf { gamma: 2.0 }),
                epsilon: 0.02,
                ..SvmParams::default()
            },
        );
        for &x in &[-0.5, 0.0, 0.5] {
            let p = m.predict(&[x]);
            let y = (2.5 * x).tanh();
            assert!((p - y).abs() < 0.1, "at {x}: {p} vs {y}");
        }
    }

    #[test]
    fn svr_respects_sum_zero_constraint_via_bias() {
        // A constant function: all residuals inside the ε-tube, so β ≈ 0 and
        // the bias must carry the level.
        let features: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let targets = vec![3.0; 20];
        let data = Dataset::from_parts(features, targets);
        let m = SvmRegressor::fit(&data, SvmParams::default());
        assert!((m.predict(&[5.0]) - 3.0).abs() < 0.05);
    }

    #[test]
    fn training_is_deterministic() {
        let features: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i as f64).sin(), i as f64 / 40.0])
            .collect();
        let targets: Vec<f64> = (0..40).map(|i| f64::from(i % 3 == 0)).collect();
        let data = Dataset::from_parts(features, targets);
        let a = SvmClassifier::fit(&data, SvmParams::default());
        let b = SvmClassifier::fit(&data, SvmParams::default());
        assert_eq!(a.decision(&[0.5, 0.5]), b.decision(&[0.5, 0.5]));
    }
}
