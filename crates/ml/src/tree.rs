//! CART decision trees.
//!
//! One tree implementation serves both regression and binary classification:
//! splits minimize the weighted variance of the targets, which for `{0, 1}`
//! labels equals `p(1 − p)` — exactly half the Gini impurity — so variance
//! reduction and Gini splitting choose identical splits for binary labels.
//! Leaves store the target mean, which doubles as the positive-class
//! probability for classification.

use crate::batch::Rows;
use crate::data::Dataset;
use crate::{Classifier, Regressor};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Hyperparameters shared by single trees and ensemble members.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child of a split.
    pub min_samples_leaf: usize,
    /// If set, the number of candidate features sampled per split
    /// (random-forest style). `None` considers every feature.
    pub max_features: Option<usize>,
    /// Seed for per-split feature subsampling.
    pub seed: u64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 8,
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_features: None,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART tree (crate-internal; use the public wrappers).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Tree {
    nodes: Vec<Node>,
}

/// Rows walked through a tree simultaneously by the batched evaluators:
/// enough independent root-to-leaf chains to keep several node loads in
/// flight per core, small enough that the lane state lives in registers.
pub(crate) const LANES: usize = 8;

impl Tree {
    /// Fit a tree by recursive variance-reduction splitting.
    pub(crate) fn fit(data: &Dataset, params: &TreeParams) -> Tree {
        assert!(!data.is_empty(), "cannot fit a tree on an empty dataset");
        let mut tree = Tree { nodes: Vec::new() };
        let indices: Vec<usize> = (0..data.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
        tree.build(data, params, indices, 0, &mut rng);
        tree
    }

    fn build(
        &mut self,
        data: &Dataset,
        params: &TreeParams,
        indices: Vec<usize>,
        depth: usize,
        rng: &mut ChaCha8Rng,
    ) -> usize {
        let mean = mean_of(data, &indices);
        let make_leaf = depth >= params.max_depth
            || indices.len() < params.min_samples_split
            || is_pure(data, &indices);
        if !make_leaf {
            if let Some((feature, threshold)) = best_split(data, params, &indices, rng) {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| data.features[i][feature] <= threshold);
                if left_idx.len() >= params.min_samples_leaf
                    && right_idx.len() >= params.min_samples_leaf
                {
                    let node_id = self.nodes.len();
                    self.nodes.push(Node::Leaf { value: mean }); // placeholder
                    let left = self.build(data, params, left_idx, depth + 1, rng);
                    let right = self.build(data, params, right_idx, depth + 1, rng);
                    self.nodes[node_id] = Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    };
                    return node_id;
                }
            }
        }
        let node_id = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean });
        node_id
    }

    /// Index of the leaf node that `x` falls into.
    pub(crate) fn leaf_index(&self, x: &[f64]) -> usize {
        let mut node = 0;
        loop {
            match &self.nodes[node] {
                Node::Leaf { .. } => return node,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicted value for `x` (leaf mean).
    pub(crate) fn predict(&self, x: &[f64]) -> f64 {
        match &self.nodes[self.leaf_index(x)] {
            Node::Leaf { value } => *value,
            Node::Split { .. } => unreachable!("leaf_index returns leaves"),
        }
    }

    /// Advance one traversal lane a single level; returns `true` while the
    /// lane is still on a split node.
    #[inline]
    fn step(&self, idx: &mut usize, x: &[f64]) -> bool {
        match &self.nodes[*idx] {
            Node::Leaf { .. } => false,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                *idx = if x[*feature] <= *threshold {
                    *left
                } else {
                    *right
                };
                true
            }
        }
    }

    /// Leaf value at node `i` (must be a leaf).
    #[inline]
    fn leaf_value(&self, i: usize) -> f64 {
        match &self.nodes[i] {
            Node::Leaf { value } => *value,
            Node::Split { .. } => unreachable!("traversal ends on leaves"),
        }
    }

    /// Walk a block of [`LANES`] rows through the tree in lockstep, level
    /// by level. The lanes are independent root-to-leaf chains, so the CPU
    /// keeps several node loads in flight instead of stalling on one
    /// dependent chain per row — the main single-thread win of the batched
    /// evaluators. A lane that reaches its leaf early just stays there.
    #[inline]
    fn leaf_block(&self, rows: Rows<'_>, base: usize) -> [usize; LANES] {
        let mut idx = [0usize; LANES];
        let mut xs: [&[f64]; LANES] = [&[]; LANES];
        for (l, x) in xs.iter_mut().enumerate() {
            *x = rows.row(base + l);
        }
        loop {
            let mut descending = false;
            for (i, &x) in idx.iter_mut().zip(&xs) {
                descending |= self.step(i, x);
            }
            if !descending {
                return idx;
            }
        }
    }

    /// `out[i] += self.predict(rows.row(i))` for every row, with the bulk
    /// of the rows going through the interleaved [`leaf_block`] traversal.
    /// Bit-identical to the scalar loop: the leaf reached and the value
    /// added are exactly the scalar ones.
    ///
    /// [`leaf_block`]: Tree::leaf_block
    pub(crate) fn accumulate_rows(&self, rows: Rows<'_>, out: &mut [f64]) {
        debug_assert_eq!(rows.len(), out.len());
        let n = rows.len();
        let mut i = 0;
        while i + LANES <= n {
            let leaves = self.leaf_block(rows, i);
            for (l, &leaf) in leaves.iter().enumerate() {
                out[i + l] += self.leaf_value(leaf);
            }
            i += LANES;
        }
        for (j, acc) in out.iter_mut().enumerate().skip(i) {
            *acc += self.predict(rows.row(j));
        }
    }

    /// `out[i] = self.predict(rows.row(i))` for every row (assignment, not
    /// accumulation — single-tree models write their answer directly).
    pub(crate) fn assign_rows(&self, rows: Rows<'_>, out: &mut [f64]) {
        debug_assert_eq!(rows.len(), out.len());
        let n = rows.len();
        let mut i = 0;
        while i + LANES <= n {
            let leaves = self.leaf_block(rows, i);
            for (l, &leaf) in leaves.iter().enumerate() {
                out[i + l] = self.leaf_value(leaf);
            }
            i += LANES;
        }
        for (j, slot) in out.iter_mut().enumerate().skip(i) {
            *slot = self.predict(rows.row(j));
        }
    }

    /// Overwrite a leaf's value (used by gradient boosting's Newton step).
    pub(crate) fn set_leaf_value(&mut self, leaf: usize, value: f64) {
        match &mut self.nodes[leaf] {
            Node::Leaf { value: v } => *v = value,
            Node::Split { .. } => panic!("node {leaf} is not a leaf"),
        }
    }

    /// Number of nodes (for size assertions in tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth actually reached.
    pub(crate) fn depth(&self) -> usize {
        fn walk(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        walk(&self.nodes, 0)
    }
}

fn mean_of(data: &Dataset, indices: &[usize]) -> f64 {
    indices.iter().map(|&i| data.targets[i]).sum::<f64>() / indices.len().max(1) as f64
}

fn is_pure(data: &Dataset, indices: &[usize]) -> bool {
    let first = data.targets[indices[0]];
    indices
        .iter()
        .all(|&i| (data.targets[i] - first).abs() < 1e-12)
}

/// Exhaustive best split by variance reduction over (a subsample of) the
/// features. Returns `None` when no split improves on the parent.
fn best_split(
    data: &Dataset,
    params: &TreeParams,
    indices: &[usize],
    rng: &mut ChaCha8Rng,
) -> Option<(usize, f64)> {
    let width = data.width();
    let mut candidate_features: Vec<usize> = (0..width).collect();
    if let Some(k) = params.max_features {
        let k = k.clamp(1, width);
        candidate_features.shuffle(rng);
        candidate_features.truncate(k);
    }

    let total_sum: f64 = indices.iter().map(|&i| data.targets[i]).sum();
    let total_sq: f64 = indices
        .iter()
        .map(|&i| data.targets[i] * data.targets[i])
        .sum();
    let n = indices.len() as f64;
    let parent_sse = total_sq - total_sum * total_sum / n;

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    let mut order: Vec<usize> = indices.to_vec();

    for &feature in &candidate_features {
        order.sort_by(|&a, &b| data.features[a][feature].total_cmp(&data.features[b][feature]));
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for (pos, &i) in order.iter().enumerate().take(order.len() - 1) {
            let y = data.targets[i];
            left_sum += y;
            left_sq += y * y;
            let v = data.features[i][feature];
            let v_next = data.features[order[pos + 1]][feature];
            if v_next - v < 1e-12 {
                continue; // no distinct threshold between equal values
            }
            let nl = (pos + 1) as f64;
            let nr = n - nl;
            if (nl as usize) < params.min_samples_leaf || (nr as usize) < params.min_samples_leaf {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse =
                (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
            if best.as_ref().is_none_or(|&(_, _, b)| sse < b - 1e-15) {
                best = Some((feature, 0.5 * (v + v_next), sse));
            }
        }
    }

    best.filter(|&(_, _, sse)| sse < parent_sse - 1e-12)
        .map(|(f, t, _)| (f, t))
}

/// A single CART regression tree (the paper's DTR).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTreeRegressor {
    tree: Tree,
    /// The hyperparameters the tree was fitted with.
    pub params: TreeParams,
}

impl DecisionTreeRegressor {
    /// Fit on a dataset.
    pub fn fit(data: &Dataset, params: TreeParams) -> DecisionTreeRegressor {
        DecisionTreeRegressor {
            tree: Tree::fit(data, &params),
            params,
        }
    }

    /// Maximum depth actually reached (diagnostics).
    pub fn depth(&self) -> usize {
        self.tree.depth()
    }

    /// Batched prediction into a reusable output buffer; bit-identical to
    /// calling [`Regressor::predict`] per row.
    pub fn predict_batch(&self, rows: crate::batch::Rows<'_>, out: &mut Vec<f64>) {
        crate::batch::reset_out(out, rows.len());
        crate::batch::single_tree_into(&self.tree, rows, out);
    }
}

impl Regressor for DecisionTreeRegressor {
    fn predict(&self, x: &[f64]) -> f64 {
        self.tree.predict(x)
    }

    fn predict_rows(&self, rows: crate::batch::Rows<'_>, out: &mut Vec<f64>) {
        self.predict_batch(rows, out);
    }
}

/// A single CART classification tree (the paper's DTC). Targets must be
/// `0.0` / `1.0`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTreeClassifier {
    tree: Tree,
    /// The hyperparameters the tree was fitted with.
    pub params: TreeParams,
}

impl DecisionTreeClassifier {
    /// Fit on a dataset with `{0, 1}` targets.
    pub fn fit(data: &Dataset, params: TreeParams) -> DecisionTreeClassifier {
        debug_assert!(
            data.targets.iter().all(|&y| y == 0.0 || y == 1.0),
            "classification targets must be 0/1"
        );
        DecisionTreeClassifier {
            tree: Tree::fit(data, &params),
            params,
        }
    }

    /// Batched scoring into a reusable output buffer; bit-identical to
    /// calling [`Classifier::score`] per row.
    pub fn score_batch(&self, rows: crate::batch::Rows<'_>, out: &mut Vec<f64>) {
        crate::batch::reset_out(out, rows.len());
        crate::batch::single_tree_into(&self.tree, rows, out);
    }
}

impl Classifier for DecisionTreeClassifier {
    fn score(&self, x: &[f64]) -> f64 {
        self.tree.predict(x)
    }

    fn score_rows(&self, rows: crate::batch::Rows<'_>, out: &mut Vec<f64>) {
        self.score_batch(rows, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn step_data(n: usize) -> Dataset {
        // y = 1 if x0 > 0.5 else 0, with a nuisance feature.
        let features: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64, ((i * 7) % 13) as f64])
            .collect();
        let targets = features
            .iter()
            .map(|f| if f[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        Dataset::from_parts(features, targets)
    }

    #[test]
    fn learns_a_step_function() {
        let data = step_data(100);
        let t = DecisionTreeRegressor::fit(&data, TreeParams::default());
        assert!(t.predict(&[0.1, 0.0]) < 0.01);
        assert!(t.predict(&[0.9, 0.0]) > 0.99);
    }

    #[test]
    fn classifier_threshold_behaviour() {
        let data = step_data(100);
        let c = DecisionTreeClassifier::fit(&data, TreeParams::default());
        assert!(!c.classify(&[0.2, 5.0]));
        assert!(c.classify(&[0.8, 5.0]));
    }

    #[test]
    fn deep_tree_interpolates_training_data() {
        // With unconstrained depth and leaf size 1, every distinct training
        // point must be reproduced exactly.
        let features: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..32).map(|i| ((i * 37) % 11) as f64).collect();
        let data = Dataset::from_parts(features.clone(), targets.clone());
        let params = TreeParams {
            max_depth: 32,
            min_samples_split: 2,
            min_samples_leaf: 1,
            ..TreeParams::default()
        };
        let t = DecisionTreeRegressor::fit(&data, params);
        for (x, y) in features.iter().zip(&targets) {
            assert!((t.predict(x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn depth_zero_tree_is_the_mean() {
        let data = step_data(50);
        let params = TreeParams {
            max_depth: 0,
            ..TreeParams::default()
        };
        let t = DecisionTreeRegressor::fit(&data, params);
        let mean = data.targets.iter().sum::<f64>() / 50.0;
        assert!((t.predict(&[0.3, 1.0]) - mean).abs() < 1e-12);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn pure_node_stops_splitting() {
        let data = Dataset::from_parts(vec![vec![0.0], vec![1.0], vec![2.0]], vec![5.0; 3]);
        let t = Tree::fit(&data, &TreeParams::default());
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let data = step_data(10);
        let params = TreeParams {
            min_samples_leaf: 5,
            min_samples_split: 10,
            ..TreeParams::default()
        };
        let t = Tree::fit(&data, &params);
        // With 10 samples and leaves of ≥5, at most one split is possible.
        assert!(t.node_count() <= 3);
    }

    #[test]
    fn feature_subsampling_is_deterministic_per_seed() {
        let data = step_data(60);
        let params = TreeParams {
            max_features: Some(1),
            seed: 1,
            ..TreeParams::default()
        };
        let a = DecisionTreeRegressor::fit(&data, params);
        let b = DecisionTreeRegressor::fit(&data, params);
        for i in 0..20 {
            let x = [i as f64 / 20.0, 1.0];
            assert_eq!(a.predict(&x), b.predict(&x));
        }
    }

    #[test]
    fn leaf_value_override_works() {
        let data = step_data(20);
        let mut t = Tree::fit(&data, &TreeParams::default());
        let leaf = t.leaf_index(&[0.9, 0.0]);
        t.set_leaf_value(leaf, 42.0);
        assert_eq!(t.predict(&[0.9, 0.0]), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let _ = Tree::fit(&Dataset::new(), &TreeParams::default());
    }

    #[test]
    fn picks_the_informative_feature() {
        // Feature 1 is pure noise; feature 0 fully determines y. The root
        // split must use feature 0 (checked behaviourally: permuting the
        // noise feature must not change predictions).
        let features: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![(i % 8) as f64, ((i * 37) % 11) as f64])
            .collect();
        let targets: Vec<f64> = features.iter().map(|f| f[0] * 2.0).collect();
        let data = Dataset::from_parts(features, targets);
        let t = DecisionTreeRegressor::fit(&data, TreeParams::default());
        for probe in 0..8 {
            let a = t.predict(&[probe as f64, 0.0]);
            let b = t.predict(&[probe as f64, 10.0]);
            assert_eq!(a, b, "noise feature must not matter");
            assert!((a - probe as f64 * 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn classifier_scores_are_leaf_purities() {
        let data = step_data(100);
        let c = DecisionTreeClassifier::fit(&data, TreeParams::default());
        let s = c.score(&[0.9, 1.0]);
        assert!((0.0..=1.0).contains(&s));
        assert!(s > 0.95, "pure region should be near-certain: {s}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn predictions_stay_within_target_range(
            ys in proptest::collection::vec(-10.0f64..10.0, 8..40),
            probe in -2.0f64..2.0,
        ) {
            let features: Vec<Vec<f64>> =
                (0..ys.len()).map(|i| vec![i as f64 / ys.len() as f64]).collect();
            let data = Dataset::from_parts(features, ys.clone());
            let t = DecisionTreeRegressor::fit(&data, TreeParams::default());
            let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let p = t.predict(&[probe]);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }
}
