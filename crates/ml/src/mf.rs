//! Low-rank matrix completion by alternating least squares (ALS).
//!
//! The GAugur paper's related work (Paragon \[13\] / Quasar \[14\]) reduces
//! profiling cost with collaborative filtering: profile every application on
//! a *subset* of benchmarks and complete the rest from the low-rank
//! structure shared across applications. `gaugur-core`'s profile-completion
//! extension builds on this module.

use crate::linear::solve;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// ALS hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MfParams {
    /// Latent rank.
    pub rank: usize,
    /// Ridge regularization on the factors.
    pub lambda: f64,
    /// Alternating iterations.
    pub iters: usize,
    /// Seed for factor initialization.
    pub seed: u64,
}

impl Default for MfParams {
    fn default() -> Self {
        MfParams {
            rank: 8,
            lambda: 0.005,
            iters: 80,
            seed: 0,
        }
    }
}

/// A fitted low-rank model `M ≈ mean + U · Vᵀ`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixFactorization {
    row_factors: Vec<Vec<f64>>,
    col_factors: Vec<Vec<f64>>,
    mean: f64,
    /// The hyperparameters used for fitting.
    pub params: MfParams,
}

impl MatrixFactorization {
    /// Fit to the observed entries `(row, col, value)` of an
    /// `n_rows × n_cols` matrix.
    pub fn fit(
        n_rows: usize,
        n_cols: usize,
        observed: &[(usize, usize, f64)],
        params: MfParams,
    ) -> MatrixFactorization {
        assert!(!observed.is_empty(), "ALS needs at least one observation");
        assert!(params.rank >= 1, "rank must be positive");
        let mean = observed.iter().map(|&(_, _, v)| v).sum::<f64>() / observed.len() as f64;

        let mut rng = ChaCha8Rng::seed_from_u64(params.seed ^ 0x414c_5300);
        let mut init = |n: usize| -> Vec<Vec<f64>> {
            (0..n)
                .map(|_| (0..params.rank).map(|_| rng.gen_range(-0.1..0.1)).collect())
                .collect()
        };
        let mut rows = init(n_rows);
        let mut cols = init(n_cols);

        // Index observations both ways.
        let mut by_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_rows];
        let mut by_col: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_cols];
        for &(r, c, v) in observed {
            by_row[r].push((c, v - mean));
            by_col[c].push((r, v - mean));
        }

        for _ in 0..params.iters {
            als_half(&mut rows, &cols, &by_row, params);
            als_half(&mut cols, &rows, &by_col, params);
        }

        MatrixFactorization {
            row_factors: rows,
            col_factors: cols,
            mean,
            params,
        }
    }

    /// Predicted value of entry `(row, col)`.
    pub fn predict(&self, row: usize, col: usize) -> f64 {
        self.mean
            + self.row_factors[row]
                .iter()
                .zip(&self.col_factors[col])
                .map(|(a, b)| a * b)
                .sum::<f64>()
    }
}

/// One ALS half-step: re-solve every `target` factor against the fixed
/// `other` factors.
fn als_half(
    target: &mut [Vec<f64>],
    other: &[Vec<f64>],
    observations: &[Vec<(usize, f64)>],
    params: MfParams,
) {
    let k = params.rank;
    for (t, obs) in target.iter_mut().zip(observations) {
        if obs.is_empty() {
            continue; // keep the (near-zero) initialization → predicts the mean
        }
        // Normal equations: (Σ v vᵀ + λI) t = Σ y v.
        let mut a = vec![vec![0.0; k]; k];
        let mut b = vec![0.0; k];
        for &(j, y) in obs {
            let v = &other[j];
            for p in 0..k {
                b[p] += y * v[p];
                for q in 0..k {
                    a[p][q] += v[p] * v[q];
                }
            }
        }
        for (p, row) in a.iter_mut().enumerate() {
            row[p] += params.lambda * obs.len() as f64;
        }
        *t = solve(a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic rank-2 matrix with known structure.
    fn rank2(n_rows: usize, n_cols: usize) -> Vec<Vec<f64>> {
        (0..n_rows)
            .map(|r| {
                (0..n_cols)
                    .map(|c| {
                        let u = [(r % 5) as f64 / 5.0, ((r * 3) % 7) as f64 / 7.0];
                        let v = [(c % 4) as f64 / 4.0, ((c * 5) % 9) as f64 / 9.0];
                        1.0 + u[0] * v[0] + u[1] * v[1]
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn completes_a_low_rank_matrix_from_60_percent_of_entries() {
        let m = rank2(20, 15);
        let mut observed = Vec::new();
        let mut held_out = Vec::new();
        for (r, row) in m.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                if (r * 31 + c * 17) % 10 < 6 {
                    observed.push((r, c, v));
                } else {
                    held_out.push((r, c, v));
                }
            }
        }
        let mf = MatrixFactorization::fit(20, 15, &observed, MfParams::default());
        let mae: f64 = held_out
            .iter()
            .map(|&(r, c, v)| (mf.predict(r, c) - v).abs())
            .sum::<f64>()
            / held_out.len() as f64;
        assert!(mae < 0.03, "held-out MAE {mae}");
    }

    #[test]
    fn unobserved_rows_fall_back_to_the_mean() {
        let observed = vec![(0, 0, 2.0), (0, 1, 2.0), (1, 0, 4.0), (1, 1, 4.0)];
        let mf = MatrixFactorization::fit(3, 2, &observed, MfParams::default());
        // Row 2 has no observations: its prediction should hug the global
        // mean (3.0) rather than explode.
        let p = mf.predict(2, 0);
        assert!((p - 3.0).abs() < 0.5, "{p}");
    }

    #[test]
    fn fitting_is_deterministic() {
        let observed = vec![(0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0), (0, 2, 1.5)];
        let a = MatrixFactorization::fit(3, 3, &observed, MfParams::default());
        let b = MatrixFactorization::fit(3, 3, &observed, MfParams::default());
        assert_eq!(a.predict(1, 2), b.predict(1, 2));
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn empty_observations_panic() {
        let _ = MatrixFactorization::fit(2, 2, &[], MfParams::default());
    }
}
