//! Gradient-boosted trees: GBRT (squared loss) for regression and GBDT
//! (logistic loss with Newton leaf updates) for binary classification.
//!
//! GBRT/GBDT are the algorithms the paper singles out as the most accurate —
//! "Among all the algorithms, GBRT achieves the best performance, which
//! produces an error of 7.9%" (Section 4.2) and "GBDT achieves as high as 95%
//! accuracy" (classification).

use crate::data::Dataset;
use crate::tree::{Tree, TreeParams};
use crate::{Classifier, Regressor};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Gradient-boosting hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GbdtParams {
    /// Number of boosting rounds (trees).
    pub n_estimators: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Depth of the weak learners.
    pub max_depth: usize,
    /// Minimum samples per leaf of the weak learners.
    pub min_samples_leaf: usize,
    /// Fraction of the training set sampled (without replacement) per round;
    /// `1.0` disables stochastic boosting.
    pub subsample: f64,
    /// Seed for subsampling.
    pub seed: u64,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_estimators: 200,
            learning_rate: 0.08,
            max_depth: 4,
            min_samples_leaf: 3,
            subsample: 0.9,
            seed: 0,
        }
    }
}

impl GbdtParams {
    fn tree_params(&self, seed: u64) -> TreeParams {
        TreeParams {
            max_depth: self.max_depth,
            min_samples_split: self.min_samples_leaf * 2,
            min_samples_leaf: self.min_samples_leaf,
            max_features: None,
            seed,
        }
    }
}

/// Draw a subsample of row indices for one boosting round.
fn round_indices(n: usize, params: &GbdtParams, round: usize) -> Vec<usize> {
    if params.subsample >= 1.0 {
        return (0..n).collect();
    }
    let k = ((n as f64 * params.subsample).round() as usize).clamp(1, n);
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng =
        ChaCha8Rng::seed_from_u64(params.seed ^ (0x4742_4454 + round as u64 * 0x9E37_79B9));
    idx.shuffle(&mut rng);
    idx.truncate(k);
    idx
}

/// Gradient-boosted regression trees (the paper's GBRT).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbrtRegressor {
    init: f64,
    trees: Vec<Tree>,
    /// The hyperparameters used for training.
    pub params: GbdtParams,
}

impl GbrtRegressor {
    /// Fit by iteratively regressing the residuals (functional gradient of
    /// the squared loss).
    pub fn fit(data: &Dataset, params: GbdtParams) -> GbrtRegressor {
        assert!(!data.is_empty(), "cannot fit GBRT on an empty dataset");
        let n = data.len();
        let init = data.targets.iter().sum::<f64>() / n as f64;
        let mut current: Vec<f64> = vec![init; n];
        let mut trees = Vec::with_capacity(params.n_estimators);

        for round in 0..params.n_estimators {
            let idx = round_indices(n, &params, round);
            let residual_data = Dataset::from_parts(
                idx.iter().map(|&i| data.features[i].clone()).collect(),
                idx.iter().map(|&i| data.targets[i] - current[i]).collect(),
            );
            let tree = Tree::fit(
                &residual_data,
                &params.tree_params(params.seed ^ round as u64),
            );
            for (cur, x) in current.iter_mut().zip(&data.features) {
                *cur += params.learning_rate * tree.predict(x);
            }
            trees.push(tree);
        }

        GbrtRegressor {
            init,
            trees,
            params,
        }
    }

    /// Warm-start: continue boosting this ensemble for `extra_rounds` more
    /// rounds against `data`, returning the extended model. The existing
    /// trees and init are kept verbatim — with `extra_rounds == 0` the
    /// returned ensemble is bit-identical to `self` — and new rounds are
    /// numbered from `n_trees()`, so their subsample and tree seeds never
    /// collide with the original fit's.
    ///
    /// The running prediction is seeded with the current ensemble's output
    /// on `data`, so each new tree regresses the *fresh residuals*: what the
    /// deployed model still gets wrong on the new observations. This is the
    /// retraining primitive of the serving feedback loop.
    pub fn continue_fit(&self, data: &Dataset, extra_rounds: usize) -> GbrtRegressor {
        assert!(
            !data.is_empty(),
            "cannot warm-start GBRT on an empty dataset"
        );
        let n = data.len();
        let params = self.params;
        let mut current: Vec<f64> = data.features.iter().map(|x| self.predict(x)).collect();
        let mut trees = self.trees.clone();
        let start = trees.len();

        for round in start..start + extra_rounds {
            let idx = round_indices(n, &params, round);
            let residual_data = Dataset::from_parts(
                idx.iter().map(|&i| data.features[i].clone()).collect(),
                idx.iter().map(|&i| data.targets[i] - current[i]).collect(),
            );
            let tree = Tree::fit(
                &residual_data,
                &params.tree_params(params.seed ^ round as u64),
            );
            for (cur, x) in current.iter_mut().zip(&data.features) {
                *cur += params.learning_rate * tree.predict(x);
            }
            trees.push(tree);
        }

        GbrtRegressor {
            init: self.init,
            trees,
            params,
        }
    }

    /// Number of boosting rounds (diagnostics).
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Batched prediction into a reusable output buffer; bit-identical to
    /// calling [`Regressor::predict`] per row (per row:
    /// `init + learning_rate * Σ_t tree_t(x)`, summed in tree order).
    pub fn predict_batch(&self, rows: crate::batch::Rows<'_>, out: &mut Vec<f64>) {
        crate::batch::reset_out(out, rows.len());
        crate::batch::sum_trees_into(&self.trees, rows, out);
        for v in out.iter_mut() {
            *v = self.init + self.params.learning_rate * *v;
        }
    }
}

impl Regressor for GbrtRegressor {
    fn predict(&self, x: &[f64]) -> f64 {
        self.init + self.params.learning_rate * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    fn predict_rows(&self, rows: crate::batch::Rows<'_>, out: &mut Vec<f64>) {
        self.predict_batch(rows, out);
    }
}

/// Gradient-boosted classification trees with logistic loss (the paper's
/// GBDT). Targets must be `0.0` / `1.0`; [`Classifier::score`] returns the
/// predicted positive-class probability.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbdtClassifier {
    init: f64, // initial log-odds
    trees: Vec<Tree>,
    /// The hyperparameters used for training.
    pub params: GbdtParams,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl GbdtClassifier {
    /// Fit by boosting on the logistic-loss gradient with a Newton step per
    /// leaf (the classic Friedman TreeBoost update).
    pub fn fit(data: &Dataset, params: GbdtParams) -> GbdtClassifier {
        assert!(!data.is_empty(), "cannot fit GBDT on an empty dataset");
        debug_assert!(
            data.targets.iter().all(|&y| y == 0.0 || y == 1.0),
            "classification targets must be 0/1"
        );
        let n = data.len();
        let pos = data.targets.iter().sum::<f64>() / n as f64;
        let pos = pos.clamp(1e-6, 1.0 - 1e-6);
        let init = (pos / (1.0 - pos)).ln();
        let mut raw: Vec<f64> = vec![init; n];
        let mut trees = Vec::with_capacity(params.n_estimators);

        for round in 0..params.n_estimators {
            let idx = round_indices(n, &params, round);
            // Negative gradient of the logistic loss: y − p.
            let grads: Vec<f64> = idx
                .iter()
                .map(|&i| data.targets[i] - sigmoid(raw[i]))
                .collect();
            let grad_data = Dataset::from_parts(
                idx.iter().map(|&i| data.features[i].clone()).collect(),
                grads,
            );
            let mut tree = Tree::fit(&grad_data, &params.tree_params(params.seed ^ round as u64));

            // Newton leaf values: Σ(y − p) / Σ p(1 − p) per leaf.
            let mut num: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
            let mut den: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
            for &i in &idx {
                let leaf = tree.leaf_index(&data.features[i]);
                let p = sigmoid(raw[i]);
                *num.entry(leaf).or_default() += data.targets[i] - p;
                *den.entry(leaf).or_default() += (p * (1.0 - p)).max(1e-9);
            }
            for (leaf, s) in num {
                tree.set_leaf_value(leaf, s / den[&leaf]);
            }

            for (r, x) in raw.iter_mut().zip(&data.features) {
                *r += params.learning_rate * tree.predict(x);
            }
            trees.push(tree);
        }

        GbdtClassifier {
            init,
            trees,
            params,
        }
    }

    /// Number of boosting rounds (diagnostics).
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Batched scoring into a reusable output buffer; bit-identical to
    /// calling [`Classifier::score`] per row.
    pub fn score_batch(&self, rows: crate::batch::Rows<'_>, out: &mut Vec<f64>) {
        crate::batch::reset_out(out, rows.len());
        crate::batch::sum_trees_into(&self.trees, rows, out);
        for v in out.iter_mut() {
            *v = sigmoid(self.init + self.params.learning_rate * *v);
        }
    }
}

impl Classifier for GbdtClassifier {
    fn score(&self, x: &[f64]) -> f64 {
        let raw = self.init
            + self.params.learning_rate * self.trees.iter().map(|t| t.predict(x)).sum::<f64>();
        sigmoid(raw)
    }

    fn score_rows(&self, rows: crate::batch::Rows<'_>, out: &mut Vec<f64>) {
        self.score_batch(rows, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_data(n: usize) -> Dataset {
        let features: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let targets = features.iter().map(|f| (f[0] * 6.0).sin()).collect();
        Dataset::from_parts(features, targets)
    }

    #[test]
    fn gbrt_fits_a_sine() {
        let data = sine_data(300);
        let m = GbrtRegressor::fit(
            &data,
            GbdtParams {
                n_estimators: 150,
                seed: 3,
                ..GbdtParams::default()
            },
        );
        for &x in &[0.1, 0.35, 0.6, 0.85] {
            let p = m.predict(&[x]);
            let y = (x * 6.0).sin();
            assert!((p - y).abs() < 0.08, "at {x}: {p} vs {y}");
        }
        assert_eq!(m.n_trees(), 150);
    }

    #[test]
    fn gbrt_beats_its_own_initial_constant() {
        let data = sine_data(200);
        let m = GbrtRegressor::fit(&data, GbdtParams::default());
        let mean = data.targets.iter().sum::<f64>() / 200.0;
        let model_err: f64 = data
            .iter()
            .map(|(x, y)| (m.predict(x) - y).abs())
            .sum::<f64>();
        let const_err: f64 = data.targets.iter().map(|y| (mean - y).abs()).sum::<f64>();
        assert!(model_err < 0.2 * const_err);
    }

    #[test]
    fn gbdt_learns_xor() {
        // XOR is the canonical non-linearly-separable problem; depth-2+ trees
        // should nail it.
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for i in 0..200 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            let jitter = ((i * 17) % 11) as f64 / 110.0 - 0.05;
            features.push(vec![a + jitter, b - jitter]);
            targets.push(if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 });
        }
        let data = Dataset::from_parts(features, targets);
        let m = GbdtClassifier::fit(
            &data,
            GbdtParams {
                n_estimators: 80,
                seed: 4,
                ..GbdtParams::default()
            },
        );
        assert!(m.classify(&[1.0, 0.0]));
        assert!(m.classify(&[0.0, 1.0]));
        assert!(!m.classify(&[0.0, 0.0]));
        assert!(!m.classify(&[1.0, 1.0]));
    }

    #[test]
    fn gbdt_scores_are_probabilities() {
        let data = sine_data(50);
        let labels = Dataset::from_parts(
            data.features.clone(),
            data.targets.iter().map(|&y| f64::from(y > 0.0)).collect(),
        );
        let m = GbdtClassifier::fit(&data_to_binary(&labels), GbdtParams::default());
        for (x, _) in labels.iter() {
            let s = m.score(x);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    fn data_to_binary(d: &Dataset) -> Dataset {
        d.clone()
    }

    #[test]
    fn training_is_deterministic() {
        let data = sine_data(100);
        let p = GbdtParams {
            n_estimators: 30,
            seed: 9,
            ..GbdtParams::default()
        };
        let a = GbrtRegressor::fit(&data, p);
        let b = GbrtRegressor::fit(&data, p);
        assert_eq!(a.predict(&[0.4]), b.predict(&[0.4]));
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let data = sine_data(150);
        let err = |rounds: usize| {
            let m = GbrtRegressor::fit(
                &data,
                GbdtParams {
                    n_estimators: rounds,
                    subsample: 1.0,
                    ..GbdtParams::default()
                },
            );
            data.iter()
                .map(|(x, y)| (m.predict(x) - y).powi(2))
                .sum::<f64>()
        };
        let few = err(10);
        let many = err(120);
        assert!(
            many < few * 0.5,
            "boosting must keep reducing train error: {few} → {many}"
        );
    }

    #[test]
    fn warm_start_with_zero_rounds_is_bit_identical() {
        let data = sine_data(120);
        let m = GbrtRegressor::fit(
            &data,
            GbdtParams {
                n_estimators: 40,
                seed: 11,
                ..GbdtParams::default()
            },
        );
        let same = m.continue_fit(&sine_data(60), 0);
        assert_eq!(same.n_trees(), m.n_trees());
        for i in 0..50 {
            let x = [i as f64 / 50.0];
            assert_eq!(
                m.predict(&x).to_bits(),
                same.predict(&x).to_bits(),
                "0-round warm start must not perturb the ensemble at {x:?}"
            );
        }
    }

    #[test]
    fn warm_start_is_deterministic() {
        let data = sine_data(100);
        let shifted = Dataset::from_parts(
            data.features.clone(),
            data.targets.iter().map(|y| y + 0.25).collect(),
        );
        let m = GbrtRegressor::fit(
            &data,
            GbdtParams {
                n_estimators: 25,
                seed: 5,
                ..GbdtParams::default()
            },
        );
        let a = m.continue_fit(&shifted, 30);
        let b = m.continue_fit(&shifted, 30);
        assert_eq!(a.predict(&[0.3]).to_bits(), b.predict(&[0.3]).to_bits());
        assert_eq!(a.n_trees(), 55);
    }

    #[test]
    fn warm_start_fits_drifted_targets() {
        // Train on sin(6x), then drift the world by +0.4; continued boosting
        // must adapt to the drift far better than the frozen ensemble.
        let data = sine_data(200);
        let drifted = Dataset::from_parts(
            data.features.clone(),
            data.targets.iter().map(|y| y + 0.4).collect(),
        );
        let m = GbrtRegressor::fit(
            &data,
            GbdtParams {
                n_estimators: 80,
                seed: 2,
                ..GbdtParams::default()
            },
        );
        let tuned = m.continue_fit(&drifted, 80);
        let err = |model: &GbrtRegressor| {
            drifted
                .iter()
                .map(|(x, y)| (model.predict(x) - y).abs())
                .sum::<f64>()
                / drifted.len() as f64
        };
        let stale = err(&m);
        let fresh = err(&tuned);
        assert!(
            fresh < stale * 0.25,
            "warm start must chase the drift: stale MAE {stale}, tuned MAE {fresh}"
        );
    }

    #[test]
    fn warm_start_round_numbering_never_reuses_early_seeds() {
        // The subsample draws of continued rounds must differ from round 0's:
        // the round counter keeps advancing past the original fit.
        let params = GbdtParams {
            n_estimators: 10,
            subsample: 0.5,
            seed: 7,
            ..GbdtParams::default()
        };
        let first = round_indices(40, &params, 0);
        let continued = round_indices(40, &params, 10);
        assert_ne!(
            first, continued,
            "continued rounds must draw fresh subsamples"
        );
    }

    #[test]
    fn full_sample_mode_uses_all_rows() {
        let idx = round_indices(
            10,
            &GbdtParams {
                subsample: 1.0,
                ..GbdtParams::default()
            },
            0,
        );
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
        let idx2 = round_indices(
            10,
            &GbdtParams {
                subsample: 0.5,
                ..GbdtParams::default()
            },
            0,
        );
        assert_eq!(idx2.len(), 5);
    }
}
