//! Model selection: k-fold cross-validation and grid search.
//!
//! The paper fixes its hyperparameters offline; this utility is how an
//! operator would pick them on their own catalog without touching the test
//! set (the ablation harness uses it to justify the defaults).

use crate::data::Dataset;
use crate::metrics::mean_relative_error;

/// Cross-validated mean relative error of a train-then-predict procedure.
///
/// `fit` receives a training fold and returns a prediction function.
pub fn cross_val_error<F, P>(data: &Dataset, k: usize, seed: u64, fit: F) -> f64
where
    F: Fn(&Dataset) -> P,
    P: Fn(&[f64]) -> f64,
{
    let folds = data.kfold(k, seed);
    let mut errs = Vec::with_capacity(k);
    for (train, test) in &folds {
        let predict = fit(train);
        let preds: Vec<f64> = test.features.iter().map(|x| predict(x)).collect();
        errs.push(mean_relative_error(&preds, &test.targets));
    }
    errs.iter().sum::<f64>() / errs.len().max(1) as f64
}

/// Evaluate every candidate with k-fold CV and return
/// `(best index, best score, all scores)` — lowest error wins; ties go to
/// the earliest candidate (deterministic).
pub fn grid_search<C, F, P>(
    data: &Dataset,
    candidates: &[C],
    k: usize,
    seed: u64,
    fit: F,
) -> (usize, f64, Vec<f64>)
where
    F: Fn(&C, &Dataset) -> P,
    P: Fn(&[f64]) -> f64,
{
    assert!(!candidates.is_empty(), "grid search needs candidates");
    let scores: Vec<f64> = candidates
        .iter()
        .map(|c| cross_val_error(data, k, seed, |train| fit(c, train)))
        .collect();
    let (best, &score) = scores
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.total_cmp(b))
        .expect("non-empty scores");
    (best, score, scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{DecisionTreeRegressor, TreeParams};
    use crate::Regressor;

    fn quadratic(n: usize) -> Dataset {
        let features: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let targets = features.iter().map(|f| 1.0 + f[0] * f[0]).collect();
        Dataset::from_parts(features, targets)
    }

    #[test]
    fn cross_val_scores_a_reasonable_model_well() {
        let data = quadratic(200);
        let err = cross_val_error(&data, 5, 1, |train| {
            let t = DecisionTreeRegressor::fit(train, TreeParams::default());
            move |x: &[f64]| t.predict(x)
        });
        assert!(err < 0.05, "CV error {err}");
    }

    #[test]
    fn grid_search_prefers_adequate_depth() {
        let data = quadratic(200);
        let depths = [0usize, 2, 6];
        let (best, score, scores) = grid_search(&data, &depths, 5, 1, |&d, train| {
            let t = DecisionTreeRegressor::fit(
                train,
                TreeParams {
                    max_depth: d,
                    ..TreeParams::default()
                },
            );
            move |x: &[f64]| t.predict(x)
        });
        assert_eq!(scores.len(), 3);
        // Depth 0 (a constant) must lose to real trees.
        assert!(scores[0] > scores[2], "{scores:?}");
        assert_ne!(best, 0);
        assert!(score <= scores[0]);
    }

    #[test]
    fn grid_search_is_deterministic() {
        let data = quadratic(80);
        let depths = [1usize, 3];
        let run = || {
            grid_search(&data, &depths, 4, 9, |&d, train| {
                let t = DecisionTreeRegressor::fit(
                    train,
                    TreeParams {
                        max_depth: d,
                        ..TreeParams::default()
                    },
                );
                move |x: &[f64]| t.predict(x)
            })
        };
        let (a, sa, _) = run();
        let (b, sb, _) = run();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    #[should_panic(expected = "needs candidates")]
    fn empty_grid_panics() {
        let data = quadratic(10);
        let empty: [usize; 0] = [];
        let _ = grid_search(&data, &empty, 2, 0, |_, train| {
            let t = DecisionTreeRegressor::fit(train, TreeParams::default());
            move |x: &[f64]| t.predict(x)
        });
    }
}
