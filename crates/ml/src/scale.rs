//! Feature standardization (zero mean, unit variance), required by the SVM
//! models and harmless for the tree ensembles.

use crate::data::Dataset;
use serde::{Deserialize, Serialize};

/// Per-feature standardizer fitted on a training set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Fit on the columns of a dataset. Constant columns get unit scale so
    /// they pass through unchanged (after centring).
    pub fn fit(data: &Dataset) -> StandardScaler {
        let w = data.width();
        let n = data.len().max(1) as f64;
        let mut mean = vec![0.0; w];
        for x in &data.features {
            for (m, v) in mean.iter_mut().zip(x) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; w];
        for x in &data.features {
            for ((v, s), m) in x.iter().zip(&mut var).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        StandardScaler { mean, std }
    }

    /// Transform one feature vector.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "feature width mismatch");
        x.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Transform one feature vector, appending the standardized values to
    /// `out` without allocating (bit-identical to [`StandardScaler::transform`]).
    pub fn transform_extend(&self, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.mean.len(), "feature width mismatch");
        out.extend(
            x.iter()
                .zip(self.mean.iter().zip(&self.std))
                .map(|(v, (m, s))| (v - m) / s),
        );
    }

    /// Transform one feature vector into a reusable buffer (cleared first).
    pub fn transform_into(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        self.transform_extend(x, out);
    }

    /// Transform a whole dataset (targets pass through).
    pub fn transform_dataset(&self, data: &Dataset) -> Dataset {
        Dataset::from_parts(
            data.features.iter().map(|x| self.transform(x)).collect(),
            data.targets.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_variance() {
        let data = Dataset::from_parts(
            vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]],
            vec![0.0; 3],
        );
        let sc = StandardScaler::fit(&data);
        let t = sc.transform_dataset(&data);
        for col in 0..2 {
            let vals: Vec<f64> = t.features.iter().map(|x| x[col]).collect();
            let mean = vals.iter().sum::<f64>() / 3.0;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_columns_survive() {
        let data = Dataset::from_parts(vec![vec![5.0], vec![5.0]], vec![0.0; 2]);
        let sc = StandardScaler::fit(&data);
        let t = sc.transform(&[5.0]);
        assert_eq!(t, vec![0.0]);
        let t2 = sc.transform(&[7.0]);
        assert_eq!(t2, vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let data = Dataset::from_parts(vec![vec![1.0, 2.0]], vec![0.0]);
        let sc = StandardScaler::fit(&data);
        let _ = sc.transform(&[1.0]);
    }
}
