//! Datasets: feature matrices with targets, splitting and folding.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A supervised dataset: one feature vector and one real-valued target per
/// sample. Binary classification encodes the positive class as `1.0` and the
/// negative class as `0.0`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature vectors (all the same length).
    pub features: Vec<Vec<f64>>,
    /// Targets, one per feature vector.
    pub targets: Vec<f64>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// Build from parallel vectors. Panics if lengths differ or feature
    /// vectors are ragged.
    pub fn from_parts(features: Vec<Vec<f64>>, targets: Vec<f64>) -> Dataset {
        assert_eq!(
            features.len(),
            targets.len(),
            "features/targets length mismatch"
        );
        if let Some(first) = features.first() {
            let w = first.len();
            assert!(
                features.iter().all(|f| f.len() == w),
                "ragged feature matrix"
            );
        }
        Dataset { features, targets }
    }

    /// Append one sample. Panics on a width mismatch.
    pub fn push(&mut self, x: Vec<f64>, y: f64) {
        if let Some(first) = self.features.first() {
            assert_eq!(first.len(), x.len(), "feature width mismatch");
        }
        self.features.push(x);
        self.targets.push(y);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of features per sample (0 if empty).
    pub fn width(&self) -> usize {
        self.features.first().map_or(0, |f| f.len())
    }

    /// A new dataset containing the samples at `indices` (duplicates
    /// allowed — this is how bootstrap resampling is expressed).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            targets: indices.iter().map(|&i| self.targets[i]).collect(),
        }
    }

    /// The first `n` samples (or all of them, if fewer).
    pub fn take(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        Dataset {
            features: self.features[..n].to_vec(),
            targets: self.targets[..n].to_vec(),
        }
    }

    /// Deterministically shuffle the samples.
    pub fn shuffled(&self, seed: u64) -> Dataset {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        self.subset(&idx)
    }

    /// Split into `(train, test)` with `train_fraction` of the samples (after
    /// a deterministic shuffle) in the training set.
    pub fn split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_fraction));
        let shuffled = self.shuffled(seed);
        let n_train = (self.len() as f64 * train_fraction).round() as usize;
        let train = shuffled.take(n_train);
        let test = Dataset {
            features: shuffled.features[n_train..].to_vec(),
            targets: shuffled.targets[n_train..].to_vec(),
        };
        (train, test)
    }

    /// `k`-fold cross-validation indices: returns `k` (train, test) pairs.
    pub fn kfold(&self, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
        assert!(k >= 2, "k-fold needs k >= 2");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        (0..k)
            .map(|fold| {
                let test_idx: Vec<usize> = idx
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|(i, _)| i % k == fold)
                    .map(|(_, v)| v)
                    .collect();
                let train_idx: Vec<usize> = idx
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|(i, _)| i % k != fold)
                    .map(|(_, v)| v)
                    .collect();
                (self.subset(&train_idx), self.subset(&test_idx))
            })
            .collect()
    }

    /// Iterate `(features, target)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], f64)> {
        self.features
            .iter()
            .map(|f| f.as_slice())
            .zip(self.targets.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let features = (0..n).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let targets = (0..n).map(|i| i as f64).collect();
        Dataset::from_parts(features, targets)
    }

    #[test]
    fn construction_and_accessors() {
        let d = toy(5);
        assert_eq!(d.len(), 5);
        assert_eq!(d.width(), 2);
        assert!(!d.is_empty());
        assert!(Dataset::new().is_empty());
        assert_eq!(Dataset::new().width(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = Dataset::from_parts(vec![vec![1.0]], vec![]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_features_panic() {
        let _ = Dataset::from_parts(vec![vec![1.0], vec![1.0, 2.0]], vec![0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn push_checks_width() {
        let mut d = toy(2);
        d.push(vec![1.0], 0.0);
    }

    #[test]
    fn subset_allows_duplicates() {
        let d = toy(3);
        let s = d.subset(&[0, 0, 2]);
        assert_eq!(s.targets, vec![0.0, 0.0, 2.0]);
    }

    #[test]
    fn split_partitions_everything() {
        let d = toy(100);
        let (train, test) = d.split(0.7, 42);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        let mut all: Vec<f64> = train.targets.iter().chain(&test.targets).copied().collect();
        all.sort_by(f64::total_cmp);
        let expect: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy(50);
        let (a, _) = d.split(0.5, 7);
        let (b, _) = d.split(0.5, 7);
        assert_eq!(a.targets, b.targets);
        let (c, _) = d.split(0.5, 8);
        assert_ne!(a.targets, c.targets);
    }

    #[test]
    fn kfold_covers_each_sample_once_as_test() {
        let d = toy(20);
        let folds = d.kfold(4, 3);
        assert_eq!(folds.len(), 4);
        let mut seen: Vec<f64> = folds
            .iter()
            .flat_map(|(_, test)| test.targets.clone())
            .collect();
        seen.sort_by(f64::total_cmp);
        let expect: Vec<f64> = (0..20).map(|i| i as f64).collect();
        assert_eq!(seen, expect);
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 20);
        }
    }

    #[test]
    fn take_caps_at_len() {
        let d = toy(3);
        assert_eq!(d.take(10).len(), 3);
        assert_eq!(d.take(2).len(), 2);
    }
}
