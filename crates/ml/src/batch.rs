//! Batched, allocation-free evaluation of the tree ensembles.
//!
//! The serving hot path scores many feature rows per placement decision
//! (one per candidate server per colocation member). Walking an ensemble
//! one sample at a time re-reads every tree's node array per row AND stalls
//! on each row's dependent root-to-leaf load chain. The batched evaluators
//! here walk **tree-major** over a whole row batch (each tree's nodes stay
//! hot in cache across rows) with **interleaved lane traversal** (several
//! independent rows descend a tree in lockstep, keeping multiple node loads
//! in flight). Past [`PAR_ROW_THRESHOLD`] rows the batch is split into
//! tiles processed rayon-parallel, each tile still tree-major.
//!
//! Bit-identity contract: for every evaluator, the batched result of row
//! `i` is exactly `predict(rows.row(i))` bit for bit. Both the tree-major
//! loop and the row-parallel loop accumulate tree contributions in tree
//! order starting from `0.0`, which is the same float summation order as
//! the scalar `iter().map(|t| t.predict(x)).sum::<f64>()`.

use crate::tree::Tree;
use rayon::prelude::*;

/// Row count at and above which ensemble evaluation goes row-parallel.
pub const PAR_ROW_THRESHOLD: usize = 64;

/// A borrowed, row-major matrix of feature rows: `len × width` values in
/// one flat slice. This is the zero-copy batch input type — callers pack
/// rows into a reusable `Vec<f64>` and pass a `Rows` view of it.
#[derive(Debug, Clone, Copy)]
pub struct Rows<'a> {
    data: &'a [f64],
    width: usize,
}

impl<'a> Rows<'a> {
    /// View `data` as rows of `width` features each. `data.len()` must be
    /// a multiple of `width`.
    pub fn new(data: &'a [f64], width: usize) -> Rows<'a> {
        assert!(width > 0, "row width must be positive");
        assert!(
            data.len().is_multiple_of(width),
            "flat data length {} is not a multiple of row width {width}",
            data.len()
        );
        Rows { data, width }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len() / self.width
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Features per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The `i`-th row.
    pub fn row(&self, i: usize) -> &'a [f64] {
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// Iterate over rows in order.
    pub fn iter(&self) -> std::slice::ChunksExact<'a, f64> {
        self.data.chunks_exact(self.width)
    }
}

/// Clear `out` and size it to hold one value per row.
pub(crate) fn reset_out(out: &mut Vec<f64>, n: usize) {
    out.clear();
    out.resize(n, 0.0);
}

/// Tree-major over one tile of rows: each tree's nodes stay hot in cache
/// while its interleaved lane traversal walks every row of the tile.
/// Accumulation is in tree order starting from `0.0` — the scalar
/// `iter().map(|t| t.predict(x)).sum::<f64>()` order, bit for bit.
///
/// Below one traversal block ([`crate::tree::LANES`] rows) the interleaving
/// cannot engage and per-tree stores into `out` would round-trip memory per
/// tree, so tiny batches accumulate row-major in a register instead — the
/// same additions in the same order.
fn tree_major_sum(trees: &[Tree], rows: Rows<'_>, out: &mut [f64]) {
    if rows.len() < crate::tree::LANES {
        for (acc, x) in out.iter_mut().zip(rows.iter()) {
            let mut sum = 0.0;
            for tree in trees {
                sum += tree.predict(x);
            }
            *acc = sum;
        }
        return;
    }
    out.fill(0.0);
    for tree in trees {
        tree.accumulate_rows(rows, out);
    }
}

/// Sum of every tree's prediction per row, written into `out`
/// (`out[i] = Σ_t trees[t].predict(rows.row(i))`, accumulated in tree
/// order). One tree-major pass below the parallel threshold; above it the
/// batch is cut into tiles of [`PAR_ROW_THRESHOLD`] rows processed in
/// parallel, each tile still tree-major — locality inside a tile,
/// parallelism across tiles.
pub(crate) fn sum_trees_into(trees: &[Tree], rows: Rows<'_>, out: &mut [f64]) {
    debug_assert_eq!(rows.len(), out.len());
    if rows.len() >= PAR_ROW_THRESHOLD {
        let width = rows.width;
        out.par_chunks_mut(PAR_ROW_THRESHOLD)
            .zip(rows.data.chunks(PAR_ROW_THRESHOLD * width))
            .for_each(|(out_tile, data_tile)| {
                tree_major_sum(trees, Rows::new(data_tile, width), out_tile)
            });
    } else {
        tree_major_sum(trees, rows, out);
    }
}

/// Per-row prediction of a single tree, written into `out`.
pub(crate) fn single_tree_into(tree: &Tree, rows: Rows<'_>, out: &mut [f64]) {
    debug_assert_eq!(rows.len(), out.len());
    if rows.len() >= PAR_ROW_THRESHOLD {
        let width = rows.width;
        out.par_chunks_mut(PAR_ROW_THRESHOLD)
            .zip(rows.data.chunks(PAR_ROW_THRESHOLD * width))
            .for_each(|(out_tile, data_tile)| {
                tree.assign_rows(Rows::new(data_tile, width), out_tile)
            });
    } else {
        tree.assign_rows(rows, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_view_slices_correctly() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let rows = Rows::new(&data, 3);
        assert_eq!(rows.len(), 2);
        assert!(!rows.is_empty());
        assert_eq!(rows.width(), 3);
        assert_eq!(rows.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(rows.row(1), &[4.0, 5.0, 6.0]);
        let collected: Vec<&[f64]> = rows.iter().collect();
        assert_eq!(collected, vec![&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]);
    }

    #[test]
    fn empty_rows_are_allowed() {
        let rows = Rows::new(&[], 5);
        assert_eq!(rows.len(), 0);
        assert!(rows.is_empty());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn ragged_data_panics() {
        let data = [1.0, 2.0, 3.0];
        let _ = Rows::new(&data, 2);
    }
}

#[cfg(test)]
mod bit_identity_tests {
    use super::Rows;
    use crate::data::Dataset;
    use crate::forest::{ForestParams, RandomForestClassifier, RandomForestRegressor};
    use crate::gbdt::{GbdtClassifier, GbdtParams, GbrtRegressor};
    use crate::tree::{DecisionTreeClassifier, DecisionTreeRegressor, TreeParams};
    use crate::{Classifier, Regressor};
    use proptest::prelude::*;

    fn training_sets(ys: &[f64]) -> (Dataset, Dataset) {
        let n = ys.len();
        let features: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64, ((i * 7) % 13) as f64])
            .collect();
        let regression = Dataset::from_parts(features.clone(), ys.to_vec());
        let labels: Vec<f64> = ys.iter().map(|&y| f64::from(y > 0.0)).collect();
        let classification = Dataset::from_parts(features, labels);
        (regression, classification)
    }

    fn flat_probes(probes: &[(f64, f64)]) -> Vec<f64> {
        probes.iter().flat_map(|&(a, b)| [a, b]).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn batched_regressors_match_scalar_bit_for_bit(
            ys in proptest::collection::vec(-5.0f64..5.0, 16..40),
            probes in proptest::collection::vec((-2.0f64..2.0, -1.0f64..14.0), 1..24),
            seed in 0u64..1000,
        ) {
            let (regression, _) = training_sets(&ys);
            let flat = flat_probes(&probes);
            let rows = Rows::new(&flat, 2);
            let mut out = Vec::new();

            let dtr = DecisionTreeRegressor::fit(
                &regression,
                TreeParams { seed, ..TreeParams::default() },
            );
            dtr.predict_batch(rows, &mut out);
            for (i, &(a, b)) in probes.iter().enumerate() {
                prop_assert_eq!(out[i].to_bits(), dtr.predict(&[a, b]).to_bits());
            }

            let rf = RandomForestRegressor::fit(
                &regression,
                ForestParams { n_trees: 7, seed, ..ForestParams::default() },
            );
            rf.predict_batch(rows, &mut out);
            for (i, &(a, b)) in probes.iter().enumerate() {
                prop_assert_eq!(out[i].to_bits(), rf.predict(&[a, b]).to_bits());
            }

            let gbrt = GbrtRegressor::fit(
                &regression,
                GbdtParams { n_estimators: 12, seed, ..GbdtParams::default() },
            );
            gbrt.predict_batch(rows, &mut out);
            for (i, &(a, b)) in probes.iter().enumerate() {
                prop_assert_eq!(out[i].to_bits(), gbrt.predict(&[a, b]).to_bits());
            }
        }

        #[test]
        fn batched_classifiers_match_scalar_bit_for_bit(
            ys in proptest::collection::vec(-5.0f64..5.0, 16..40),
            probes in proptest::collection::vec((-2.0f64..2.0, -1.0f64..14.0), 1..24),
            seed in 0u64..1000,
        ) {
            let (_, classification) = training_sets(&ys);
            let flat = flat_probes(&probes);
            let rows = Rows::new(&flat, 2);
            let mut out = Vec::new();

            let dtc = DecisionTreeClassifier::fit(
                &classification,
                TreeParams { seed, ..TreeParams::default() },
            );
            dtc.score_batch(rows, &mut out);
            for (i, &(a, b)) in probes.iter().enumerate() {
                prop_assert_eq!(out[i].to_bits(), dtc.score(&[a, b]).to_bits());
            }

            let rfc = RandomForestClassifier::fit(
                &classification,
                ForestParams { n_trees: 7, seed, ..ForestParams::default() },
            );
            rfc.score_batch(rows, &mut out);
            for (i, &(a, b)) in probes.iter().enumerate() {
                prop_assert_eq!(out[i].to_bits(), rfc.score(&[a, b]).to_bits());
            }

            let gbdt = GbdtClassifier::fit(
                &classification,
                GbdtParams { n_estimators: 12, seed, ..GbdtParams::default() },
            );
            gbdt.score_batch(rows, &mut out);
            for (i, &(a, b)) in probes.iter().enumerate() {
                prop_assert_eq!(out[i].to_bits(), gbdt.score(&[a, b]).to_bits());
            }
        }
    }

    #[test]
    fn row_parallel_path_matches_scalar_bit_for_bit() {
        // Enough probes to cross PAR_ROW_THRESHOLD and exercise the
        // parallel branch of both ensemble evaluators.
        let ys: Vec<f64> = (0..40).map(|i| ((i * 29) % 17) as f64 - 8.0).collect();
        let (regression, _) = training_sets(&ys);
        let probes: Vec<(f64, f64)> = (0..(2 * super::PAR_ROW_THRESHOLD))
            .map(|i| (i as f64 / 50.0 - 0.5, ((i * 5) % 13) as f64))
            .collect();
        let flat = flat_probes(&probes);
        let rows = Rows::new(&flat, 2);
        let mut out = Vec::new();

        let gbrt = GbrtRegressor::fit(
            &regression,
            GbdtParams {
                n_estimators: 20,
                seed: 7,
                ..GbdtParams::default()
            },
        );
        gbrt.predict_batch(rows, &mut out);
        assert_eq!(out.len(), probes.len());
        for (i, &(a, b)) in probes.iter().enumerate() {
            assert_eq!(out[i].to_bits(), gbrt.predict(&[a, b]).to_bits());
        }

        let dtr = DecisionTreeRegressor::fit(&regression, TreeParams::default());
        dtr.predict_batch(rows, &mut out);
        for (i, &(a, b)) in probes.iter().enumerate() {
            assert_eq!(out[i].to_bits(), dtr.predict(&[a, b]).to_bits());
        }
    }
}
