//! # gaugur-ml — from-scratch machine learning for the GAugur reproduction
//!
//! The paper builds its interference models with "several popular machine
//! learning algorithms, including Decision Tree Classifier/Regression
//! (DTC/DTR), Random Forest (RF), Gradient Boost Decision/Regression Tree
//! (GBDT/GBRT) and Support Vector Clustering/Regression (SVC/SVR)"
//! (Section 3.4). No maintained pure-Rust equivalent of that stack is
//! available in the sanctioned offline dependency set, so this crate
//! implements all of them from first principles:
//!
//! * [`tree`] — CART decision trees (Gini classification, variance-reduction
//!   regression),
//! * [`forest`] — bagged random forests with per-split feature subsampling,
//!   trained in parallel with Rayon,
//! * [`gbdt`] — gradient-boosted trees (squared loss for regression,
//!   logistic loss for binary classification),
//! * [`svm`] — kernel SVC (SMO) and ε-SVR (pairwise dual coordinate
//!   descent), with RBF and linear kernels,
//! * [`linear`] — ordinary/ridge least squares via normal equations,
//! * [`mf`] — ALS low-rank matrix completion (for collaborative-filtering
//!   profile completion),
//! * [`curvefit`] — the 3-parameter sigmoid fit used by the Sigmoid baseline,
//! * [`data`], [`scale`], [`metrics`] — datasets, standardization and the
//!   evaluation metrics the paper reports (relative error, accuracy,
//!   precision, recall, error CDFs).
//!
//! Everything is deterministic given explicit seeds.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod curvefit;
pub mod data;
pub mod forest;
pub mod gbdt;
pub mod gridsearch;
pub mod linear;
pub mod metrics;
pub mod mf;
pub mod scale;
pub mod svm;
pub mod tree;

pub use batch::{Rows, PAR_ROW_THRESHOLD};
pub use data::Dataset;
pub use forest::{RandomForestClassifier, RandomForestRegressor};
pub use gbdt::{GbdtClassifier, GbrtRegressor};
pub use gridsearch::{cross_val_error, grid_search};
pub use linear::LinearRegression;
pub use mf::{MatrixFactorization, MfParams};
pub use scale::StandardScaler;
pub use svm::{Kernel, SvmClassifier, SvmRegressor};
pub use tree::{DecisionTreeClassifier, DecisionTreeRegressor, TreeParams};

/// A trained regression model: maps a feature vector to a real value.
pub trait Regressor: Send + Sync {
    /// Predict the target for one feature vector.
    fn predict(&self, x: &[f64]) -> f64;

    /// Predict a batch.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Predict a flat row-major batch into a reusable output buffer. The
    /// default is a per-row loop; the tree ensembles override it with
    /// tree-major batched evaluation. Always bit-identical to calling
    /// [`Regressor::predict`] per row.
    fn predict_rows(&self, rows: Rows<'_>, out: &mut Vec<f64>) {
        out.clear();
        out.extend(rows.iter().map(|x| self.predict(x)));
    }
}

/// A trained binary classifier: maps a feature vector to a boolean decision
/// plus a real-valued score (probability-like, higher = more positive).
pub trait Classifier: Send + Sync {
    /// Score in favour of the positive class (0.5 is the decision threshold
    /// where meaningful).
    fn score(&self, x: &[f64]) -> f64;

    /// Hard decision.
    fn classify(&self, x: &[f64]) -> bool {
        self.score(x) >= 0.5
    }

    /// Classify a batch.
    fn classify_batch(&self, xs: &[Vec<f64>]) -> Vec<bool> {
        xs.iter().map(|x| self.classify(x)).collect()
    }

    /// Score a flat row-major batch into a reusable output buffer. The
    /// default is a per-row loop; the tree ensembles override it with
    /// tree-major batched evaluation. Always bit-identical to calling
    /// [`Classifier::score`] per row.
    fn score_rows(&self, rows: Rows<'_>, out: &mut Vec<f64>) {
        out.clear();
        out.extend(rows.iter().map(|x| self.score(x)));
    }
}
