//! End-to-end daemon tests: real TCP on an ephemeral port, real worker
//! threads, a real trained model. Covers the placement invariants, capacity
//! reclamation on departure, overload pushback, stats reconciliation and
//! hot-reload under live load.

use gaugur_core::GAugur;
use gaugur_gamesim::rng::rng_for;
use gaugur_gamesim::{GameCatalog, GameId, Resolution, Server};
use gaugur_sched::maxfps::MAX_PER_SERVER;
use gaugur_serve::wire::{read_frame, write_frame, Request, Response};
use gaugur_serve::{
    daemon, load, BatchPlaceResult, Client, ClientError, DaemonConfig, LoadConfig, ModelHandle,
};
use rand::Rng;
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

const N_GAMES: u32 = 8;

/// One trained model for the whole test binary; training dominates runtime.
fn model() -> GAugur {
    static MODEL: OnceLock<GAugur> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let server = Server::reference(7);
            let catalog = GameCatalog::generate(42, N_GAMES as usize);
            let config = gaugur_core::GAugurConfig {
                plan: gaugur_core::ColocationPlan {
                    pairs: 40,
                    triples: 10,
                    quads: 5,
                    seed: 3,
                },
                ..Default::default()
            };
            GAugur::build(&server, &catalog, config)
        })
        .clone()
}

fn quiet_config() -> DaemonConfig {
    DaemonConfig {
        print_stats_on_shutdown: false,
        ..Default::default()
    }
}

#[test]
fn two_hundred_requests_respect_fleet_invariants_and_stats_reconcile() {
    let handle = daemon::start(
        DaemonConfig {
            n_servers: 3,
            ..quiet_config()
        },
        ModelHandle::from_model(model()),
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // Client-side mirror of the fleet, rebuilt purely from daemon replies.
    let mut mirror: Vec<Vec<(u64, GameId)>> = vec![Vec::new(); 3];
    let mut sessions: Vec<u64> = Vec::new();
    let mut rng = rng_for(0xE2E, &[1]);
    let (mut placed_n, mut rejected_n, mut departed_n) = (0u64, 0u64, 0u64);

    for _ in 0..200 {
        let depart = !sessions.is_empty() && rng.gen_bool(0.4);
        if depart {
            let session = sessions.swap_remove(rng.gen_range(0..sessions.len()));
            let server = client.depart(session).unwrap();
            let slot = mirror[server]
                .iter()
                .position(|&(id, _)| id == session)
                .expect("daemon departed a session from the server we placed it on");
            mirror[server].remove(slot);
            departed_n += 1;
            continue;
        }
        let game = GameId(rng.gen_range(0..N_GAMES));
        match client.place(game, Resolution::Fhd1080) {
            Ok(p) => {
                assert!(p.server < 3);
                // The invariants must have held *before* this admission.
                assert!(mirror[p.server].len() < MAX_PER_SERVER);
                assert!(mirror[p.server].iter().all(|&(_, g)| g != game));
                mirror[p.server].push((p.session, game));
                sessions.push(p.session);
                placed_n += 1;
            }
            Err(ClientError::Rejected { .. }) => {
                // Rejection must mean no server could legally take the game.
                for contents in &mirror {
                    let eligible =
                        contents.len() < MAX_PER_SERVER && contents.iter().all(|&(_, g)| g != game);
                    assert!(!eligible, "rejected {game:?} with an eligible server");
                }
                rejected_n += 1;
            }
            Err(e) => panic!("unexpected place error: {e}"),
        }
    }

    // Drain, then reconcile daemon stats against our own counts.
    for session in sessions.drain(..) {
        client.depart(session).unwrap();
        departed_n += 1;
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.active_sessions, 0);
    assert_eq!(stats.per_request["place"].ok, placed_n + rejected_n);
    assert_eq!(stats.per_request["place"].errors, 0);
    assert_eq!(stats.per_request["depart"].ok, departed_n);
    assert!(stats.cache_hits + stats.cache_misses > 0);

    let final_stats = handle.shutdown();
    assert_eq!(final_stats.per_request["place"].ok, placed_n + rejected_n);
}

#[test]
fn departures_free_capacity() {
    let handle = daemon::start(
        DaemonConfig {
            n_servers: 1,
            ..quiet_config()
        },
        ModelHandle::from_model(model()),
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let mut placed = HashMap::new();
    for g in 0..MAX_PER_SERVER as u32 {
        let p = client.place(GameId(g), Resolution::Fhd1080).unwrap();
        assert_eq!(p.server, 0);
        placed.insert(g, p.session);
    }
    // Server full: a fresh game has nowhere to go.
    match client.place(GameId(6), Resolution::Fhd1080) {
        Err(ClientError::Rejected { .. }) => {}
        other => panic!("expected rejection on a full fleet, got {other:?}"),
    }
    // One departure frees exactly one slot.
    client.depart(placed.remove(&0).unwrap()).unwrap();
    let p = client.place(GameId(6), Resolution::Fhd1080).unwrap();
    assert_eq!(p.server, 0);

    // Duplicate-game exclusion also rejects even with free slots.
    client.depart(p.session).unwrap();
    match client.place(GameId(1), Resolution::Fhd1080) {
        Err(ClientError::Rejected { .. }) => {}
        other => panic!("expected duplicate-game rejection, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn overload_rejects_with_backoff_instead_of_dropping() {
    let handle = daemon::start(
        DaemonConfig {
            workers: 1,
            queue_capacity: 1,
            ..quiet_config()
        },
        ModelHandle::from_model(model()),
    )
    .unwrap();
    let addr = handle.local_addr();

    // One worker, queue of one: the first connection parks the worker (a
    // served connection is held until EOF), the second fills the queue, and
    // every further connection must be answered `Overloaded` — not dropped.
    let mut streams: Vec<TcpStream> = (0..6)
        .map(|_| {
            let s = TcpStream::connect(addr).unwrap();
            std::thread::sleep(Duration::from_millis(20));
            s
        })
        .collect();
    for s in &mut streams {
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Streams already rejected by the acceptor are closed server-side;
        // writing to them may fail with EPIPE, which is fine — the
        // Overloaded frame is still waiting in the receive buffer.
        let _ = write_frame(s, &Request::Stats);
    }

    // The head connection is being served and must get a real reply.
    match read_frame::<_, Response>(&mut streams[0]).unwrap() {
        Response::Stats(_) => {}
        other => panic!("head connection expected stats, got {other:?}"),
    }
    // The tail connections must each hold an Overloaded frame with a hint.
    let mut overloaded = 0;
    for s in streams[2..].iter_mut() {
        if let Ok(Response::Overloaded { retry_after_ms }) = read_frame::<_, Response>(s) {
            assert!(retry_after_ms > 0);
            overloaded += 1;
        }
    }
    assert!(overloaded >= 1, "no connection was pushed back");

    // Closing the head connection lets the queued one drain and be served.
    drop(streams.remove(0));
    match read_frame::<_, Response>(&mut streams[0]).unwrap() {
        Response::Stats(stats) => assert!(stats.overloaded_rejections >= overloaded),
        other => panic!("queued connection expected stats, got {other:?}"),
    }
    drop(streams);
    handle.shutdown();
}

#[test]
fn hot_reload_under_live_load_fails_no_inflight_request() {
    let dir = std::env::temp_dir().join(format!("gaugur-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let artifact = dir.join("model.json");
    model().save_json(&artifact).unwrap();

    let handle = daemon::start(
        DaemonConfig {
            n_servers: 16,
            ..quiet_config()
        },
        ModelHandle::load(&artifact).unwrap(),
    )
    .unwrap();
    let addr = handle.local_addr().to_string();

    let driver = std::thread::spawn({
        let addr = addr.clone();
        move || {
            load::run(&LoadConfig {
                addr,
                seed: 11,
                connections: 3,
                requests: 300,
                rate: f64::INFINITY,
                mean_session_arrivals: 6.0,
                games: (0..N_GAMES).map(GameId).collect(),
                resolutions: vec![Resolution::Hd720, Resolution::Fhd1080],
                qos: 60.0,
                batch: 1,
                report_outcomes: false,
                observe_noise: 0.0,
                drift: 1.0,
                verify_trace: false,
                expect_shards: None,
                expect_slo: None,
            })
        }
    });

    // Hammer reloads while the driver is mid-flight.
    let mut admin = Client::connect(&*addr).unwrap();
    let mut last_version = 1;
    for _ in 0..5 {
        std::thread::sleep(Duration::from_millis(15));
        let v = admin.reload(None).unwrap();
        assert!(v > last_version);
        last_version = v;
    }

    let report = driver.join().unwrap();
    // The acceptance bar: reloading must never fail an in-flight request.
    assert_eq!(report.errors, 0, "reload failed in-flight requests");
    assert_eq!(report.placed + report.rejected, 300);
    assert_eq!(report.placed, report.departed);

    let stats = admin.stats().unwrap();
    assert_eq!(stats.active_sessions, 0);
    assert_eq!(stats.model_version, last_version);
    assert_eq!(stats.per_request["reload_model"].ok, 5);
    assert_eq!(
        stats.per_request["place"].ok,
        report.placed + report.rejected
    );

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_place_batch_depart_stress_reconciles() {
    let handle = daemon::start(
        DaemonConfig {
            n_servers: 8,
            workers: 4,
            ..quiet_config()
        },
        ModelHandle::from_model(model()),
    )
    .unwrap();
    let addr = handle.local_addr();

    const THREADS: usize = 4;
    const ROUNDS: usize = 60;

    // (placed, rejected, departed, place_calls, batch_calls) per thread.
    let outcomes: Vec<(u64, u64, u64, u64, u64)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut rng = rng_for(0x57E55, &[t as u64]);
                    let mut sessions: Vec<u64> = Vec::new();
                    let (mut placed, mut rejected, mut departed) = (0u64, 0u64, 0u64);
                    let (mut place_calls, mut batch_calls) = (0u64, 0u64);
                    for _ in 0..ROUNDS {
                        match rng.gen_range(0..3u32) {
                            0 => {
                                place_calls += 1;
                                let game = GameId(rng.gen_range(0..N_GAMES));
                                match client.place(game, Resolution::Fhd1080) {
                                    Ok(p) => {
                                        sessions.push(p.session);
                                        placed += 1;
                                    }
                                    Err(ClientError::Rejected { .. }) => rejected += 1,
                                    Err(e) => panic!("place failed: {e}"),
                                }
                            }
                            1 => {
                                batch_calls += 1;
                                let burst: Vec<_> = (0..4)
                                    .map(|_| {
                                        (GameId(rng.gen_range(0..N_GAMES)), Resolution::Fhd1080)
                                    })
                                    .collect();
                                let (_, results) = client.place_batch(&burst).unwrap();
                                assert_eq!(results.len(), burst.len());
                                for result in results {
                                    match result {
                                        BatchPlaceResult::Placed { session, .. } => {
                                            sessions.push(session);
                                            placed += 1;
                                        }
                                        BatchPlaceResult::Rejected { .. } => rejected += 1,
                                    }
                                }
                            }
                            _ => {
                                if sessions.is_empty() {
                                    continue;
                                }
                                let s = sessions.swap_remove(rng.gen_range(0..sessions.len()));
                                client.depart(s).unwrap();
                                departed += 1;
                            }
                        }
                    }
                    // Quiesce: every session this thread still owns departs.
                    for s in sessions.drain(..) {
                        client.depart(s).unwrap();
                        departed += 1;
                    }
                    (placed, rejected, departed, place_calls, batch_calls)
                })
            })
            .collect();
        workers.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // The daemon's internal bookkeeping survived the interleaving.
    handle.check_invariants();

    let placed: u64 = outcomes.iter().map(|o| o.0).sum();
    let departed: u64 = outcomes.iter().map(|o| o.2).sum();
    let place_calls: u64 = outcomes.iter().map(|o| o.3).sum();
    let batch_calls: u64 = outcomes.iter().map(|o| o.4).sum();
    assert_eq!(placed, departed, "quiesce departed every placement");

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.active_sessions, 0, "leaked sessions after quiesce");
    assert_eq!(stats.per_request["place"].ok, place_calls);
    assert_eq!(stats.per_request["place"].errors, 0);
    assert_eq!(stats.per_request["place_batch"].ok, batch_calls);
    assert_eq!(stats.per_request["place_batch"].errors, 0);
    assert_eq!(stats.per_request["depart"].ok, departed);
    assert_eq!(stats.per_request["depart"].errors, 0);
    assert!(
        stats.score_hits + stats.score_misses > 0,
        "score cache never consulted"
    );
    handle.shutdown();
}

#[test]
fn batched_load_driver_reconciles_like_singles() {
    let handle = daemon::start(
        DaemonConfig {
            n_servers: 12,
            ..quiet_config()
        },
        ModelHandle::from_model(model()),
    )
    .unwrap();
    let report = load::run(&LoadConfig {
        addr: handle.local_addr().to_string(),
        seed: 23,
        connections: 2,
        requests: 240,
        games: (0..N_GAMES).map(GameId).collect(),
        batch: 8,
        ..LoadConfig::default()
    });
    assert_eq!(report.errors, 0, "{report}");
    assert_eq!(report.placed + report.rejected, 240);
    assert_eq!(report.placed, report.departed);
    // One latency frame per batch, so p50 exists but throughput counts arrivals.
    assert!(report.achieved_rps > 0.0);
    let stats = handle.shutdown();
    assert_eq!(stats.active_sessions, 0);
    assert_eq!(stats.per_request["place_batch"].ok, 240 / 8);
}

#[test]
fn departing_an_unknown_session_is_a_typed_counted_error() {
    let handle = daemon::start(
        DaemonConfig {
            n_servers: 2,
            ..quiet_config()
        },
        ModelHandle::from_model(model()),
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // Never-issued id: typed, not a generic protocol error.
    match client.depart(424242) {
        Err(ClientError::UnknownSession { session: 424242 }) => {}
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    // Double-depart: the first succeeds, the second is typed too.
    let p = client.place(GameId(0), Resolution::Fhd1080).unwrap();
    client.depart(p.session).unwrap();
    match client.depart(p.session) {
        Err(ClientError::UnknownSession { session }) => assert_eq!(session, p.session),
        other => panic!("expected UnknownSession on double-depart, got {other:?}"),
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.depart_unknown_sessions, 2);
    assert_eq!(stats.per_request["depart"].ok, 1);
    assert_eq!(stats.per_request["depart"].errors, 2);
    assert_eq!(stats.active_sessions, 0);
    handle.shutdown();
}

#[test]
fn sharded_daemon_stress_reconciles_and_conserves_per_shard() {
    // The multi-shard two-phase admit under real contention: 4 workers
    // hammer a 4-shard fleet with places, batches and departs. Whatever
    // interleaving (including lost admit races and fallbacks) occurs, the
    // quiesced fleet must reconcile globally AND per shard.
    let handle = daemon::start(
        DaemonConfig {
            n_servers: 8,
            shards: 4,
            workers: 4,
            ..quiet_config()
        },
        ModelHandle::from_model(model()),
    )
    .unwrap();
    let addr = handle.local_addr();

    const THREADS: usize = 4;
    const ROUNDS: usize = 60;
    let outcomes: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut rng = rng_for(0x5AD5, &[t as u64]);
                    let mut sessions: Vec<u64> = Vec::new();
                    let (mut placed, mut departed) = (0u64, 0u64);
                    for _ in 0..ROUNDS {
                        match rng.gen_range(0..3u32) {
                            0 => {
                                let game = GameId(rng.gen_range(0..N_GAMES));
                                match client.place(game, Resolution::Fhd1080) {
                                    Ok(p) => {
                                        assert!(p.server < 8, "global index on the wire");
                                        sessions.push(p.session);
                                        placed += 1;
                                    }
                                    Err(ClientError::Rejected { .. }) => {}
                                    Err(e) => panic!("place failed: {e}"),
                                }
                            }
                            1 => {
                                let burst: Vec<_> = (0..3)
                                    .map(|_| {
                                        (GameId(rng.gen_range(0..N_GAMES)), Resolution::Fhd1080)
                                    })
                                    .collect();
                                let (_, results) = client.place_batch(&burst).unwrap();
                                for result in results {
                                    if let BatchPlaceResult::Placed { session, .. } = result {
                                        sessions.push(session);
                                        placed += 1;
                                    }
                                }
                            }
                            _ => {
                                if sessions.is_empty() {
                                    continue;
                                }
                                let s = sessions.swap_remove(rng.gen_range(0..sessions.len()));
                                client.depart(s).unwrap();
                                departed += 1;
                            }
                        }
                    }
                    for s in sessions.drain(..) {
                        client.depart(s).unwrap();
                        departed += 1;
                    }
                    (placed, departed)
                })
            })
            .collect();
        workers.into_iter().map(|h| h.join().unwrap()).collect()
    });

    handle.check_invariants();
    let placed: u64 = outcomes.iter().map(|o| o.0).sum();
    let departed: u64 = outcomes.iter().map(|o| o.1).sum();
    assert_eq!(placed, departed);

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.shards, 4);
    assert_eq!(stats.shard_active_sessions.len(), 4);
    assert_eq!(stats.shard_active_sessions.iter().sum::<u64>(), 0);
    assert_eq!(stats.active_sessions, 0, "leaked sessions after quiesce");
    assert_eq!(stats.shard_misrouted_sessions, 0);
    assert_eq!(stats.depart_unknown_sessions, 0);
    assert_eq!(stats.per_request["depart"].errors, 0);
    handle.shutdown();
}

#[test]
fn sharded_load_driver_verifies_layout_and_tracing() {
    let handle = daemon::start(
        DaemonConfig {
            n_servers: 12,
            shards: 4,
            ..quiet_config()
        },
        ModelHandle::from_model(model()),
    )
    .unwrap();
    let report = load::run(&LoadConfig {
        addr: handle.local_addr().to_string(),
        seed: 31,
        connections: 4,
        requests: 200,
        games: (0..N_GAMES).map(GameId).collect(),
        verify_trace: true,
        expect_shards: Some(4),
        expect_slo: None,
        ..LoadConfig::default()
    });
    assert_eq!(report.errors, 0, "{report}");
    assert_eq!(report.trace_violation, None, "{report}");
    assert_eq!(report.shard_violation, None, "{report}");
    assert_eq!(report.shards_seen, 4);
    assert!(report.traced_requests > 0);
    let stats = handle.shutdown();
    assert_eq!(stats.active_sessions, 0);
}

/// Poll stats on fresh connections until `pred` holds (rollbacks race the
/// client-visible EOF, so assertions on them must wait).
fn await_stats(
    addr: std::net::SocketAddr,
    pred: impl Fn(&gaugur_serve::StatsSnapshot) -> bool,
) -> gaugur_serve::StatsSnapshot {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let mut client = Client::connect(addr).unwrap();
        let stats = client.stats().unwrap();
        if pred(&stats) || std::time::Instant::now() > deadline {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn a_dropped_reply_rolls_the_admission_back() {
    use gaugur_serve::{FaultInjector, FaultPlan};
    let plan = FaultPlan {
        drop_reply: 1.0,
        ..FaultPlan::quiet(1)
    };
    let handle = daemon::start(
        DaemonConfig {
            n_servers: 2,
            fault: Some(std::sync::Arc::new(FaultInjector::new(plan))),
            ..quiet_config()
        },
        ModelHandle::from_model(model()),
    )
    .unwrap();
    let addr = handle.local_addr();

    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(5))).unwrap();
    match client.place(GameId(0), Resolution::Fhd1080) {
        Err(e) if e.is_ambiguous() => {}
        other => panic!("expected an ambiguous transport error, got {other:?}"),
    }

    // The daemon admitted the session, failed the reply, and must depart it
    // again — the client never learned the id, so anything else is a leak.
    let stats = await_stats(addr, |s| s.placements_rolled_back == 1);
    assert_eq!(stats.placements_admitted, 1);
    assert_eq!(stats.placements_rolled_back, 1);
    assert_eq!(
        stats.active_sessions, 0,
        "leaked a session the client never saw"
    );
    handle.shutdown();
}

#[test]
fn a_torn_batch_reply_rolls_back_every_admission_in_the_batch() {
    use gaugur_serve::{FaultInjector, FaultPlan};
    let plan = FaultPlan {
        torn_reply: 1.0,
        ..FaultPlan::quiet(2)
    };
    let handle = daemon::start(
        DaemonConfig {
            n_servers: 4,
            fault: Some(std::sync::Arc::new(FaultInjector::new(plan))),
            ..quiet_config()
        },
        ModelHandle::from_model(model()),
    )
    .unwrap();
    let addr = handle.local_addr();

    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(5))).unwrap();
    let burst = [
        (GameId(0), Resolution::Fhd1080),
        (GameId(1), Resolution::Fhd1080),
        (GameId(2), Resolution::Hd720),
    ];
    match client.place_batch(&burst) {
        Err(ClientError::TornReply(_)) => {}
        other => panic!("expected TornReply, got {other:?}"),
    }

    // All three admissions of the half-written reply must unwind, newest
    // first, leaving the fleet exactly as before the batch.
    let stats = await_stats(addr, |s| s.placements_rolled_back == 3);
    assert_eq!(stats.placements_admitted, 3);
    assert_eq!(stats.placements_rolled_back, 3);
    assert_eq!(stats.active_sessions, 0);

    // The fleet is clean enough to take the identical batch again (every
    // reply tears under this plan, so it unwinds again): admissions and
    // rollbacks stay in lockstep and nothing accumulates.
    let mut retry = Client::connect(addr).unwrap();
    retry.set_timeout(Some(Duration::from_secs(5))).unwrap();
    match retry.place_batch(&burst) {
        Err(ClientError::TornReply(_)) => {}
        other => panic!("expected TornReply on the retry, got {other:?}"),
    }
    let stats = await_stats(addr, |s| s.placements_rolled_back == 6);
    assert_eq!(stats.placements_admitted, 6);
    assert_eq!(stats.placements_rolled_back, 6);
    assert_eq!(stats.active_sessions, 0);
    handle.shutdown();
}

#[test]
fn frames_above_the_configured_cap_get_a_typed_error_then_close() {
    let handle = daemon::start(
        DaemonConfig {
            max_frame_len: 64,
            ..quiet_config()
        },
        ModelHandle::from_model(model()),
    )
    .unwrap();
    let addr = handle.local_addr();

    // Small control frames still fit under the tightened cap.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.stats().unwrap().malformed_frames, 0);
    drop(client);

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    use std::io::{Read as _, Write as _};
    // A header declaring one byte over the cap: rejected before allocation,
    // answered with a typed error, then the connection is cut (no resync is
    // possible after a length violation).
    stream.write_all(&65u32.to_be_bytes()).unwrap();
    match read_frame::<_, Response>(&mut stream).unwrap() {
        Response::Error { message } => {
            assert!(message.contains("exceeds"), "unhelpful error: {message}")
        }
        other => panic!("expected a typed error, got {other:?}"),
    }
    let mut buf = [0u8; 16];
    assert_eq!(
        stream.read(&mut buf).unwrap(),
        0,
        "daemon kept a dead stream"
    );

    let stats = await_stats(addr, |s| s.malformed_frames == 1);
    assert_eq!(stats.malformed_frames, 1);
    handle.shutdown();
}

#[test]
fn the_read_deadline_cuts_a_stalled_half_frame() {
    let handle = daemon::start(
        DaemonConfig {
            read_timeout: Duration::from_millis(300),
            ..quiet_config()
        },
        ModelHandle::from_model(model()),
    )
    .unwrap();

    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    use std::io::{Read as _, Write as _};
    // A header promising 100 bytes, then silence: only the daemon's read
    // deadline can end this connection, and it must.
    stream.write_all(&100u32.to_be_bytes()).unwrap();
    stream.write_all(b"{\"partial\":").unwrap();
    stream.flush().unwrap();
    let started = std::time::Instant::now();
    let mut buf = [0u8; 16];
    assert_eq!(
        stream.read(&mut buf).unwrap(),
        0,
        "daemon never cut the stalled connection"
    );
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "deadline took {:?}",
        started.elapsed()
    );
    handle.shutdown();
}

#[test]
fn shutdown_request_over_the_wire_stops_the_daemon() {
    let handle = daemon::start(quiet_config(), ModelHandle::from_model(model())).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.place(GameId(0), Resolution::Fhd1080).unwrap();
    client.shutdown().unwrap();
    let stats = handle.wait();
    assert_eq!(stats.per_request["place"].ok, 1);
    assert_eq!(stats.per_request["shutdown"].ok, 1);
}

#[test]
fn metrics_scrape_exposes_stage_timings_that_reconcile() {
    let handle = daemon::start(quiet_config(), ModelHandle::from_model(model())).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // A small mixed workload so every request stage has real samples.
    let mut sessions = Vec::new();
    for g in 0..4 {
        sessions.push(
            client
                .place(GameId(g), Resolution::Fhd1080)
                .unwrap()
                .session,
        );
    }
    client
        .predict(GameId(5), Resolution::Fhd1080, &[], 60.0)
        .unwrap();
    for s in sessions {
        client.depart(s).unwrap();
    }

    let text = client.metrics().unwrap();
    for needle in [
        "# TYPE gaugur_requests_total counter",
        "# TYPE gaugur_stage_duration_us histogram",
        "gaugur_requests_total{kind=\"place\",outcome=\"ok\"} 4",
        "gaugur_stage_duration_us_count{stage=\"place\"}",
        "gaugur_stage_duration_us_bucket{stage=\"decode\",le=\"+Inf\"}",
        "gaugur_active_sessions 0",
    ] {
        assert!(
            text.contains(needle),
            "exposition missing {needle:?}:\n{text}"
        );
    }

    // The snapshot behind the exposition satisfies the stage-accounting
    // invariant at this quiesced observation point, and a second scrape sees
    // counters that only moved forward.
    let snap = client.stats().unwrap();
    gaugur_serve::verify_stage_accounting(&snap).unwrap();
    let again = client.stats().unwrap();
    for (kind, rs) in &snap.per_request {
        assert!(
            again.per_request[kind].total() >= rs.total(),
            "{kind} went backwards"
        );
    }

    handle.shutdown();
}

#[test]
fn drifted_outcomes_feed_a_retrain_that_lowers_the_windowed_error() {
    // The closed loop end to end: the "real" environment delivers a constant
    // fraction of what the seed model predicts; outcome reports feed the
    // daemon's feedback buffer, a triggered retrain warm-starts on them and
    // hot-swaps the refreshed artifact, and the windowed relative error over
    // fresh reports must come down afterwards.
    const DRIFT: f64 = 0.8;
    let truth = model(); // frozen copy for computing ground-truth FPS
    let handle = daemon::start(
        DaemonConfig {
            // One server: the second placement of each round is forced to
            // colocate, so its prediction runs through the regression model
            // (solo placements short-circuit to the profiled solo FPS and
            // can never improve with retraining).
            n_servers: 1,
            feedback: gaugur_serve::FeedbackConfig {
                window: 16,
                min_retrain_samples: 16,
                auto_retrain: false,
                ..Default::default()
            },
            ..quiet_config()
        },
        ModelHandle::from_model(model()),
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let res = Resolution::Fhd1080;
    let mut rng = rng_for(0xFEED, &[1]);

    // One phase = 20 rounds of: place a session, colocate a second beside
    // it, report the second one's observed FPS, then drain both. Reporting
    // before the fleet changes keeps the report's predicted FPS consistent
    // with the co-runner set the daemon resolves at ingest time.
    let phase = |client: &mut Client, rng: &mut rand_chacha::ChaCha8Rng| {
        for _ in 0..20 {
            let ga = GameId(rng.gen_range(0..N_GAMES));
            let gb = loop {
                let g = rng.gen_range(0..N_GAMES);
                if g != ga.0 {
                    break GameId(g);
                }
            };
            let pa = client.place(ga, res).unwrap();
            let pb = client.place(gb, res).unwrap();
            assert_eq!(pb.server, pa.server, "one server: must colocate");
            let (accepted, _, dropped) = client
                .report_outcome(gaugur_serve::OutcomeReport {
                    session: pb.session,
                    observed_fps: DRIFT * truth.predict_fps((gb, res), &[(ga, res)]),
                    predicted_fps: pb.predicted_fps,
                    model_version: pb.model_version,
                })
                .unwrap();
            assert_eq!((accepted, dropped), (1, 0));
            client.depart(pb.session).unwrap();
            client.depart(pa.session).unwrap();
        }
    };

    phase(&mut client, &mut rng);
    let pre = client.stats().unwrap();
    assert_eq!(pre.feedback_accepted, 20);
    assert_eq!(pre.feedback_dropped, 0);
    assert!(
        pre.windowed_mae > 0.15,
        "the drifted environment should show up as windowed error, got {}",
        pre.windowed_mae
    );

    assert!(client.trigger_retrain(None, None).unwrap());
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let settled = loop {
        let snap = client.stats().unwrap();
        if snap.retrains_ok + snap.retrains_failed > 0 {
            break snap;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "retrain did not settle"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(settled.retrains_ok, 1, "retrain over 20 outcomes failed");
    assert_eq!(
        settled.model_version, 2,
        "retrain must publish a new version"
    );
    assert_eq!(settled.last_retrain_samples, 20);
    // A successful retrain clears the *whole* drift state, sliding window
    // included — before any fresh report arrives, the windowed MAE must
    // read zero rather than keep echoing the replaced model's errors.
    assert_eq!(
        settled.windowed_mae, 0.0,
        "windowed MAE still reflects pre-retrain errors after the retrain"
    );
    assert_eq!(settled.drift_score, 0.0);

    // Fresh reports against the retrained model; the window (16) is smaller
    // than one phase's 20 reports, so the post snapshot is all-new data.
    phase(&mut client, &mut rng);
    let post = client.stats().unwrap();
    assert_eq!(post.feedback_dropped, 0);
    assert!(
        post.windowed_mae < pre.windowed_mae / 2.0,
        "retrain must at least halve the windowed error: pre {} post {}",
        pre.windowed_mae,
        post.windowed_mae
    );
    let final_stats = handle.shutdown();
    // Every request this test sent was answered successfully.
    for (kind, counters) in &final_stats.per_request {
        assert_eq!(counters.errors, 0, "{kind} requests failed");
    }
}

#[test]
fn slo_status_over_the_wire_reports_healthy_objectives() {
    let handle = daemon::start(
        DaemonConfig {
            n_servers: 10,
            ..quiet_config()
        },
        ModelHandle::from_model(model()),
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let mut sessions = Vec::new();
    for g in 0..4 {
        sessions.push(client.place(GameId(g), Resolution::Fhd1080).unwrap());
    }
    for p in &sessions {
        // Healthy observations: at the predicted rate, above the QoS floor.
        client
            .report_outcome(gaugur_serve::OutcomeReport {
                session: p.session,
                observed_fps: p.predicted_fps,
                predicted_fps: p.predicted_fps,
                model_version: p.model_version,
            })
            .unwrap();
        client.depart(p.session).unwrap();
    }

    let slo = client.slo_status().unwrap();
    assert_eq!(slo.state, gaugur_serve::AlertState::Ok, "{slo}");
    assert_eq!(slo.objectives.len(), 3);
    for o in &slo.objectives {
        assert_eq!(o.state, gaugur_serve::AlertState::Ok, "{}: {o:?}", o.name);
    }
    // The rolling views rode along: the fast window saw this test's traffic.
    assert_eq!(slo.windows.len(), 3);
    assert_eq!(
        slo.windows
            .iter()
            .map(|w| w.window_secs)
            .collect::<Vec<_>>(),
        vec![10, 60, 300]
    );
    assert!(slo.windows[0].requests_ok > 0, "{:?}", slo.windows[0]);
    assert_eq!(slo.windows[0].place_attempts, 4);
    assert_eq!(slo.windows[0].outcomes_total, 4);
    assert_eq!(slo.windows[0].outcomes_below_floor, 0);
    // Per-game QoS tallies resolved the games we placed.
    assert!(!slo.per_game.is_empty());

    // The same report is embedded in the stats snapshot.
    let stats = client.stats().unwrap();
    let embedded = stats.slo.expect("stats snapshot carries the SLO report");
    assert_eq!(embedded.state, gaugur_serve::AlertState::Ok);
    handle.shutdown();
}

#[test]
fn recorder_dump_over_the_wire_matches_the_session_history() {
    let handle = daemon::start(
        DaemonConfig {
            n_servers: 10,
            ..quiet_config()
        },
        ModelHandle::from_model(model()),
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let a = client.place(GameId(0), Resolution::Fhd1080).unwrap();
    let b = client.place(GameId(1), Resolution::Fhd1080).unwrap();
    let c = client.place(GameId(2), Resolution::Fhd1080).unwrap();
    client.depart(b.session).unwrap();

    // The deterministic view: three admits then one depart, renumbered,
    // with wall-clock and identity noise struck.
    let (jsonl, events, truncated) = client.dump_recorder(true).unwrap();
    assert!(!truncated);
    assert_eq!(events, 4, "3 admits + 1 depart:\n{jsonl}");
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 4);
    for (i, line) in lines.iter().enumerate() {
        serde_json::parse_value_str(line).expect("dump line is standalone JSON");
        assert!(line.starts_with(&format!("{{\"i\":{i},")), "{line}");
        assert!(
            !line.contains("t_us"),
            "deterministic dump leaked time: {line}"
        );
    }
    assert!(lines[0].contains("\"kind\":\"admit\""));
    assert!(lines[3].contains("\"kind\":\"depart\""));
    assert!(lines[3].contains(&format!(
        "\"server\":{}",
        a.server.max(b.server).min(b.server)
    )));

    // The operator view keeps everything: timestamps, sequence numbers,
    // session ids, model versions.
    let (full, full_events, _) = client.dump_recorder(false).unwrap();
    assert!(full_events >= 4);
    assert!(full.contains("\"t_us\""));
    assert!(full.contains(&format!("\"session\":{}", c.session)));
    handle.shutdown();
}

#[test]
fn critical_alert_auto_dumps_the_flight_recorder() {
    let dir = std::env::temp_dir().join(format!("gaugur-slo-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dump_path = dir.join("incident.jsonl");
    let _ = std::fs::remove_file(&dump_path);

    let handle = daemon::start(
        DaemonConfig {
            // One tiny server: a short burst of placements saturates the
            // fleet, and saturation rejections *are* the QoS floor biting —
            // the admit_qos objective's error budget burns at once.
            n_servers: 1,
            recorder_dump_path: Some(dump_path.clone()),
            ..quiet_config()
        },
        ModelHandle::from_model(model()),
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let mut rejected = 0u64;
    for g in 0..N_GAMES {
        for _ in 0..4 {
            match client.place(GameId(g), Resolution::Fhd1080) {
                Ok(_) => {}
                Err(ClientError::Rejected { .. }) => rejected += 1,
                Err(e) => panic!("unexpected place error: {e}"),
            }
        }
    }
    assert!(rejected > 0, "one server must saturate under 32 placements");

    // Forcing an evaluation trips Ok -> Critical on the admit_qos
    // objective, which must write the incident dump to the configured path.
    let slo = client.slo_status().unwrap();
    let admit = &slo.objectives[0];
    assert_eq!(admit.name, "admit_qos");
    assert_eq!(admit.state, gaugur_serve::AlertState::Critical, "{slo}");
    assert!(slo.transitions > 0);

    let dumped = std::fs::read_to_string(&dump_path)
        .expect("Critical transition must write the recorder dump");
    assert!(!dumped.is_empty());
    for line in dumped.lines() {
        serde_json::parse_value_str(line).expect("dump line is standalone JSON");
    }
    // The operator dump records the alert transition itself.
    assert!(
        dumped.contains("\"kind\":\"alert\""),
        "incident dump should include the alert transition:\n{dumped}"
    );
    handle.shutdown();
}

#[test]
fn an_injected_manual_clock_drives_uptime_and_the_windowed_views() {
    use std::sync::Arc;
    let clock = Arc::new(gaugur_serve::ManualClock::new(1_000_000));
    let handle = daemon::start(
        DaemonConfig {
            n_servers: 10,
            clock: Some(clock.clone()),
            ..quiet_config()
        },
        ModelHandle::from_model(model()),
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let p = client.place(GameId(0), Resolution::Fhd1080).unwrap();
    let slo = client.slo_status().unwrap();
    assert_eq!(slo.windows[0].place_attempts, 1);

    // Jump the injected clock past the fast window: the 10s view forgets
    // the placement, the 5m view still holds it.
    clock.advance_secs(30);
    let slo = client.slo_status().unwrap();
    assert_eq!(slo.windows[0].place_attempts, 0, "{:?}", slo.windows[0]);
    assert_eq!(slo.windows[2].place_attempts, 1, "{:?}", slo.windows[2]);

    // Uptime follows the same clock.
    let stats = client.stats().unwrap();
    assert_eq!(stats.uptime_ms, 30_000);

    client.depart(p.session).unwrap();
    handle.shutdown();
}
