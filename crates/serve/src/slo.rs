//! Windowed service-level telemetry and SLO burn-rate alerting.
//!
//! The cumulative counters in [`crate::stats`] answer "what happened since
//! boot"; this module answers "what is happening *right now*". Every worker
//! owns a ring of per-second buckets (request counts, per-[`Stage`] latency
//! histograms, per-shard admits/fallbacks, QoS rejections, outcome-feedback
//! error sums) written with relaxed atomics on the request hot path — no
//! locks, no allocation, single writer per ring — and merged on demand into
//! 10 s / 1 m / 5 m rolling [`WindowView`]s. Time comes from an injectable
//! [`Clock`], so every window boundary is testable with a [`ManualClock`].
//!
//! On top of the windows sits the [`SloEngine`]: three fleet-wide QoS
//! objectives (QoS-floor rejections at admit, observed-FPS violations from
//! `ReportOutcome`, and p99 place latency) evaluated as SRE-style
//! multi-window burn rates — a severity fires only when **both** the fast
//! (10 s) and slow (5 m) windows burn past its threshold, so a one-second
//! blip cannot page and a real regression cannot hide — driving an
//! `Ok → Warn → Critical` alert state machine whose transitions feed the
//! flight recorder ([`crate::recorder`]).
//!
//! Read consistency: readers merge concurrently with writers using relaxed
//! loads, so a view taken mid-second may miss a handful of in-flight
//! increments; views are exact at quiesce points (after a drain), which is
//! when tests and oracles read them. Merged per-stage `max_us` is
//! bucket-bounded (the upper bound of the highest non-empty bucket, with the
//! overflow bucket reported as the largest finite bound, Prometheus-style):
//! the per-second slots deliberately keep no max field on the hot path.

use crate::stats::{bucket_index, LATENCY_BUCKETS_US, N_BUCKETS};
use crate::trace::{RequestTrace, Stage, StageStats, N_STAGES, REQUEST_STAGES};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotone microsecond clock, injectable so windowed telemetry is
/// testable without sleeping. Implementations must be cheap (called on the
/// request hot path) and non-decreasing.
pub trait Clock: std::fmt::Debug + Send + Sync {
    /// Microseconds elapsed since this clock's epoch.
    fn now_us(&self) -> u64;
}

/// The production [`Clock`]: wall-clock-independent monotone time from
/// [`Instant`], with the epoch fixed at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is "now".
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A hand-cranked [`Clock`] for tests: time moves only when told to.
/// Hold an `Arc<ManualClock>` and hand out `Arc<dyn Clock>` clones.
#[derive(Debug, Default)]
pub struct ManualClock {
    us: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `start_us`.
    pub fn new(start_us: u64) -> ManualClock {
        ManualClock {
            us: AtomicU64::new(start_us),
        }
    }

    /// Set the absolute time (may move backwards; stale future-stamped
    /// slots are then ignored by readers until overwritten).
    pub fn set_us(&self, us: u64) {
        self.us.store(us, Ordering::Relaxed);
    }

    /// Advance by `us` microseconds.
    pub fn advance_us(&self, us: u64) {
        self.us.fetch_add(us, Ordering::Relaxed);
    }

    /// Advance by whole seconds.
    pub fn advance_secs(&self, secs: u64) {
        self.advance_us(secs * 1_000_000);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.us.load(Ordering::Relaxed)
    }
}

/// The rolling windows (seconds) merged by [`WindowedCollector::views`]:
/// fast, medium, slow. The SLO engine burns on the first and last.
pub const WINDOWS_SECS: [u64; 3] = [10, 60, 300];

/// Ring length in seconds; must exceed the longest window so writing the
/// current second never clobbers a second still inside any window.
const RING_SLOTS: usize = 308;

/// One second of one worker's telemetry. All fields relaxed atomics; the
/// owning worker is the only writer, readers merge approximately.
struct Slot {
    /// `second + 1` this slot currently holds (0 = never written). The
    /// writer zeroes and restamps on rollover; readers ignore slots whose
    /// stamp falls outside the window being merged.
    stamp: AtomicU64,
    requests_ok: AtomicU64,
    requests_err: AtomicU64,
    stage_sums: [AtomicU64; N_STAGES],
    stage_buckets: [[AtomicU64; N_BUCKETS]; N_STAGES],
    place_sum: AtomicU64,
    place_buckets: [AtomicU64; N_BUCKETS],
    place_attempts: AtomicU64,
    place_qos_rejected: AtomicU64,
    shard_admits: Vec<AtomicU64>,
    shard_fallbacks: Vec<AtomicU64>,
    outcomes_total: AtomicU64,
    outcomes_below_floor: AtomicU64,
    err_sum_micros: AtomicU64,
    err_count: AtomicU64,
}

/// Single-writer increment: the owning worker is the only thread that ever
/// writes a slot, so a plain load+store (one unlocked add) replaces a locked
/// RMW on the request hot path. Readers merge with relaxed loads either way
/// and were never promised a consistent cross-counter snapshot.
#[inline]
fn bump(counter: &AtomicU64, delta: u64) {
    counter.store(
        counter.load(Ordering::Relaxed).wrapping_add(delta),
        Ordering::Relaxed,
    );
}

impl Slot {
    fn new(shards: usize) -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            requests_ok: AtomicU64::new(0),
            requests_err: AtomicU64::new(0),
            stage_sums: std::array::from_fn(|_| AtomicU64::new(0)),
            stage_buckets: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            place_sum: AtomicU64::new(0),
            place_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            place_attempts: AtomicU64::new(0),
            place_qos_rejected: AtomicU64::new(0),
            shard_admits: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shard_fallbacks: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            outcomes_total: AtomicU64::new(0),
            outcomes_below_floor: AtomicU64::new(0),
            err_sum_micros: AtomicU64::new(0),
            err_count: AtomicU64::new(0),
        }
    }

    /// Zero every counter (rollover; only the owning worker calls this).
    fn clear(&self) {
        self.requests_ok.store(0, Ordering::Relaxed);
        self.requests_err.store(0, Ordering::Relaxed);
        for s in &self.stage_sums {
            s.store(0, Ordering::Relaxed);
        }
        for row in &self.stage_buckets {
            for b in row {
                b.store(0, Ordering::Relaxed);
            }
        }
        self.place_sum.store(0, Ordering::Relaxed);
        for b in &self.place_buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.place_attempts.store(0, Ordering::Relaxed);
        self.place_qos_rejected.store(0, Ordering::Relaxed);
        for a in &self.shard_admits {
            a.store(0, Ordering::Relaxed);
        }
        for f in &self.shard_fallbacks {
            f.store(0, Ordering::Relaxed);
        }
        self.outcomes_total.store(0, Ordering::Relaxed);
        self.outcomes_below_floor.store(0, Ordering::Relaxed);
        self.err_sum_micros.store(0, Ordering::Relaxed);
        self.err_count.store(0, Ordering::Relaxed);
    }
}

/// Upper bound of the highest non-empty bucket; the open-ended overflow
/// bucket reports the largest finite bound (Prometheus `histogram_quantile`
/// semantics). 0 with no samples.
fn bucket_bounded_max(buckets: &[u64]) -> u64 {
    buckets
        .iter()
        .rposition(|&c| c > 0)
        .map(|i| {
            LATENCY_BUCKETS_US
                .get(i)
                .copied()
                .unwrap_or(LATENCY_BUCKETS_US[LATENCY_BUCKETS_US.len() - 1])
        })
        .unwrap_or(0)
}

/// Cumulative per-game QoS counters (since boot, not windowed) merged into
/// [`SloReport::per_game`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GameSlo {
    /// Placement attempts naming this game.
    pub place_attempts: u64,
    /// Attempts the policy rejected because no server could hold the game
    /// at or above its QoS floor.
    pub qos_rejected: u64,
    /// Outcome reports received for sessions of this game.
    pub outcomes: u64,
    /// Outcome reports whose observed FPS fell below the QoS floor.
    pub outcomes_below_floor: u64,
}

impl GameSlo {
    /// Fraction of placement attempts rejected at the QoS floor.
    pub fn reject_ratio(&self) -> f64 {
        if self.place_attempts == 0 {
            0.0
        } else {
            self.qos_rejected as f64 / self.place_attempts as f64
        }
    }

    /// Fraction of outcome reports below the QoS floor.
    pub fn below_floor_ratio(&self) -> f64 {
        if self.outcomes == 0 {
            0.0
        } else {
            self.outcomes_below_floor as f64 / self.outcomes as f64
        }
    }
}

/// One rolling window merged across all workers, in snapshot (wire) form.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowView {
    /// Window length in seconds (one of [`WINDOWS_SECS`]).
    pub window_secs: u64,
    /// Distinct seconds inside the window that recorded any telemetry; an
    /// idle or freshly started daemon shows fewer than `window_secs`.
    pub active_secs: u64,
    /// Requests answered successfully inside the window.
    pub requests_ok: u64,
    /// Requests answered with an error response inside the window.
    pub requests_err: u64,
    /// Per-stage latency histograms over the window, keyed like
    /// [`crate::trace::STAGES`]. `count` is the bucket sum; `max_us` is
    /// bucket-bounded (see the module docs).
    pub per_stage: BTreeMap<String, StageStats>,
    /// Whole-request service-time histogram of `place`/`place_batch`
    /// requests over the window; feeds the p99 place-latency objective.
    pub place_latency: StageStats,
    /// Placement attempts (batch items count individually).
    pub place_attempts: u64,
    /// Attempts rejected because no server met the QoS floor.
    pub place_qos_rejected: u64,
    /// Admitted placements per shard.
    pub shard_admits: Vec<u64>,
    /// Two-phase admits that fell back to a next-best shard, per winning
    /// shard.
    pub shard_fallbacks: Vec<u64>,
    /// Outcome reports ingested inside the window.
    pub outcomes_total: u64,
    /// Outcome reports whose observed FPS fell below the QoS floor.
    pub outcomes_below_floor: u64,
    /// Sum of absolute relative FPS errors from outcome reports, in
    /// micro-units (1e-6) so the hot path stays integer-only.
    pub err_sum_micros: u64,
    /// Outcome reports contributing to `err_sum_micros`.
    pub err_count: u64,
}

impl WindowView {
    fn empty(window_secs: u64, shards: usize) -> WindowView {
        WindowView {
            window_secs,
            shard_admits: vec![0; shards],
            shard_fallbacks: vec![0; shards],
            ..WindowView::default()
        }
    }

    /// Handled requests per second over the full window length.
    pub fn request_rate(&self) -> f64 {
        (self.requests_ok + self.requests_err) as f64 / self.window_secs.max(1) as f64
    }

    /// Error responses per second over the full window length.
    pub fn error_rate(&self) -> f64 {
        self.requests_err as f64 / self.window_secs.max(1) as f64
    }

    /// Mean absolute relative FPS error over the window's outcome reports;
    /// 0 with none.
    pub fn windowed_mae(&self) -> f64 {
        if self.err_count == 0 {
            0.0
        } else {
            self.err_sum_micros as f64 / 1e6 / self.err_count as f64
        }
    }

    /// Fraction of placement attempts rejected at the QoS floor; 0 with no
    /// attempts.
    pub fn qos_reject_ratio(&self) -> f64 {
        if self.place_attempts == 0 {
            0.0
        } else {
            self.place_qos_rejected as f64 / self.place_attempts as f64
        }
    }

    /// Fraction of outcome reports below the QoS floor; 0 with none.
    pub fn outcome_below_floor_ratio(&self) -> f64 {
        if self.outcomes_total == 0 {
            0.0
        } else {
            self.outcomes_below_floor as f64 / self.outcomes_total as f64
        }
    }

    /// p99 whole-request place latency over the window (µs, bucket-bounded).
    pub fn place_p99_us(&self) -> u64 {
        self.place_latency.percentile_us(99.0)
    }
}

/// Scratch accumulator for one window while merging slots (plain integers;
/// converted to [`WindowView`] maps once at the end).
struct WindowAcc {
    view: WindowView,
    stage_sums: [u64; N_STAGES],
    stage_buckets: [[u64; N_BUCKETS]; N_STAGES],
    place_sum: u64,
    place_buckets: [u64; N_BUCKETS],
    active: Vec<bool>,
}

impl WindowAcc {
    fn new(window_secs: u64, shards: usize) -> WindowAcc {
        WindowAcc {
            view: WindowView::empty(window_secs, shards),
            stage_sums: [0; N_STAGES],
            stage_buckets: [[0; N_BUCKETS]; N_STAGES],
            place_sum: 0,
            place_buckets: [0; N_BUCKETS],
            active: vec![false; window_secs as usize],
        }
    }

    fn merge_slot(&mut self, slot: &Slot, age: u64) {
        self.active[age as usize] = true;
        let v = &mut self.view;
        v.requests_ok += slot.requests_ok.load(Ordering::Relaxed);
        v.requests_err += slot.requests_err.load(Ordering::Relaxed);
        for i in 0..N_STAGES {
            self.stage_sums[i] += slot.stage_sums[i].load(Ordering::Relaxed);
            for (b, bucket) in slot.stage_buckets[i].iter().enumerate() {
                self.stage_buckets[i][b] += bucket.load(Ordering::Relaxed);
            }
        }
        self.place_sum += slot.place_sum.load(Ordering::Relaxed);
        for (b, bucket) in slot.place_buckets.iter().enumerate() {
            self.place_buckets[b] += bucket.load(Ordering::Relaxed);
        }
        v.place_attempts += slot.place_attempts.load(Ordering::Relaxed);
        v.place_qos_rejected += slot.place_qos_rejected.load(Ordering::Relaxed);
        for (s, a) in slot.shard_admits.iter().enumerate() {
            v.shard_admits[s] += a.load(Ordering::Relaxed);
        }
        for (s, f) in slot.shard_fallbacks.iter().enumerate() {
            v.shard_fallbacks[s] += f.load(Ordering::Relaxed);
        }
        v.outcomes_total += slot.outcomes_total.load(Ordering::Relaxed);
        v.outcomes_below_floor += slot.outcomes_below_floor.load(Ordering::Relaxed);
        v.err_sum_micros += slot.err_sum_micros.load(Ordering::Relaxed);
        v.err_count += slot.err_count.load(Ordering::Relaxed);
    }

    fn finish(mut self) -> WindowView {
        self.view.active_secs = self.active.iter().filter(|&&a| a).count() as u64;
        let stats_of = |buckets: &[u64; N_BUCKETS], total_us: u64| StageStats {
            count: buckets.iter().sum(),
            total_us,
            max_us: bucket_bounded_max(buckets),
            buckets: buckets.to_vec(),
        };
        self.view.per_stage = Stage::ALL
            .iter()
            .map(|&stage| {
                let i = stage as usize;
                (
                    stage.name().to_string(),
                    stats_of(&self.stage_buckets[i], self.stage_sums[i]),
                )
            })
            .collect();
        self.view.place_latency = stats_of(&self.place_buckets, self.place_sum);
        self.view
    }
}

/// Per-worker rings of per-second telemetry slots, merged on demand into
/// rolling [`WindowView`]s. One instance lives in the daemon's shared state;
/// workers record into their own ring by index.
pub struct WindowedCollector {
    rings: Vec<Vec<Slot>>,
    per_game: Vec<Mutex<HashMap<u64, GameSlo>>>,
    clock: Arc<dyn Clock>,
}

impl WindowedCollector {
    /// Collector with one ring per worker, `shards` per-shard counters per
    /// slot, and the given time source.
    pub fn new(workers: usize, shards: usize, clock: Arc<dyn Clock>) -> WindowedCollector {
        let workers = workers.max(1);
        WindowedCollector {
            rings: (0..workers)
                .map(|_| (0..RING_SLOTS).map(|_| Slot::new(shards)).collect())
                .collect(),
            per_game: (0..workers).map(|_| Mutex::new(HashMap::new())).collect(),
            clock,
        }
    }

    /// The collector's time source (shared with the daemon).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Current whole second on the collector's clock.
    pub fn now_sec(&self) -> u64 {
        self.clock.now_us() / 1_000_000
    }

    /// The current-second slot of `worker`'s ring, zeroed and restamped if
    /// it still holds an older second. Only the owning worker thread may
    /// call the `record_*` methods for its index.
    fn slot(&self, worker: usize) -> &Slot {
        let sec = self.now_sec();
        let ring = &self.rings[worker % self.rings.len()];
        let slot = &ring[(sec % RING_SLOTS as u64) as usize];
        let stamp = sec + 1;
        if slot.stamp.load(Ordering::Relaxed) != stamp {
            slot.clear();
            slot.stamp.store(stamp, Ordering::Relaxed);
        }
        slot
    }

    /// Record one handled request into the current second: outcome count,
    /// one histogram sample per request stage, and — for placements — a
    /// whole-request place-latency sample.
    pub fn record_request(&self, worker: usize, ok: bool, is_place: bool, trace: &RequestTrace) {
        let slot = self.slot(worker);
        if ok {
            bump(&slot.requests_ok, 1);
        } else {
            bump(&slot.requests_err, 1);
        }
        for &stage in REQUEST_STAGES.iter() {
            let i = stage as usize;
            let us = trace.get(stage);
            bump(&slot.stage_buckets[i][bucket_index(us)], 1);
            bump(&slot.stage_sums[i], us);
        }
        if is_place {
            let total = trace.total_us();
            bump(&slot.place_buckets[bucket_index(total)], 1);
            bump(&slot.place_sum, total);
        }
    }

    /// Record a queue-wait sample (per connection, like
    /// [`crate::trace::TraceCollector::record_stage`]).
    pub fn record_queue_wait(&self, worker: usize, us: u64) {
        let slot = self.slot(worker);
        let i = Stage::QueueWait as usize;
        bump(&slot.stage_buckets[i][bucket_index(us)], 1);
        bump(&slot.stage_sums[i], us);
    }

    /// Record one placement attempt for `game_key`: admitted into `shard`,
    /// or rejected at the QoS floor (`admitted_shard == None`).
    pub fn record_place_attempt(
        &self,
        worker: usize,
        game_key: u64,
        admitted_shard: Option<usize>,
    ) {
        let slot = self.slot(worker);
        bump(&slot.place_attempts, 1);
        match admitted_shard {
            Some(shard) => {
                if let Some(a) = slot.shard_admits.get(shard) {
                    bump(a, 1);
                }
            }
            None => {
                bump(&slot.place_qos_rejected, 1);
            }
        }
        let mut games = self.per_game[worker % self.per_game.len()].lock();
        let g = games.entry(game_key).or_default();
        g.place_attempts += 1;
        if admitted_shard.is_none() {
            g.qos_rejected += 1;
        }
    }

    /// Record a two-phase admit that fell back to next-best `shard`.
    pub fn record_fallback(&self, worker: usize, shard: usize) {
        let slot = self.slot(worker);
        if let Some(f) = slot.shard_fallbacks.get(shard) {
            bump(f, 1);
        }
    }

    /// Record one ingested outcome report for `game_key`: whether observed
    /// FPS fell below the QoS floor, and its absolute relative FPS error.
    pub fn record_outcome(
        &self,
        worker: usize,
        game_key: u64,
        below_floor: bool,
        abs_rel_err: f64,
    ) {
        let slot = self.slot(worker);
        bump(&slot.outcomes_total, 1);
        if below_floor {
            bump(&slot.outcomes_below_floor, 1);
        }
        if abs_rel_err.is_finite() && abs_rel_err >= 0.0 {
            bump(&slot.err_sum_micros, (abs_rel_err * 1e6) as u64);
            bump(&slot.err_count, 1);
        }
        let mut games = self.per_game[worker % self.per_game.len()].lock();
        let g = games.entry(game_key).or_default();
        g.outcomes += 1;
        if below_floor {
            g.outcomes_below_floor += 1;
        }
    }

    /// Merge every worker's ring into one [`WindowView`] per entry of
    /// [`WINDOWS_SECS`]. Each window covers the `window_secs` seconds ending
    /// at (and including) the current partial second; slots stamped in the
    /// future (the clock moved backwards) or past the longest window are
    /// ignored, so clock skips simply empty the windows.
    pub fn views(&self) -> Vec<WindowView> {
        let now_sec = self.now_sec();
        let shards = self.rings[0][0].shard_admits.len();
        let mut accs: Vec<WindowAcc> = WINDOWS_SECS
            .iter()
            .map(|&w| WindowAcc::new(w, shards))
            .collect();
        for ring in &self.rings {
            for slot in ring {
                let stamp = slot.stamp.load(Ordering::Relaxed);
                if stamp == 0 {
                    continue;
                }
                let sec = stamp - 1;
                if sec > now_sec {
                    continue;
                }
                let age = now_sec - sec;
                for (wi, &w) in WINDOWS_SECS.iter().enumerate() {
                    if age < w {
                        accs[wi].merge_slot(slot, age);
                    }
                }
            }
        }
        accs.into_iter().map(WindowAcc::finish).collect()
    }

    /// Merge the per-worker cumulative per-game QoS counters.
    pub fn per_game(&self) -> BTreeMap<u64, GameSlo> {
        let mut merged: BTreeMap<u64, GameSlo> = BTreeMap::new();
        for shard in &self.per_game {
            for (&game, g) in shard.lock().iter() {
                let m = merged.entry(game).or_default();
                m.place_attempts += g.place_attempts;
                m.qos_rejected += g.qos_rejected;
                m.outcomes += g.outcomes;
                m.outcomes_below_floor += g.outcomes_below_floor;
            }
        }
        merged
    }
}

/// Alert severity of one objective (or the whole fleet: the max across
/// objectives).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize, Hash,
)]
pub enum AlertState {
    /// Burn rates below the warn threshold in at least one window.
    #[default]
    Ok,
    /// Both windows burning past the warn threshold.
    Warn,
    /// Both windows burning past the critical threshold.
    Critical,
}

impl AlertState {
    /// Stable numeric code for the Prometheus gauge (0/1/2).
    pub fn as_u8(self) -> u8 {
        match self {
            AlertState::Ok => 0,
            AlertState::Warn => 1,
            AlertState::Critical => 2,
        }
    }
}

impl std::fmt::Display for AlertState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AlertState::Ok => "ok",
            AlertState::Warn => "warn",
            AlertState::Critical => "critical",
        })
    }
}

/// The fleet-wide objective names, in evaluation order.
pub const OBJECTIVES: [&str; 3] = ["admit_qos", "observed_fps", "place_latency"];

/// SLO targets and burn thresholds; lives in
/// [`crate::daemon::DaemonConfig`].
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Error budget for the ratio objectives: the tolerated fraction of
    /// QoS-floor rejections at admit, and of below-floor outcome reports.
    /// Burn rate = observed ratio / budget.
    pub fps_error_budget: f64,
    /// Target p99 whole-request place latency (µs). Burn rate = observed
    /// p99 / target.
    pub place_p99_target_us: u64,
    /// Burn rate at or above which (in both windows) an objective goes
    /// `Warn`.
    pub warn_burn: f64,
    /// Burn rate at or above which (in both windows) an objective goes
    /// `Critical`.
    pub critical_burn: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            fps_error_budget: 0.05,
            place_p99_target_us: 10_000,
            warn_burn: 1.0,
            critical_burn: 10.0,
        }
    }
}

/// One objective's evaluated burn state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveStatus {
    /// Objective name (one of [`OBJECTIVES`]).
    pub name: String,
    /// Current alert severity.
    pub state: AlertState,
    /// Burn rate over the fast (10 s) window.
    pub fast_burn: f64,
    /// Burn rate over the slow (5 m) window.
    pub slow_burn: f64,
    /// Raw objective value over the fast window (ratio, or p99 µs).
    pub fast_value: f64,
    /// Raw objective value over the slow window.
    pub slow_value: f64,
    /// The budget/target the burn rates are measured against.
    pub target: f64,
}

/// An alert state change detected by one evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertTransition {
    /// Index into [`OBJECTIVES`] of the objective that changed.
    pub objective: usize,
    /// Previous severity.
    pub from: AlertState,
    /// New severity.
    pub to: AlertState,
}

/// Full SLO evaluation result, exported through `Stats`, the `SloStatus`
/// wire op and the Prometheus exposition.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Fleet-wide severity: the max across objectives.
    pub state: AlertState,
    /// Alert state transitions since startup.
    pub transitions: u64,
    /// Per-objective burn states, in [`OBJECTIVES`] order.
    pub objectives: Vec<ObjectiveStatus>,
    /// The rolling windows the objectives were evaluated over, in
    /// [`WINDOWS_SECS`] order.
    pub windows: Vec<WindowView>,
    /// Cumulative per-game QoS counters, keyed by game id.
    pub per_game: BTreeMap<u64, GameSlo>,
}

impl std::fmt::Display for SloReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "slo: {} ({} transitions)",
            self.state.to_string().to_uppercase(),
            self.transitions
        )?;
        writeln!(
            f,
            "  {:<14} {:>8} {:>10} {:>10} {:>12} {:>12} {:>10}",
            "objective", "state", "burn 10s", "burn 5m", "value 10s", "value 5m", "target"
        )?;
        for o in &self.objectives {
            writeln!(
                f,
                "  {:<14} {:>8} {:>10.2} {:>10.2} {:>12.4} {:>12.4} {:>10.4}",
                o.name, o.state, o.fast_burn, o.slow_burn, o.fast_value, o.slow_value, o.target
            )?;
        }
        writeln!(
            f,
            "  {:<8} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "window", "active", "req/s", "err/s", "qos rej", "below flr", "mae", "place p99"
        )?;
        for w in &self.windows {
            writeln!(
                f,
                "  {:>6}s  {:>7}s {:>10.1} {:>10.2} {:>10.4} {:>10.4} {:>10.4} {:>8}µs",
                w.window_secs,
                w.active_secs,
                w.request_rate(),
                w.error_rate(),
                w.qos_reject_ratio(),
                w.outcome_below_floor_ratio(),
                w.windowed_mae(),
                w.place_p99_us()
            )?;
        }
        if !self.per_game.is_empty() {
            writeln!(
                f,
                "  {:<8} {:>10} {:>10} {:>10} {:>10}",
                "game", "attempts", "qos rej", "outcomes", "below flr"
            )?;
            for (game, g) in &self.per_game {
                writeln!(
                    f,
                    "  {:<8} {:>10} {:>10} {:>10} {:>10}",
                    game, g.place_attempts, g.qos_rejected, g.outcomes, g.outcomes_below_floor
                )?;
            }
        }
        Ok(())
    }
}

/// Multi-window burn-rate evaluator and alert state machine. One instance
/// lives in the daemon's shared state; evaluation is throttled to once per
/// second on the request path ([`SloEngine::tick_due`]) and runs in full on
/// every stats/SLO snapshot.
pub struct SloEngine {
    config: SloConfig,
    states: Mutex<[AlertState; OBJECTIVES.len()]>,
    transitions: AtomicU64,
    last_tick_sec: AtomicU64,
}

impl SloEngine {
    /// Engine with all objectives starting at `Ok`.
    pub fn new(config: SloConfig) -> SloEngine {
        SloEngine {
            config,
            states: Mutex::new([AlertState::Ok; OBJECTIVES.len()]),
            transitions: AtomicU64::new(0),
            last_tick_sec: AtomicU64::new(0),
        }
    }

    /// The configured targets.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Claim the once-per-second evaluation slot for `now_sec`; returns
    /// true for exactly one caller per second (lossy under no traffic:
    /// evaluation simply waits for the next request or snapshot).
    pub fn tick_due(&self, now_sec: u64) -> bool {
        let last = self.last_tick_sec.load(Ordering::Relaxed);
        now_sec > last
            && self
                .last_tick_sec
                .compare_exchange(last, now_sec, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
    }

    fn severity(&self, fast_burn: f64, slow_burn: f64) -> AlertState {
        let floor = fast_burn.min(slow_burn);
        if floor >= self.config.critical_burn {
            AlertState::Critical
        } else if floor >= self.config.warn_burn {
            AlertState::Warn
        } else {
            AlertState::Ok
        }
    }

    /// Evaluate every objective against the fast and slow windows, advance
    /// the alert state machine, and return the report plus any transitions
    /// (for the flight recorder). `views` must be in [`WINDOWS_SECS`] order.
    pub fn evaluate(
        &self,
        views: &[WindowView],
        per_game: BTreeMap<u64, GameSlo>,
    ) -> (SloReport, Vec<AlertTransition>) {
        let fast = &views[0];
        let slow = &views[WINDOWS_SECS.len() - 1];
        let ratio_target = self.config.fps_error_budget.max(f64::EPSILON);
        let p99_target = (self.config.place_p99_target_us as f64).max(1.0);
        // (fast value, slow value, target) per objective, in OBJECTIVES
        // order; burn = value / target.
        let measured = [
            (
                fast.qos_reject_ratio(),
                slow.qos_reject_ratio(),
                ratio_target,
            ),
            (
                fast.outcome_below_floor_ratio(),
                slow.outcome_below_floor_ratio(),
                ratio_target,
            ),
            (
                fast.place_p99_us() as f64,
                slow.place_p99_us() as f64,
                p99_target,
            ),
        ];

        let mut states = self.states.lock();
        let mut transitions = Vec::new();
        let mut objectives = Vec::with_capacity(OBJECTIVES.len());
        for (i, &(fast_value, slow_value, target)) in measured.iter().enumerate() {
            let fast_burn = fast_value / target;
            let slow_burn = slow_value / target;
            let to = self.severity(fast_burn, slow_burn);
            let from = states[i];
            if to != from {
                states[i] = to;
                self.transitions.fetch_add(1, Ordering::Relaxed);
                transitions.push(AlertTransition {
                    objective: i,
                    from,
                    to,
                });
            }
            objectives.push(ObjectiveStatus {
                name: OBJECTIVES[i].to_string(),
                state: to,
                fast_burn,
                slow_burn,
                fast_value,
                slow_value,
                target,
            });
        }
        let state = *states.iter().max().expect("non-empty objectives");
        drop(states);
        let report = SloReport {
            state,
            transitions: self.transitions.load(Ordering::Relaxed),
            objectives,
            windows: views.to_vec(),
            per_game,
        };
        (report, transitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn manual() -> (Arc<ManualClock>, Arc<dyn Clock>) {
        let clock = Arc::new(ManualClock::new(0));
        let as_dyn: Arc<dyn Clock> = clock.clone();
        (clock, as_dyn)
    }

    fn place_trace(total_us: u64) -> RequestTrace {
        let mut t = RequestTrace::new();
        t.add(Stage::Place, total_us);
        t
    }

    #[test]
    fn windows_fill_and_expire_at_exact_boundaries() {
        let (clock, dynclock) = manual();
        let c = WindowedCollector::new(1, 1, dynclock);
        clock.set_us(5_000_000); // sec 5
        c.record_request(0, true, true, &place_trace(100));

        // Same second: present in every window.
        let v = c.views();
        assert_eq!(v[0].requests_ok, 1);
        assert_eq!(v[1].requests_ok, 1);
        assert_eq!(v[2].requests_ok, 1);
        assert_eq!(v[0].active_secs, 1);

        // 9 seconds later (age 9 < 10): still inside the 10 s window.
        clock.set_us((5 + 9) * 1_000_000);
        assert_eq!(c.views()[0].requests_ok, 1);

        // Age 10: just expired from 10 s, still in 1 m and 5 m.
        clock.set_us((5 + 10) * 1_000_000);
        let v = c.views();
        assert_eq!(v[0].requests_ok, 0);
        assert_eq!(v[0].active_secs, 0);
        assert_eq!(v[1].requests_ok, 1);
        assert_eq!(v[2].requests_ok, 1);

        // Age 59 vs 60 for the 1 m window.
        clock.set_us((5 + 59) * 1_000_000);
        assert_eq!(c.views()[1].requests_ok, 1);
        clock.set_us((5 + 60) * 1_000_000);
        let v = c.views();
        assert_eq!(v[1].requests_ok, 0);
        assert_eq!(v[2].requests_ok, 1);

        // Age 299 vs 300 for the 5 m window.
        clock.set_us((5 + 299) * 1_000_000);
        assert_eq!(c.views()[2].requests_ok, 1);
        clock.set_us((5 + 300) * 1_000_000);
        assert_eq!(c.views()[2].requests_ok, 0);
    }

    #[test]
    fn empty_windows_read_as_zero_everywhere() {
        let (_clock, dynclock) = manual();
        let c = WindowedCollector::new(4, 2, dynclock);
        for v in c.views() {
            assert_eq!(v.active_secs, 0);
            assert_eq!(v.request_rate(), 0.0);
            assert_eq!(v.qos_reject_ratio(), 0.0);
            assert_eq!(v.outcome_below_floor_ratio(), 0.0);
            assert_eq!(v.windowed_mae(), 0.0);
            assert_eq!(v.place_p99_us(), 0);
            assert_eq!(v.shard_admits, vec![0, 0]);
            assert_eq!(v.per_stage["place"].count, 0);
        }
        // And an empty fleet evaluates to Ok with zero burn.
        let engine = SloEngine::new(SloConfig::default());
        let (report, transitions) = engine.evaluate(&c.views(), c.per_game());
        assert_eq!(report.state, AlertState::Ok);
        assert!(transitions.is_empty());
        assert!(report.objectives.iter().all(|o| o.fast_burn == 0.0));
    }

    #[test]
    fn a_clock_skip_empties_every_window() {
        let (clock, dynclock) = manual();
        let c = WindowedCollector::new(1, 1, dynclock);
        c.record_request(0, true, false, &RequestTrace::new());
        assert_eq!(c.views()[2].requests_ok, 1);
        // The clock leaps far past every window (e.g. a suspended VM).
        clock.advance_secs(10_000);
        for v in c.views() {
            assert_eq!(v.requests_ok, 0);
            assert_eq!(v.active_secs, 0);
        }
        // Recording after the skip starts a fresh window.
        c.record_request(0, true, false, &RequestTrace::new());
        assert_eq!(c.views()[0].requests_ok, 1);
    }

    #[test]
    fn a_stalled_clock_accumulates_into_one_second() {
        let (clock, dynclock) = manual();
        let c = WindowedCollector::new(1, 1, dynclock);
        clock.set_us(7_500_000);
        for _ in 0..50 {
            c.record_request(0, true, true, &place_trace(30));
        }
        let v = c.views();
        assert_eq!(v[0].requests_ok, 50);
        assert_eq!(v[0].active_secs, 1, "a frozen clock is one active second");
        assert_eq!(v[0].request_rate(), 5.0, "rate spreads over the window");
        assert_eq!(v[0].place_latency.count, 50);
    }

    #[test]
    fn a_backwards_clock_hides_future_slots_until_overwritten() {
        let (clock, dynclock) = manual();
        let c = WindowedCollector::new(1, 1, dynclock);
        clock.set_us(100 * 1_000_000);
        c.record_request(0, true, false, &RequestTrace::new());
        clock.set_us(50 * 1_000_000); // backwards: slot at sec 100 is "future"
        for v in c.views() {
            assert_eq!(v.requests_ok, 0, "future-stamped slots are ignored");
        }
        c.record_request(0, true, false, &RequestTrace::new());
        assert_eq!(c.views()[0].requests_ok, 1);
    }

    #[test]
    fn ring_wraparound_zeroes_stale_slots() {
        let (clock, dynclock) = manual();
        let c = WindowedCollector::new(1, 1, dynclock);
        clock.set_us(3_000_000);
        for _ in 0..9 {
            c.record_request(0, true, false, &RequestTrace::new());
        }
        // One full ring later the same slot index holds a different second;
        // the writer must zero it before reusing it.
        clock.advance_secs(RING_SLOTS as u64);
        c.record_request(0, true, false, &RequestTrace::new());
        let v = c.views();
        assert_eq!(v[0].requests_ok, 1, "stale counts were cleared");
        assert_eq!(v[2].requests_ok, 1);
    }

    #[test]
    fn qos_and_outcome_ratios_come_from_the_window() {
        let (clock, dynclock) = manual();
        let c = WindowedCollector::new(2, 2, dynclock);
        clock.set_us(1_000_000);
        c.record_place_attempt(0, 3, Some(1));
        c.record_place_attempt(1, 3, None);
        c.record_place_attempt(0, 4, None);
        c.record_fallback(1, 0);
        c.record_outcome(0, 3, false, 0.25);
        c.record_outcome(1, 3, true, 0.75);
        let v = &c.views()[0];
        assert_eq!(v.place_attempts, 3);
        assert_eq!(v.place_qos_rejected, 2);
        assert_eq!(v.shard_admits, vec![0, 1]);
        assert_eq!(v.shard_fallbacks, vec![1, 0]);
        assert!((v.qos_reject_ratio() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(v.outcomes_total, 2);
        assert_eq!(v.outcomes_below_floor, 1);
        assert!((v.windowed_mae() - 0.5).abs() < 1e-6);

        let games = c.per_game();
        assert_eq!(games[&3].place_attempts, 2);
        assert_eq!(games[&3].qos_rejected, 1);
        assert_eq!(games[&3].outcomes, 2);
        assert_eq!(games[&3].outcomes_below_floor, 1);
        assert_eq!(games[&4].qos_rejected, 1);
        assert!((games[&3].below_floor_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(games[&4].reject_ratio(), 1.0);
    }

    #[test]
    fn burn_rates_drive_the_alert_state_machine_both_windows_required() {
        let (clock, dynclock) = manual();
        let c = WindowedCollector::new(1, 1, dynclock);
        let engine = SloEngine::new(SloConfig {
            fps_error_budget: 0.05,
            ..SloConfig::default()
        });

        // 10 rejected of 10 attempts: ratio 1.0, burn 20 in *both* windows
        // (the slow window holds the same seconds early in the run).
        clock.set_us(1_000_000);
        for _ in 0..10 {
            c.record_place_attempt(0, 1, None);
        }
        let (report, transitions) = engine.evaluate(&c.views(), c.per_game());
        assert_eq!(report.state, AlertState::Critical);
        assert_eq!(report.objectives[0].state, AlertState::Critical);
        assert_eq!(
            transitions,
            vec![AlertTransition {
                objective: 0,
                from: AlertState::Ok,
                to: AlertState::Critical,
            }]
        );
        assert_eq!(report.transitions, 1);

        // 11 seconds later the fast window is clean but the slow window
        // still burns: multi-window gating de-escalates to Ok (min rules).
        clock.advance_secs(11);
        let (report, transitions) = engine.evaluate(&c.views(), c.per_game());
        assert_eq!(report.state, AlertState::Ok);
        assert_eq!(transitions.len(), 1);
        assert_eq!(transitions[0].to, AlertState::Ok);
        assert_eq!(report.transitions, 2);

        // Re-evaluating without movement stays put: no new transitions.
        let (report, transitions) = engine.evaluate(&c.views(), c.per_game());
        assert!(transitions.is_empty());
        assert_eq!(report.transitions, 2);
    }

    #[test]
    fn warn_fires_between_the_thresholds() {
        let (clock, dynclock) = manual();
        let c = WindowedCollector::new(1, 1, dynclock);
        // Budget 0.05: 1 rejection in 10 attempts is ratio 0.1, burn 2.0 —
        // past warn (1.0), short of critical (10.0).
        let engine = SloEngine::new(SloConfig::default());
        clock.set_us(1_000_000);
        for i in 0..10 {
            c.record_place_attempt(0, 1, if i == 0 { None } else { Some(0) });
        }
        let (report, _) = engine.evaluate(&c.views(), c.per_game());
        assert_eq!(report.objectives[0].state, AlertState::Warn);
        assert_eq!(report.state, AlertState::Warn);
    }

    #[test]
    fn place_latency_objective_burns_on_p99() {
        let (clock, dynclock) = manual();
        let c = WindowedCollector::new(1, 1, dynclock);
        let engine = SloEngine::new(SloConfig {
            place_p99_target_us: 100,
            ..SloConfig::default()
        });
        clock.set_us(1_000_000);
        // p99 lands in the ≤5000µs bucket: burn 5000/100 = 50 ≥ critical.
        for _ in 0..10 {
            c.record_request(0, true, true, &place_trace(3_000));
        }
        let (report, _) = engine.evaluate(&c.views(), c.per_game());
        let latency = &report.objectives[2];
        assert_eq!(latency.name, "place_latency");
        assert_eq!(latency.fast_value, 5_000.0);
        assert_eq!(latency.state, AlertState::Critical);
    }

    #[test]
    fn tick_due_claims_each_second_once() {
        let engine = SloEngine::new(SloConfig::default());
        assert!(!engine.tick_due(0), "second 0 is the startup sentinel");
        assert!(engine.tick_due(1));
        assert!(!engine.tick_due(1), "one evaluation per second");
        assert!(!engine.tick_due(0), "time going backwards never ticks");
        assert!(engine.tick_due(5));
    }

    #[test]
    fn report_display_renders_every_section() {
        let (clock, dynclock) = manual();
        let c = WindowedCollector::new(1, 1, dynclock);
        clock.set_us(1_000_000);
        c.record_place_attempt(0, 2, None);
        c.record_outcome(0, 2, true, 0.5);
        let engine = SloEngine::new(SloConfig::default());
        let (report, _) = engine.evaluate(&c.views(), c.per_game());
        let text = report.to_string();
        assert!(text.contains("slo: CRITICAL"), "{text}");
        assert!(text.contains("admit_qos"), "{text}");
        assert!(text.contains("observed_fps"), "{text}");
        assert!(text.contains("place_latency"), "{text}");
        assert!(text.contains("300s"), "{text}");
    }

    #[test]
    fn report_roundtrips_through_json() {
        let (clock, dynclock) = manual();
        let c = WindowedCollector::new(2, 2, dynclock);
        clock.set_us(1_000_000);
        c.record_request(0, true, true, &place_trace(42));
        c.record_place_attempt(1, 7, Some(1));
        c.record_outcome(0, 7, false, 0.1);
        let engine = SloEngine::new(SloConfig::default());
        let (report, _) = engine.evaluate(&c.views(), c.per_game());
        let json = serde_json::to_string(&report).unwrap();
        let back: SloReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn bucket_bounded_max_follows_the_highest_bucket() {
        let mut buckets = vec![0u64; N_BUCKETS];
        assert_eq!(bucket_bounded_max(&buckets), 0);
        buckets[0] = 3;
        assert_eq!(bucket_bounded_max(&buckets), 5);
        buckets[4] = 1;
        assert_eq!(bucket_bounded_max(&buckets), 100);
        buckets[N_BUCKETS - 1] = 1; // overflow reports the largest finite bound
        assert_eq!(bucket_bounded_max(&buckets), 1_000_000);
    }

    proptest! {
        // Satellite: merged windowed histograms equal the field-wise sum of
        // the same samples recorded into per-worker (single-ring)
        // collectors on the same clock.
        #[test]
        fn merged_windows_equal_per_worker_sums(
            samples in proptest::collection::vec(
                (0usize..4, 0u64..2_000_000, any::<bool>(), any::<bool>()),
                1..60,
            ),
            start_sec in 0u64..400,
            spread_secs in 0u64..8,
        ) {
            let clock = Arc::new(ManualClock::new(0));
            let merged = WindowedCollector::new(4, 1, clock.clone() as Arc<dyn Clock>);
            let singles: Vec<WindowedCollector> = (0..4)
                .map(|_| WindowedCollector::new(1, 1, clock.clone() as Arc<dyn Clock>))
                .collect();
            for (i, &(worker, us, ok, is_place)) in samples.iter().enumerate() {
                let sec = start_sec + if spread_secs == 0 { 0 } else { (i as u64) % (spread_secs + 1) };
                clock.set_us(sec * 1_000_000);
                let t = place_trace(us);
                merged.record_request(worker, ok, is_place, &t);
                singles[worker].record_request(0, ok, is_place, &t);
            }
            clock.set_us((start_sec + spread_secs) * 1_000_000);
            let got = merged.views();
            let parts: Vec<Vec<WindowView>> = singles.iter().map(|c| c.views()).collect();
            for (wi, view) in got.iter().enumerate() {
                let mut ok_sum = 0u64;
                let mut err_sum = 0u64;
                for p in &parts {
                    ok_sum += p[wi].requests_ok;
                    err_sum += p[wi].requests_err;
                }
                prop_assert_eq!(view.requests_ok, ok_sum);
                prop_assert_eq!(view.requests_err, err_sum);
                for stage in crate::trace::Stage::ALL {
                    let name = stage.name();
                    let mut buckets = vec![0u64; N_BUCKETS];
                    let mut total = 0u64;
                    for p in &parts {
                        let st = &p[wi].per_stage[name];
                        total += st.total_us;
                        for (b, &v) in st.buckets.iter().enumerate() {
                            buckets[b] += v;
                        }
                    }
                    let got_st = &view.per_stage[name];
                    prop_assert_eq!(&got_st.buckets, &buckets, "stage {} window {}", name, wi);
                    prop_assert_eq!(got_st.total_us, total);
                    prop_assert_eq!(got_st.count, buckets.iter().sum::<u64>());
                    prop_assert_eq!(got_st.max_us, bucket_bounded_max(&buckets));
                }
                let mut place_buckets = vec![0u64; N_BUCKETS];
                let mut place_total = 0u64;
                for p in &parts {
                    place_total += p[wi].place_latency.total_us;
                    for (b, &v) in p[wi].place_latency.buckets.iter().enumerate() {
                        place_buckets[b] += v;
                    }
                }
                prop_assert_eq!(&view.place_latency.buckets, &place_buckets);
                prop_assert_eq!(view.place_latency.total_us, place_total);
            }
        }
    }
}
