//! Typed client for the placement daemon's wire protocol. One blocking TCP
//! connection per client; the CLI, the load driver and the integration tests
//! all go through this instead of hand-rolling frames.

use crate::stats::StatsSnapshot;
use crate::wire::{
    read_frame, write_frame, BatchPlaceResult, FrameError, OutcomeReport, Request, Response,
    WirePlacement,
};
use gaugur_gamesim::{GameId, Resolution};
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side errors. Protocol-level rejections (`Overloaded`, `Rejected`,
/// `Error`) are surfaced as typed variants so callers can branch on them.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The daemon closed the connection cleanly before answering (EOF at a
    /// frame boundary). The request may or may not have been applied.
    Disconnected,
    /// The connection died mid-reply frame (partial read on a half-closed
    /// socket). The daemon handled the request but the answer is lost.
    TornReply(String),
    /// The daemon replied, but with something this call cannot accept.
    Protocol(String),
    /// The daemon's queue was full; retry after the given backoff.
    Overloaded {
        /// Suggested backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// Placement was refused (fleet saturated under the policy).
    Rejected {
        /// Human-readable reason from the daemon.
        reason: String,
    },
    /// The daemon answered an application-level error.
    Daemon(String),
    /// A `Depart` named a session the daemon does not know (already
    /// departed, rolled back, or never issued).
    UnknownSession {
        /// The session id the request named.
        session: u64,
    },
    /// The daemon is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Disconnected => {
                write!(f, "connection closed before the reply (outcome unknown)")
            }
            ClientError::TornReply(m) => write!(f, "connection died mid-reply: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::Overloaded { retry_after_ms } => {
                write!(f, "daemon overloaded, retry after {retry_after_ms} ms")
            }
            ClientError::Rejected { reason } => write!(f, "placement rejected: {reason}"),
            ClientError::Daemon(m) => write!(f, "daemon error: {m}"),
            ClientError::UnknownSession { session } => {
                write!(f, "unknown session {session} (already departed?)")
            }
            ClientError::ShuttingDown => write!(f, "daemon shutting down"),
        }
    }
}

impl ClientError {
    /// Whether the request's outcome is unknown: the transport failed
    /// before a reply was read, so the daemon may or may not have applied
    /// it. Blindly retrying a non-idempotent request (a `Place`) after one
    /// of these can double-apply it — the load driver reconnects and counts
    /// an error instead of retrying.
    pub fn is_ambiguous(&self) -> bool {
        matches!(
            self,
            ClientError::Io(_) | ClientError::Disconnected | ClientError::TornReply(_)
        )
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            // Clean EOF at a frame boundary vs a half-closed socket killing
            // a reply mid-frame are distinct conditions — callers that
            // retry must know the difference from a plain transport error
            // (both are ambiguous; a timeout, say, is too, but reads
            // differently in logs and reports).
            FrameError::Eof => ClientError::Disconnected,
            FrameError::Io(io) if io.kind() == io::ErrorKind::UnexpectedEof => {
                ClientError::TornReply(io.to_string())
            }
            FrameError::Io(io) => ClientError::Io(io),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// A successful placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placed {
    /// Daemon-assigned session id (pass to [`Client::depart`]).
    pub session: u64,
    /// Server index the session landed on.
    pub server: usize,
    /// FPS the model predicts for this session in its new colocation.
    pub predicted_fps: f64,
    /// Model version that made the decision.
    pub model_version: u64,
}

/// An interference prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Predicted {
    /// Whether the QoS floor holds for the target in this colocation.
    pub feasible: bool,
    /// Predicted degradation ratio δ̃.
    pub degradation: f64,
    /// Predicted absolute FPS.
    pub fps: f64,
    /// Model version that answered.
    pub model_version: u64,
    /// Whether the answer came from the prediction memo.
    pub cached: bool,
}

/// Backoff policy for [`Client::call_with_retry`]. The daemon's
/// `Overloaded { retry_after_ms }` reply carries a backoff hint sized from
/// its own queue depth; a polite client honors it (plus jitter, so a herd of
/// pushed-back clients doesn't return in lockstep) but caps it, so a
/// corrupted or hostile hint cannot stall the caller indefinitely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per call before the `Overloaded` error is surfaced.
    pub max_retries: u32,
    /// Backoff when the daemon's hint is zero (a hint of "now" still
    /// deserves a beat — the queue was full a microsecond ago).
    pub fallback_ms: u64,
    /// Upper bound on any single sleep, hint plus jitter included.
    pub cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            fallback_ms: 25,
            cap_ms: 1_000,
        }
    }
}

impl RetryPolicy {
    /// The sleep for one pushback: the daemon's hint (or the fallback when
    /// the hint is zero), stretched by `jitter_frac` ∈ [0, 1] of itself,
    /// capped at `cap_ms`. Pure — callers supply the randomness, which keeps
    /// seeded load runs a deterministic function of their RNG streams.
    pub fn backoff_ms(&self, retry_after_ms: u64, jitter_frac: f64) -> u64 {
        let hint = if retry_after_ms == 0 {
            self.fallback_ms
        } else {
            retry_after_ms
        };
        let jitter = (hint as f64 * jitter_frac.clamp(0.0, 1.0)) as u64;
        hint.saturating_add(jitter).min(self.cap_ms)
    }
}

/// Blocking client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    peer: SocketAddr,
}

impl Client {
    /// Connect to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        Ok(Client { stream, peer })
    }

    /// The daemon address this client is connected to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Replace the connection with a fresh one to the same daemon. Needed
    /// after `Overloaded` pushback: the daemon sheds the connection right
    /// after the reply, so the old stream is dead.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        *self = Client::connect(self.peer)?;
        Ok(())
    }

    /// Issue `op`, retrying on `Overloaded` pushback with the policy's
    /// backoff — honoring the daemon's `retry_after_ms` hint (jittered via
    /// `jitter_frac`, capped) instead of ignoring it. Each retry reconnects;
    /// every other error (including ambiguous transport failures, which must
    /// not be blindly retried — see [`ClientError::is_ambiguous`]) is
    /// returned as-is. `jitter_frac` is called once per sleep and should
    /// return a value in `[0, 1]`; pass `&mut || 0.0` for deterministic
    /// tests.
    pub fn call_with_retry<T>(
        &mut self,
        policy: RetryPolicy,
        jitter_frac: &mut dyn FnMut() -> f64,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempts = 0u32;
        loop {
            match op(self) {
                Err(ClientError::Overloaded { retry_after_ms }) => {
                    if attempts >= policy.max_retries {
                        return Err(ClientError::Overloaded { retry_after_ms });
                    }
                    attempts += 1;
                    let sleep_ms = policy.backoff_ms(retry_after_ms, jitter_frac());
                    std::thread::sleep(Duration::from_millis(sleep_ms));
                    self.reconnect()?;
                }
                other => return other,
            }
        }
    }

    /// Set a read timeout for replies (`None` blocks indefinitely).
    pub fn set_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Send one request and read one response. The raw escape hatch — the
    /// typed helpers below are built on it.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, request)?;
        Ok(read_frame(&mut self.stream)?)
    }

    fn unexpected(response: Response) -> ClientError {
        match response {
            Response::Overloaded { retry_after_ms } => ClientError::Overloaded { retry_after_ms },
            Response::Error { message } => ClientError::Daemon(message),
            Response::UnknownSession { session } => ClientError::UnknownSession { session },
            Response::ShuttingDown => ClientError::ShuttingDown,
            other => ClientError::Protocol(format!("unexpected response {other:?}")),
        }
    }

    /// Place a session; returns where it landed and the predicted FPS.
    pub fn place(&mut self, game: GameId, resolution: Resolution) -> Result<Placed, ClientError> {
        match self.call(&Request::Place { game, resolution })? {
            Response::Placed {
                session,
                server,
                predicted_fps,
                model_version,
            } => Ok(Placed {
                session,
                server,
                predicted_fps,
                model_version,
            }),
            Response::Rejected { reason } => Err(ClientError::Rejected { reason }),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Place a burst of sessions in one round-trip. The daemon decides the
    /// whole batch under a single fleet-lock acquisition; returns the model
    /// version that made the decisions plus one outcome per request, in
    /// request order. Individual rejections do not fail the call.
    pub fn place_batch(
        &mut self,
        requests: &[WirePlacement],
    ) -> Result<(u64, Vec<BatchPlaceResult>), ClientError> {
        let request = Request::PlaceBatch {
            requests: requests.to_vec(),
        };
        match self.call(&request)? {
            Response::PlacedBatch {
                model_version,
                results,
            } => Ok((model_version, results)),
            other => Err(Self::unexpected(other)),
        }
    }

    /// End a session; returns the server index it freed.
    pub fn depart(&mut self, session: u64) -> Result<usize, ClientError> {
        match self.call(&Request::Depart { session })? {
            Response::Departed { server, .. } => Ok(server),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Ask for an interference prediction without placing anything.
    pub fn predict(
        &mut self,
        game: GameId,
        resolution: Resolution,
        others: &[WirePlacement],
        qos: f64,
    ) -> Result<Predicted, ClientError> {
        let request = Request::Predict {
            game,
            resolution,
            others: others.to_vec(),
            qos,
        };
        match self.call(&request)? {
            Response::Prediction {
                feasible,
                degradation,
                fps,
                model_version,
                cached,
            } => Ok(Predicted {
                feasible,
                degradation,
                fps,
                model_version,
                cached,
            }),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Report one session's observed frame rate; returns
    /// `(accepted, stale, dropped)` counts (each 0 or 1 for a single
    /// report).
    pub fn report_outcome(
        &mut self,
        report: OutcomeReport,
    ) -> Result<(u64, u64, u64), ClientError> {
        match self.call(&Request::ReportOutcome { report })? {
            Response::OutcomeRecorded {
                accepted,
                stale,
                dropped,
            } => Ok((accepted, stale, dropped)),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Report a batch of observed frame rates in one round-trip; returns
    /// `(accepted, stale, dropped)` counts over the whole batch.
    pub fn report_outcomes(
        &mut self,
        reports: &[OutcomeReport],
    ) -> Result<(u64, u64, u64), ClientError> {
        let request = Request::ReportOutcomeBatch {
            reports: reports.to_vec(),
        };
        match self.call(&request)? {
            Response::OutcomeRecorded {
                accepted,
                stale,
                dropped,
            } => Ok((accepted, stale, dropped)),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Queue a background retrain from the buffered outcome dataset.
    /// `min_samples` / `extra_rounds` override the daemon's feedback
    /// defaults for this one retrain. Returns whether the job was queued
    /// (`false` once the daemon is shutting down); the retrain itself runs
    /// asynchronously — poll [`stats`](Client::stats) for
    /// `retrains_ok`/`retrains_failed` to observe completion.
    pub fn trigger_retrain(
        &mut self,
        min_samples: Option<u64>,
        extra_rounds: Option<u64>,
    ) -> Result<bool, ClientError> {
        let request = Request::TriggerRetrain {
            min_samples,
            extra_rounds,
        };
        match self.call(&request)? {
            Response::RetrainQueued { queued } => Ok(queued),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Fetch the daemon's statistics snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(snapshot) => Ok(*snapshot),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Fetch the Prometheus text exposition of the daemon's metrics.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Fetch the daemon's SLO report: per-objective burn rates, alert
    /// states, and the rolling window views they were computed from. Forces
    /// a fresh evaluation on the daemon — the answer is never stale.
    pub fn slo_status(&mut self) -> Result<crate::slo::SloReport, ClientError> {
        match self.call(&Request::SloStatus)? {
            Response::Slo(report) => Ok(*report),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Snapshot the daemon's flight recorder as JSONL. `deterministic`
    /// strips non-deterministic fields (timestamps, worker ids, sequence
    /// numbers, control events) so the dump is byte-comparable across
    /// replayed runs; `false` keeps everything an operator wants. Returns
    /// `(jsonl, events, truncated)`.
    pub fn dump_recorder(
        &mut self,
        deterministic: bool,
    ) -> Result<(String, u64, bool), ClientError> {
        match self.call(&Request::DumpRecorder { deterministic })? {
            Response::RecorderDump {
                jsonl,
                events,
                truncated,
            } => Ok((jsonl, events, truncated)),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Hot-reload the model (from `path`, or its original source when
    /// `None`); returns the new model version.
    pub fn reload(&mut self, path: Option<&str>) -> Result<u64, ClientError> {
        let request = Request::ReloadModel {
            path: path.map(str::to_string),
        };
        match self.call(&request)? {
            Response::Reloaded { version } => Ok(version),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Ask the daemon to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::TcpListener;

    #[test]
    fn clean_close_before_the_reply_maps_to_disconnected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _: Request = read_frame(&mut stream).unwrap();
            // Close without answering: the client sees a frame-boundary EOF.
        });
        let mut client = Client::connect(addr).unwrap();
        client.set_timeout(Some(Duration::from_secs(5))).unwrap();
        match client.call(&Request::Stats) {
            Err(ClientError::Disconnected) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn half_closed_socket_mid_reply_maps_to_torn_reply() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _: Request = read_frame(&mut stream).unwrap();
            // A header promising 64 bytes, then only 3 — a torn write.
            stream.write_all(&64u32.to_be_bytes()).unwrap();
            stream.write_all(b"xyz").unwrap();
            stream.flush().unwrap();
        });
        let mut client = Client::connect(addr).unwrap();
        client.set_timeout(Some(Duration::from_secs(5))).unwrap();
        match client.call(&Request::Stats) {
            Err(ClientError::TornReply(_)) => {}
            other => panic!("expected TornReply, got {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn backoff_honors_the_hint_and_caps_hostile_ones() {
        let p = RetryPolicy::default();
        // The hint is the floor of the sleep…
        assert_eq!(p.backoff_ms(120, 0.0), 120);
        // …jitter stretches it proportionally…
        assert_eq!(p.backoff_ms(100, 0.5), 150);
        assert_eq!(p.backoff_ms(100, 1.0), 200);
        // …out-of-range jitter is clamped, not trusted…
        assert_eq!(p.backoff_ms(100, 7.0), 200);
        assert_eq!(p.backoff_ms(100, -3.0), 100);
        // …a zero hint falls back to a polite beat…
        assert_eq!(p.backoff_ms(0, 0.0), 25);
        // …and a hostile hint cannot stall the caller past the cap.
        assert_eq!(p.backoff_ms(60_000, 0.0), 1_000);
        assert_eq!(p.backoff_ms(u64::MAX, 1.0), 1_000);
    }

    /// A fake daemon that pushes back `overloads` times (one connection
    /// each, shed after the reply, as the real acceptor does) and then
    /// answers `ShuttingDown` for real.
    fn pushback_server(
        listener: TcpListener,
        overloads: usize,
        retry_after_ms: u64,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            for _ in 0..overloads {
                let (mut s, _) = listener.accept().unwrap();
                let _: Request = read_frame(&mut s).unwrap();
                write_frame(&mut s, &Response::Overloaded { retry_after_ms }).unwrap();
            }
            let (mut s, _) = listener.accept().unwrap();
            let _: Request = read_frame(&mut s).unwrap();
            write_frame(&mut s, &Response::ShuttingDown).unwrap();
        })
    }

    #[test]
    fn retry_waits_at_least_the_server_hint() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = pushback_server(listener, 1, 120);

        let mut client = Client::connect(addr).unwrap();
        let started = std::time::Instant::now();
        client
            .call_with_retry(RetryPolicy::default(), &mut || 0.0, |c| c.shutdown())
            .expect("retry after pushback should succeed");
        assert!(
            started.elapsed() >= Duration::from_millis(120),
            "client ignored the retry_after_ms hint: {:?}",
            started.elapsed()
        );
        server.join().unwrap();
    }

    #[test]
    fn hostile_hint_is_capped_so_the_call_still_completes_quickly() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // A one-hour hint; the cap turns it into 50 ms.
        let server = pushback_server(listener, 1, 3_600_000);

        let policy = RetryPolicy {
            cap_ms: 50,
            ..RetryPolicy::default()
        };
        let mut client = Client::connect(addr).unwrap();
        let started = std::time::Instant::now();
        client
            .call_with_retry(policy, &mut || 1.0, |c| c.shutdown())
            .expect("capped retry should succeed");
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "hostile hint stalled the client: {:?}",
            started.elapsed()
        );
        server.join().unwrap();
    }

    #[test]
    fn retries_are_bounded_and_surface_the_last_pushback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let policy = RetryPolicy {
            max_retries: 2,
            fallback_ms: 1,
            cap_ms: 5,
        };
        // Serves exactly max_retries + 1 pushbacks; a client that retried
        // more would hang on accept, so completion itself proves the bound.
        let server = std::thread::spawn(move || {
            for _ in 0..3 {
                let (mut s, _) = listener.accept().unwrap();
                let _: Request = read_frame(&mut s).unwrap();
                write_frame(&mut s, &Response::Overloaded { retry_after_ms: 1 }).unwrap();
            }
        });
        let mut client = Client::connect(addr).unwrap();
        match client.call_with_retry(policy, &mut || 0.0, |c| c.shutdown()) {
            Err(ClientError::Overloaded { retry_after_ms: 1 }) => {}
            other => panic!("expected bounded Overloaded, got {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn ambiguous_failures_are_not_retried() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _: Request = read_frame(&mut s).unwrap();
            drop(s); // die without answering: ambiguous
        });
        let mut client = Client::connect(addr).unwrap();
        client.set_timeout(Some(Duration::from_secs(5))).unwrap();
        match client.call_with_retry(RetryPolicy::default(), &mut || 0.0, |c| c.shutdown()) {
            Err(ClientError::Disconnected) => {}
            other => panic!("ambiguous failure must surface unretried, got {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn ambiguity_classification_guards_the_retry_loop() {
        assert!(ClientError::Disconnected.is_ambiguous());
        assert!(ClientError::TornReply("mid-frame".into()).is_ambiguous());
        assert!(ClientError::Io(io::Error::other("down")).is_ambiguous());
        // Typed daemon replies are definitive: the request was *not*
        // applied (or was answered), so retrying them is safe or moot.
        assert!(!ClientError::Overloaded { retry_after_ms: 5 }.is_ambiguous());
        assert!(!ClientError::Rejected {
            reason: String::new()
        }
        .is_ambiguous());
        assert!(!ClientError::ShuttingDown.is_ambiguous());
        assert!(!ClientError::Daemon(String::new()).is_ambiguous());
        assert!(!ClientError::UnknownSession { session: 7 }.is_ambiguous());
        assert!(!ClientError::Protocol(String::new()).is_ambiguous());
    }
}
