//! The placement daemon: TCP acceptor, bounded work queue, worker pool.
//!
//! Threading model (no async runtime — std::net blocking I/O):
//!
//! * **Acceptor thread** — polls a non-blocking listener, admits
//!   connections into the bounded [`WorkQueue`], and answers `Overloaded`
//!   (with a retry hint) inline when the queue is full. Polling rather than
//!   blocking accept keeps shutdown deterministic without self-connects.
//! * **Worker pool** — each worker pops a connection and serves its frames
//!   until EOF, read timeout, or protocol violation. Handlers pin the
//!   current model `Arc` per request, so `ReloadModel` never disturbs
//!   in-flight work.
//! * **Shutdown** — `DaemonHandle::shutdown()` stops the acceptor, closes
//!   the queue (which *drains*: queued connections are still served, in
//!   drain mode answering exactly the frames already in flight), joins all
//!   threads and returns the final stats snapshot.

use crate::cluster::ClusterState;
use crate::fault::{FaultAction, FaultInjector, InjectionPoint};
use crate::model::{LoadedModel, MemoizedFps, ModelHandle, PredictionMemo};
use crate::queue::{PushError, WorkQueue};
use crate::stats::{AtomicStats, StatsSnapshot};
use crate::wire::{
    self, read_frame_bytes_capped, request_kind, write_frame, BatchPlaceResult, FrameError,
    Request, Response,
};
use gaugur_core::Placement;
use gaugur_sched::{select_server_incremental_with, PlacementScratch, ScoreCache};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub bind: String,
    /// Fleet size exposed to placement.
    pub n_servers: usize,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bound of the pending-connection queue.
    pub queue_capacity: usize,
    /// Per-connection read timeout; an idle or stalled connection is closed
    /// after it (a half-written frame counts as stalled).
    pub read_timeout: Duration,
    /// Per-connection write timeout; a reply stalled on a non-reading
    /// client fails after it, and the placements it carried are rolled back.
    pub write_timeout: Duration,
    /// Largest accepted request payload (bytes), at most
    /// [`wire::MAX_FRAME_LEN`]; a frame declaring more gets an `Error`
    /// reply — before any allocation — and the connection is closed.
    pub max_frame_len: usize,
    /// Backoff hint sent with `Overloaded` replies.
    pub retry_after: Duration,
    /// QoS floor used to memo-key placement-path predictions.
    pub qos: f64,
    /// Prediction-memo capacity (entries).
    pub memo_capacity: usize,
    /// Print the stats snapshot to stdout on shutdown.
    pub print_stats_on_shutdown: bool,
    /// Deterministic fault injector for chaos testing; `None` (production)
    /// makes every injection point a no-op. Only `Place`/`PlaceBatch`
    /// replies consult it, so control-plane traffic never draws from the
    /// injector's seeded stream.
    pub fault: Option<Arc<FaultInjector>>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            bind: "127.0.0.1:0".into(),
            n_servers: 50,
            workers: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            max_frame_len: wire::MAX_FRAME_LEN,
            retry_after: Duration::from_millis(50),
            qos: 60.0,
            memo_capacity: 1 << 16,
            print_stats_on_shutdown: true,
            fault: None,
        }
    }
}

/// Cluster occupancy plus its per-server score cache, kept under one mutex
/// so every placement decision and its cache update are atomic.
struct Fleet {
    cluster: ClusterState,
    scores: ScoreCache,
}

struct Shared {
    config: DaemonConfig,
    model: ModelHandle,
    memo: PredictionMemo,
    fleet: Mutex<Fleet>,
    stats: AtomicStats,
    queue: WorkQueue<TcpStream>,
    shutdown: AtomicBool,
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        let (hits, misses) = self.memo.counts();
        let (active, score_hits, score_misses) = {
            let fleet = self.fleet.lock();
            let (sh, sm) = fleet.scores.counts();
            (fleet.cluster.active_sessions() as u64, sh, sm)
        };
        let mut snap = self
            .stats
            .snapshot(self.model.version(), active, self.config.n_servers);
        snap.cache_hits = hits;
        snap.cache_misses = misses;
        snap.score_hits = score_hits;
        snap.score_misses = score_misses;
        snap
    }
}

/// A running daemon; dropping the handle without calling
/// [`shutdown`](DaemonHandle::shutdown) leaves threads running detached.
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The address the daemon is actually listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a shutdown has been requested (by handle or wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Assert the cluster-state invariants (session index, per-server caps,
    /// id/member lockstep). Intended for tests; panics on violation.
    pub fn check_invariants(&self) {
        self.shared.fleet.lock().cluster.check_invariants();
    }

    /// Stop accepting, drain queued and in-flight work, join every thread,
    /// and return the final statistics.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let snap = self.shared.snapshot();
        if self.shared.config.print_stats_on_shutdown {
            println!("{snap}");
        }
        snap
    }

    /// Block until a `Shutdown` request arrives over the wire, then drain
    /// and return the final statistics (used by `gaugur serve`).
    pub fn wait(mut self) -> StatsSnapshot {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let snap = self.shared.snapshot();
        if self.shared.config.print_stats_on_shutdown {
            println!("{snap}");
        }
        snap
    }
}

/// Start the daemon. Returns once the listener is bound and the worker pool
/// is running.
pub fn start(config: DaemonConfig, model: ModelHandle) -> io::Result<DaemonHandle> {
    let listener = TcpListener::bind(&config.bind)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let shared = Arc::new(Shared {
        memo: PredictionMemo::new(config.memo_capacity),
        fleet: Mutex::new(Fleet {
            cluster: ClusterState::new(config.n_servers),
            scores: ScoreCache::new(config.n_servers),
        }),
        stats: AtomicStats::new(),
        queue: WorkQueue::new(config.queue_capacity),
        shutdown: AtomicBool::new(false),
        model,
        config: config.clone(),
    });

    let workers = (0..config.workers.max(1))
        .map(|i| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("gaugur-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();

    let acceptor = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("gaugur-serve-acceptor".into())
            .spawn(move || acceptor_loop(&listener, &shared))
            .expect("spawn acceptor")
    };

    Ok(DaemonHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.stats.note_connection();
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
                let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
                match shared.queue.push(stream) {
                    Ok(()) => {}
                    Err(PushError::Full(mut rejected)) => {
                        // Transient: shed with a retry hint.
                        shared.stats.note_overloaded();
                        let retry = shared.config.retry_after.as_millis() as u64;
                        let _ = write_frame(
                            &mut rejected,
                            &Response::Overloaded {
                                retry_after_ms: retry,
                            },
                        );
                        shared.stats.note_connection_closed();
                        // Dropped: the client was told when to come back.
                    }
                    Err(PushError::Closed(mut rejected)) => {
                        // Terminal: the daemon is draining; a retry can
                        // never succeed, so say so instead of `Overloaded`.
                        shared.stats.note_shutdown_rejected();
                        let _ = write_frame(&mut rejected, &Response::ShuttingDown);
                        shared.stats.note_connection_closed();
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn worker_loop(shared: &Shared) {
    // pop() drains the queue even after close, so connections admitted
    // before shutdown still get served.
    while let Some(stream) = shared.queue.pop() {
        serve_connection(shared, stream);
        shared.stats.note_connection_closed();
    }
}

/// A pending admission made while handling the current request. If the
/// reply cannot be delivered, these are rolled back — a client that died
/// mid-request must not leak sessions into the fleet, and the score cache
/// must forget the admissions it pre-stored under the admit contract.
struct Admitted {
    session: u64,
    server: usize,
    version: u64,
    before_sum: f64,
    after_sum: f64,
}

/// Depart every admission whose reply never reached the client, newest
/// first, restoring the score cache to its bit-exact pre-admit state. Lost
/// placements thus become net no-ops: occupancy, cached sums and therefore
/// every later placement decision are identical to a run in which the lost
/// request never happened (the chaos harness's replay oracle relies on
/// exactly this).
fn rollback_admissions(shared: &Shared, admitted: &[Admitted]) {
    if admitted.is_empty() {
        return;
    }
    let mut fleet = shared.fleet.lock();
    let Fleet { cluster, scores } = &mut *fleet;
    for a in admitted.iter().rev() {
        if cluster.depart(a.session).is_some() {
            scores.rollback(a.server, a.version, a.after_sum, a.before_sum);
            shared.stats.note_rolled_back();
        }
    }
}

/// Write one reply frame, applying reply-side fault injection when the
/// request is a placement (`faultable`). Restricting injection to placement
/// replies keeps control-plane round-trips (stats polling in particular)
/// from drawing on the injector's stream, which the chaos harness's
/// determinism depends on.
fn write_reply(
    shared: &Shared,
    stream: &mut TcpStream,
    response: &Response,
    faultable: bool,
) -> io::Result<()> {
    if faultable {
        if let Some(injector) = &shared.config.fault {
            match injector.decide(InjectionPoint::Reply) {
                FaultAction::DropConnection => {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "injected reply drop",
                    ));
                }
                FaultAction::TornFrame => {
                    let payload = serde_json::to_string(response)
                        .map_err(io::Error::other)?
                        .into_bytes();
                    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
                    frame.extend_from_slice(&payload);
                    let cut = frame.len() / 2;
                    let _ = stream.write_all(&frame[..cut]);
                    let _ = stream.flush();
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "injected torn reply",
                    ));
                }
                FaultAction::Stall(ms) => std::thread::sleep(Duration::from_millis(ms)),
                _ => {}
            }
        }
    }
    write_frame(stream, response)
}

fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let draining_timeout = Duration::from_millis(100);
    let mut admitted: Vec<Admitted> = Vec::new();
    loop {
        let draining = shared.shutdown.load(Ordering::SeqCst);
        if draining {
            // Drain mode: answer frames already on the wire, but do not
            // wait long for new ones.
            let _ = stream.set_read_timeout(Some(draining_timeout));
        }
        let payload = match read_frame_bytes_capped(&mut stream, shared.config.max_frame_len) {
            Ok(p) => p,
            Err(FrameError::Eof) | Err(FrameError::Io(_)) => return,
            Err(e @ FrameError::TooLarge { .. }) => {
                // Cannot resync after a length violation: error then close.
                shared.stats.note_malformed();
                let _ = write_frame(
                    &mut stream,
                    &Response::Error {
                        message: e.to_string(),
                    },
                );
                return;
            }
            Err(FrameError::Malformed(_)) => unreachable!("raw read does not parse"),
        };
        let request: Request = match wire::decode_payload(&payload) {
            Ok(r) => r,
            Err(e) => {
                // The frame was length-delimited, so the stream is intact:
                // reply with an error and keep the connection.
                shared.stats.note_malformed();
                let _ = write_frame(
                    &mut stream,
                    &Response::Error {
                        message: e.to_string(),
                    },
                );
                continue;
            }
        };

        let kind = request_kind(&request);
        let started = Instant::now();
        admitted.clear();
        let (response, ok) = handle_request(shared, &request, &mut admitted);
        let latency_us = started.elapsed().as_micros() as u64;
        shared.stats.record(kind, ok, latency_us);

        let faultable = matches!(request, Request::Place { .. } | Request::PlaceBatch { .. });
        if write_reply(shared, &mut stream, &response, faultable).is_err() {
            // The client never learned its sessions exist; un-admit them.
            rollback_admissions(shared, &admitted);
            return;
        }
        if matches!(request, Request::Shutdown) {
            let _ = stream.flush();
            return;
        }
    }
}

thread_local! {
    /// Per-worker placement scratch: colocation batches, degradation query
    /// plans, feature buffers. Each daemon worker thread owns one, so the
    /// steady-state `Place`/`PlaceBatch`/`Predict` path allocates nothing —
    /// buffers grow on the first request and are reused for the thread's
    /// lifetime.
    static SCRATCH: RefCell<PlacementScratch> = RefCell::new(PlacementScratch::new());
}

/// Choose a server incrementally, predict the new session's FPS against the
/// pre-admit co-runners, and admit it — the shared core of `Place` and
/// `PlaceBatch`. The caller holds the fleet lock and has validated the game.
/// All model queries route through the batch API via the worker's `scratch`.
fn admit_one(
    shared: &Shared,
    model: &LoadedModel,
    fleet: &mut Fleet,
    scratch: &mut PlacementScratch,
    placement: Placement,
    admitted: &mut Vec<Admitted>,
) -> Option<(u64, usize, f64)> {
    let fps_model = MemoizedFps {
        model,
        memo: &shared.memo,
        qos: shared.config.qos,
    };
    let Fleet { cluster, scores } = fleet;
    let sel = select_server_incremental_with(
        &*cluster,
        placement,
        &fps_model,
        model.version,
        scores,
        scratch,
    )?;
    // Co-runners of the new session = the server's pre-admit occupancy, so
    // predict before admitting (borrowed — no fleet clone on the hot path).
    let (prediction, _) = shared.memo.predict_with(
        model,
        shared.config.qos,
        placement,
        cluster.members(sel.server),
        &mut scratch.predict,
    );
    let session = cluster.admit(sel.server, placement);
    shared.stats.note_admitted();
    admitted.push(Admitted {
        session,
        server: sel.server,
        version: model.version,
        before_sum: sel.before_sum,
        after_sum: sel.server_sum,
    });
    Some((session, sel.server, prediction.fps))
}

fn handle_request(
    shared: &Shared,
    request: &Request,
    admitted: &mut Vec<Admitted>,
) -> (Response, bool) {
    match request {
        Request::Place { game, resolution } => {
            let model = shared.model.get();
            if !model.knows_game(*game) {
                return (
                    Response::Error {
                        message: format!("unknown game {}", game.0),
                    },
                    false,
                );
            }
            // Hold the fleet lock across choose + admit: the decision is
            // only valid against the occupancy it was computed from.
            let mut fleet = shared.fleet.lock();
            match SCRATCH.with(|s| {
                admit_one(
                    shared,
                    &model,
                    &mut fleet,
                    &mut s.borrow_mut(),
                    (*game, *resolution),
                    admitted,
                )
            }) {
                Some((session, server, predicted_fps)) => (
                    Response::Placed {
                        session,
                        server,
                        predicted_fps,
                        model_version: model.version,
                    },
                    true,
                ),
                None => (
                    Response::Rejected {
                        reason: "no eligible server (fleet saturated)".into(),
                    },
                    true,
                ),
            }
        }
        Request::PlaceBatch { requests } => {
            let model = shared.model.get();
            // One lock acquisition (and one scratch borrow) for the whole
            // burst; items place in order and fail independently (unknown
            // game or saturation).
            let mut fleet = shared.fleet.lock();
            let results: Vec<BatchPlaceResult> = SCRATCH.with(|s| {
                let scratch = &mut *s.borrow_mut();
                requests
                    .iter()
                    .map(|&(game, resolution)| {
                        if !model.knows_game(game) {
                            return BatchPlaceResult::Rejected {
                                reason: format!("unknown game {}", game.0),
                            };
                        }
                        match admit_one(
                            shared,
                            &model,
                            &mut fleet,
                            scratch,
                            (game, resolution),
                            admitted,
                        ) {
                            Some((session, server, predicted_fps)) => BatchPlaceResult::Placed {
                                session,
                                server,
                                predicted_fps,
                            },
                            None => BatchPlaceResult::Rejected {
                                reason: "no eligible server (fleet saturated)".into(),
                            },
                        }
                    })
                    .collect()
            });
            (
                Response::PlacedBatch {
                    model_version: model.version,
                    results,
                },
                true,
            )
        }
        Request::Depart { session } => {
            let mut fleet = shared.fleet.lock();
            let Fleet { cluster, scores } = &mut *fleet;
            match cluster.depart(*session) {
                Some(placed) => {
                    scores.invalidate(placed.server);
                    (
                        Response::Departed {
                            session: *session,
                            server: placed.server,
                        },
                        true,
                    )
                }
                None => (
                    Response::Error {
                        message: format!("unknown session {session}"),
                    },
                    false,
                ),
            }
        }
        Request::Predict {
            game,
            resolution,
            others,
            qos,
        } => {
            let model = shared.model.get();
            if !model.knows_game(*game) {
                return (
                    Response::Error {
                        message: format!("unknown game {}", game.0),
                    },
                    false,
                );
            }
            if let Some(bad) = others.iter().find(|(g, _)| !model.knows_game(*g)) {
                return (
                    Response::Error {
                        message: format!("unknown co-runner game {}", bad.0 .0),
                    },
                    false,
                );
            }
            if !qos.is_finite() || *qos < 0.0 {
                return (
                    Response::Error {
                        message: format!("invalid qos {qos}"),
                    },
                    false,
                );
            }
            let (prediction, cached) = SCRATCH.with(|s| {
                shared.memo.predict_with(
                    &model,
                    *qos,
                    (*game, *resolution),
                    others,
                    &mut s.borrow_mut().predict,
                )
            });
            (
                Response::Prediction {
                    feasible: prediction.feasible,
                    degradation: prediction.degradation,
                    fps: prediction.fps,
                    model_version: model.version,
                    cached,
                },
                true,
            )
        }
        Request::Stats => (Response::Stats(shared.snapshot()), true),
        Request::ReloadModel { path } => {
            match shared.model.reload(path.as_deref().map(Path::new)) {
                Ok(version) => (Response::Reloaded { version }, true),
                Err(e) => (
                    Response::Error {
                        message: format!("reload failed: {e}"),
                    },
                    false,
                ),
            }
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue.close();
            (Response::ShuttingDown, true)
        }
    }
}
