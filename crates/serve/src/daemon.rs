//! The placement daemon: TCP acceptor, bounded work queue, worker pool.
//!
//! Threading model (no async runtime — std::net blocking I/O):
//!
//! * **Acceptor thread** — polls a non-blocking listener, admits
//!   connections into the bounded [`WorkQueue`], and answers `Overloaded`
//!   (with a retry hint) inline when the queue is full. Polling rather than
//!   blocking accept keeps shutdown deterministic without self-connects.
//! * **Worker pool** — each worker pops a connection and serves its frames
//!   until EOF, read timeout, or protocol violation. Handlers pin the
//!   current model `Arc` per request, so `ReloadModel` never disturbs
//!   in-flight work.
//! * **Shutdown** — `DaemonHandle::shutdown()` stops the acceptor, closes
//!   the queue (which *drains*: queued connections are still served, in
//!   drain mode answering exactly the frames already in flight), joins all
//!   threads and returns the final stats snapshot.
//!
//! Fleet state is partitioned into [`DaemonConfig::shards`] placement
//! domains, each owning a contiguous disjoint server range behind its own
//! mutex (occupancy + score cache + epoch counter). `Place` scores every
//! shard under that shard's lock only and admits under the winning shard's
//! lock with epoch re-validation — no global fleet lock exists anywhere on
//! the `Place`/`Depart` hot path. With `shards = 1` the daemon runs the
//! classic single-lock path bit-identically.

use crate::cluster::ClusterState;
use crate::fault::{FaultAction, FaultInjector, InjectionPoint};
use crate::feedback::{Feedback, FeedbackConfig, OutcomeRecord};
use crate::model::{LoadedModel, MemoizedFps, ModelHandle, PredictionMemo};
use crate::queue::{PushError, WorkQueue};
use crate::recorder::{Event, Recorder};
use crate::slo::{
    AlertState, Clock, MonotonicClock, SloConfig, SloEngine, SloReport, WindowedCollector,
};
use crate::stats::{AtomicStats, StatsSnapshot};
use crate::trace::{elapsed_us, RequestTrace, SlowMeta, Stage, TraceCollector};
use crate::wire::{
    self, read_frame_bytes_capped, request_kind, write_frame, BatchPlaceResult, FrameError,
    OutcomeReport, Request, Response,
};
use gaugur_core::Placement;
use gaugur_sched::{
    rank_shard_selections, select_server_incremental_with, PlacementScratch, ScoreCache, Selection,
};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub bind: String,
    /// Fleet size exposed to placement.
    pub n_servers: usize,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bound of the pending-connection queue.
    pub queue_capacity: usize,
    /// Per-connection read timeout; an idle or stalled connection is closed
    /// after it (a half-written frame counts as stalled).
    pub read_timeout: Duration,
    /// Per-connection write timeout; a reply stalled on a non-reading
    /// client fails after it, and the placements it carried are rolled back.
    pub write_timeout: Duration,
    /// Largest accepted request payload (bytes), at most
    /// [`wire::MAX_FRAME_LEN`]; a frame declaring more gets an `Error`
    /// reply — before any allocation — and the connection is closed.
    pub max_frame_len: usize,
    /// Backoff hint sent with `Overloaded` replies.
    pub retry_after: Duration,
    /// QoS floor used to memo-key placement-path predictions.
    pub qos: f64,
    /// Prediction-memo capacity (entries).
    pub memo_capacity: usize,
    /// Print the stats snapshot to stdout on shutdown.
    pub print_stats_on_shutdown: bool,
    /// Deterministic fault injector for chaos testing; `None` (production)
    /// makes every injection point a no-op. Only `Place`/`PlaceBatch`
    /// replies consult it, so control-plane traffic never draws from the
    /// injector's seeded stream.
    pub fault: Option<Arc<FaultInjector>>,
    /// Feedback-subsystem tuning: outcome buffering, drift detection, and
    /// background retraining.
    pub feedback: FeedbackConfig,
    /// Placement shard count. Servers are partitioned into this many
    /// contiguous disjoint ranges, each behind its own lock, so concurrent
    /// placements on different shards never contend. Clamped to
    /// `[1, n_servers]`; `1` (the default) reproduces the single-lock
    /// daemon bit-identically.
    pub shards: usize,
    /// SLO-engine tuning: error budgets, the place-latency target, and the
    /// warn/critical burn-rate thresholds.
    pub slo: SloConfig,
    /// Per-worker flight-recorder ring capacity (events). The recorder is
    /// always on; this only bounds how far back a dump can see.
    pub recorder_capacity: usize,
    /// When set, an alert transition to `Critical` snapshots the flight
    /// recorder to this path as an operator (non-deterministic) JSONL dump.
    pub recorder_dump_path: Option<PathBuf>,
    /// Clock behind uptime, windowed telemetry and recorder timestamps.
    /// `None` (production) uses a monotonic clock; tests inject a
    /// [`crate::ManualClock`] to drive the rolling windows deterministically.
    pub clock: Option<Arc<dyn Clock>>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            bind: "127.0.0.1:0".into(),
            n_servers: 50,
            workers: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            max_frame_len: wire::MAX_FRAME_LEN,
            retry_after: Duration::from_millis(50),
            qos: 60.0,
            memo_capacity: 1 << 16,
            print_stats_on_shutdown: true,
            fault: None,
            feedback: FeedbackConfig::default(),
            shards: 1,
            slo: SloConfig::default(),
            recorder_capacity: 512,
            recorder_dump_path: None,
            clock: None,
        }
    }
}

/// One queued background retrain. `None` fields fall back to the
/// [`FeedbackConfig`] defaults; explicit values let operators (and the
/// chaos harness) pin the retrain's behaviour per request.
#[derive(Debug, Clone, Copy)]
struct RetrainJob {
    min_samples: Option<u64>,
    extra_rounds: Option<u64>,
}

/// One placement domain: the occupancy of a contiguous server range plus
/// its score cache, kept under one mutex so every placement decision and
/// its cache update are atomic *within the shard*. Server indices inside
/// are shard-local; the daemon translates to global fleet indices (local +
/// the shard's base offset) before anything reaches the wire or the stats.
struct Shard {
    cluster: ClusterState,
    scores: ScoreCache,
    /// Bumped on every occupancy mutation (admit, depart, rollback) under
    /// this shard's lock. The two-phase admit records it while scoring and
    /// re-checks it before admitting: an unchanged epoch proves the ranking
    /// was computed from the occupancy still in force.
    epoch: u64,
}

/// Worst-N capacity of the slow-request ring exposed via `slow_requests`.
const SLOW_LOG_CAPACITY: usize = 16;

struct Shared {
    config: DaemonConfig,
    model: ModelHandle,
    memo: PredictionMemo,
    /// The fleet, partitioned into independently locked placement domains
    /// over disjoint contiguous server ranges. Exactly one entry when
    /// `config.shards` is 1 — the classic single-lock fleet.
    shards: Vec<Mutex<Shard>>,
    /// Global index of each shard's first server; global server =
    /// `shard_base[s] + local`.
    shard_base: Vec<usize>,
    stats: AtomicStats,
    trace: TraceCollector,
    /// Each queued connection carries its enqueue instant so the dequeuing
    /// worker can attribute the wait to the `queue_wait` stage.
    queue: WorkQueue<(TcpStream, Instant)>,
    shutdown: AtomicBool,
    feedback: Feedback,
    /// Sender side of the retrainer's job queue; `None` once shutdown has
    /// begun (taking it is what lets the retrainer thread exit).
    retrain_tx: Mutex<Option<mpsc::Sender<RetrainJob>>>,
    /// Clock behind uptime, windowed slots and recorder timestamps (shared
    /// with `stats`, `windowed` and `recorder`).
    clock: Arc<dyn Clock>,
    /// Per-worker per-second telemetry rings merged into rolling views.
    windowed: WindowedCollector,
    /// Burn-rate evaluation + alert state machine over the rolling views.
    slo_engine: SloEngine,
    /// Always-on flight recorder (per-worker event rings + control buffer).
    recorder: Recorder,
}

impl Shared {
    /// The shard owning session `id` under the interleaved id scheme
    /// (shard `s` mints ids with `(id - 1) % n_shards == s`). Total: any
    /// id — including 0 and ids the daemon never issued — maps to some
    /// shard, whose cluster then answers "unknown" for ids it never minted.
    fn shard_of_session(&self, id: u64) -> usize {
        (id.wrapping_sub(1) % self.shards.len() as u64) as usize
    }

    fn snapshot(&self) -> StatsSnapshot {
        let (hits, misses) = self.memo.counts();
        // Sequential per-shard reads, each internally consistent under its
        // own lock. There is deliberately no stop-the-world global lock:
        // placements may land on shard B after shard A was read, so the
        // merged totals are only exact at quiesce points — which is where
        // the conservation oracles assert them.
        let mut active = 0u64;
        let mut score_hits = 0u64;
        let mut score_misses = 0u64;
        let mut misrouted = 0u64;
        let mut shard_active = Vec::with_capacity(self.shards.len());
        for m in &self.shards {
            let shard = m.lock();
            let (sh, sm) = shard.scores.counts();
            let a = shard.cluster.active_sessions() as u64;
            score_hits += sh;
            score_misses += sm;
            misrouted += shard.cluster.misrouted_sessions();
            active += a;
            shard_active.push(a);
        }
        let mut snap = self
            .stats
            .snapshot(self.model.version(), active, self.config.n_servers);
        snap.shards = self.shards.len();
        snap.shard_active_sessions = shard_active;
        snap.shard_misrouted_sessions = misrouted;
        snap.cache_hits = hits;
        snap.cache_misses = misses;
        snap.score_hits = score_hits;
        snap.score_misses = score_misses;
        let fc = self.feedback.counters();
        let (drift_score, windowed_mae) = self.feedback.drift_stats();
        snap.feedback_accepted = fc.accepted;
        snap.feedback_stale = fc.stale;
        snap.feedback_dropped = fc.dropped;
        snap.feedback_buffered = fc.buffered;
        snap.feedback_evicted = fc.evicted;
        snap.feedback_pairs = fc.pairs;
        snap.drift_score = drift_score;
        snap.windowed_mae = windowed_mae;
        snap.drift_trips = fc.drift_trips;
        snap.retrains_ok = fc.retrains_ok;
        snap.retrains_failed = fc.retrains_failed;
        snap.last_retrain_ms = fc.last_retrain_ms;
        snap.last_retrain_samples = fc.last_retrain_samples;
        snap.per_stage = self.trace.stage_snapshot();
        snap.slow_requests = self.trace.slow_snapshot();
        snap.slo = Some(self.evaluate_slo());
        snap
    }

    /// Evaluate every SLO objective against the rolling windows right now,
    /// advance the alert state machine, and feed the side effects through:
    /// transitions land in the flight recorder, and a transition *into*
    /// `Critical` snapshots the recorder to
    /// [`DaemonConfig::recorder_dump_path`] so the incident's event history
    /// is captured at the moment it fired, not when an operator gets around
    /// to asking.
    fn evaluate_slo(&self) -> SloReport {
        let (report, transitions) = self
            .slo_engine
            .evaluate(&self.windowed.views(), self.windowed.per_game());
        for t in &transitions {
            self.recorder
                .record_control(crate::recorder::alert_event(t.objective, t.from, t.to));
        }
        if transitions.iter().any(|t| t.to == AlertState::Critical) {
            if let Some(path) = &self.config.recorder_dump_path {
                let dump = self.recorder.dump(false);
                let _ = std::fs::write(path, dump.jsonl);
            }
        }
        report
    }

    /// Enqueue a background retrain; `false` when the retrainer has already
    /// shut down (the job would never run).
    fn queue_retrain(&self, job: RetrainJob) -> bool {
        match self.retrain_tx.lock().as_ref() {
            Some(tx) => tx.send(job).is_ok(),
            None => false,
        }
    }
}

/// A running daemon; dropping the handle without calling
/// [`shutdown`](DaemonHandle::shutdown) leaves threads running detached.
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    retrainer: Option<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The address the daemon is actually listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a shutdown has been requested (by handle or wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Assert the cluster-state invariants (session index, per-server caps,
    /// id/member lockstep, id-stream membership) on every shard. Intended
    /// for tests; panics on violation.
    pub fn check_invariants(&self) {
        for shard in &self.shared.shards {
            shard.lock().cluster.check_invariants();
        }
    }

    /// Stop accepting, drain queued and in-flight work, join every thread,
    /// and return the final statistics.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Dropping the sender lets the retrainer finish queued jobs and exit.
        self.shared.retrain_tx.lock().take();
        if let Some(r) = self.retrainer.take() {
            let _ = r.join();
        }
        let snap = self.shared.snapshot();
        if self.shared.config.print_stats_on_shutdown {
            println!("{snap}");
        }
        snap
    }

    /// Block until a `Shutdown` request arrives over the wire, then drain
    /// and return the final statistics (used by `gaugur serve`).
    pub fn wait(mut self) -> StatsSnapshot {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.retrain_tx.lock().take();
        if let Some(r) = self.retrainer.take() {
            let _ = r.join();
        }
        let snap = self.shared.snapshot();
        if self.shared.config.print_stats_on_shutdown {
            println!("{snap}");
        }
        snap
    }
}

/// How the daemon creates its threads; injectable so tests can force spawn
/// failures at any position without exhausting real OS threads.
type ThreadSpawner<'a> =
    dyn FnMut(String, Box<dyn FnOnce() + Send + 'static>) -> io::Result<JoinHandle<()>> + 'a;

/// Start the daemon. Returns once the listener is bound and the worker pool
/// is running. A thread-spawn failure (OS thread limit, memory pressure) is
/// returned as an error — never a panic — with every already-spawned thread
/// joined and the listener socket released before returning.
pub fn start(config: DaemonConfig, model: ModelHandle) -> io::Result<DaemonHandle> {
    start_with(config, model, &mut |name, body| {
        std::thread::Builder::new().name(name).spawn(body)
    })
}

/// Wrap a spawn failure with which daemon thread could not start.
fn spawn_failure(what: &str, e: io::Error) -> io::Error {
    io::Error::new(e.kind(), format!("failed to spawn {what} thread: {e}"))
}

/// Unwind a partially started daemon after a spawn failure: request
/// shutdown, close the queue so workers fall out of `pop`, join everything
/// that did start, and release the retrainer by dropping its sender. The
/// caller still owns the listener, which drops (releasing the port) when it
/// returns the error.
fn teardown_after_spawn_failure(
    shared: &Shared,
    workers: Vec<JoinHandle<()>>,
    retrainer: Option<JoinHandle<()>>,
) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.queue.close();
    for w in workers {
        let _ = w.join();
    }
    shared.retrain_tx.lock().take();
    if let Some(r) = retrainer {
        let _ = r.join();
    }
}

fn start_with(
    config: DaemonConfig,
    model: ModelHandle,
    spawn: &mut ThreadSpawner<'_>,
) -> io::Result<DaemonHandle> {
    let listener = TcpListener::bind(&config.bind)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let (retrain_tx, retrain_rx) = mpsc::channel::<RetrainJob>();
    let workers_n = config.workers.max(1);
    // Partition the fleet into contiguous disjoint shard ranges; the first
    // `n_servers % n_shards` shards absorb the remainder so sizes differ by
    // at most one. Shard s mints the interleaved id stream with offset s.
    let n_shards = config.shards.max(1).min(config.n_servers.max(1));
    let base_size = config.n_servers / n_shards;
    let remainder = config.n_servers % n_shards;
    let mut shards = Vec::with_capacity(n_shards);
    let mut shard_base = Vec::with_capacity(n_shards);
    let mut next_base = 0usize;
    for s in 0..n_shards {
        let size = base_size + usize::from(s < remainder);
        shard_base.push(next_base);
        next_base += size;
        shards.push(Mutex::new(Shard {
            cluster: ClusterState::new_sharded(size, s as u64, n_shards as u64),
            scores: ScoreCache::new(size),
            epoch: 0,
        }));
    }
    let clock: Arc<dyn Clock> = config
        .clock
        .clone()
        .unwrap_or_else(|| Arc::new(MonotonicClock::new()));
    let shared = Arc::new(Shared {
        memo: PredictionMemo::new(config.memo_capacity),
        shards,
        shard_base,
        stats: AtomicStats::new_with_clock(clock.clone()),
        trace: TraceCollector::new(workers_n, SLOW_LOG_CAPACITY),
        queue: WorkQueue::new(config.queue_capacity),
        shutdown: AtomicBool::new(false),
        feedback: Feedback::new(config.feedback),
        retrain_tx: Mutex::new(Some(retrain_tx)),
        windowed: WindowedCollector::new(workers_n, n_shards, clock.clone()),
        slo_engine: SloEngine::new(config.slo),
        recorder: Recorder::new(workers_n, config.recorder_capacity, clock.clone()),
        clock,
        model,
        config: config.clone(),
    });

    let retrainer = {
        let shared_r = shared.clone();
        match spawn(
            "gaugur-serve-retrainer".into(),
            Box::new(move || retrainer_loop(&shared_r, &retrain_rx)),
        ) {
            Ok(h) => h,
            Err(e) => {
                shared.retrain_tx.lock().take();
                return Err(spawn_failure("retrainer", e));
            }
        }
    };

    let mut workers = Vec::with_capacity(workers_n);
    for i in 0..workers_n {
        let shared_w = shared.clone();
        match spawn(
            format!("gaugur-serve-worker-{i}"),
            Box::new(move || worker_loop(&shared_w, i)),
        ) {
            Ok(h) => workers.push(h),
            Err(e) => {
                teardown_after_spawn_failure(&shared, workers, Some(retrainer));
                return Err(spawn_failure("worker", e));
            }
        }
    }

    let acceptor = {
        let shared_a = shared.clone();
        match spawn(
            "gaugur-serve-acceptor".into(),
            Box::new(move || acceptor_loop(&listener, &shared_a)),
        ) {
            Ok(h) => h,
            Err(e) => {
                teardown_after_spawn_failure(&shared, workers, Some(retrainer));
                return Err(spawn_failure("acceptor", e));
            }
        }
    };

    Ok(DaemonHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
        retrainer: Some(retrainer),
    })
}

/// Monotone sequence for retrain artifact directories; combined with the
/// pid it keeps concurrent daemons (and successive retrains) from ever
/// writing over each other's artifacts.
static RETRAIN_SEQ: AtomicU64 = AtomicU64::new(0);

fn retrain_artifact_path() -> PathBuf {
    let seq = RETRAIN_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "gaugur-retrain-{}-{seq}/model.json",
        std::process::id()
    ))
}

/// The retrainer thread: serve queued jobs until the sender is dropped at
/// shutdown (queued jobs still run — shutdown drains, it does not abort).
fn retrainer_loop(shared: &Shared, rx: &mpsc::Receiver<RetrainJob>) {
    while let Ok(job) = rx.recv() {
        run_retrain(shared, job);
    }
}

/// One background retrain: snapshot the outcome dataset, warm-start the
/// regression model, persist a fresh versioned artifact, and publish it
/// through the hot-reload path. Every failure mode — too few samples, no
/// usable outcomes, artifact I/O, reload rejection — leaves the serving
/// model (and its version) untouched and only bumps `retrains_failed`.
fn run_retrain(shared: &Shared, job: RetrainJob) {
    let started_us = shared.clock.now_us();
    let fb = &shared.feedback;
    let cfg = fb.config();
    let min_samples = job.min_samples.unwrap_or(cfg.min_retrain_samples);
    let extra_rounds = job
        .extra_rounds
        .map(|r| r as usize)
        .unwrap_or(cfg.extra_rounds);

    let outcomes = fb.snapshot_outcomes();
    if (outcomes.len() as u64) < min_samples {
        fb.note_retrain_failed();
        shared.recorder.record_control(Event::RetrainFailed);
        return;
    }
    let model = shared.model.get();
    let Some((retrained, report)) = model.gaugur.retrain_from_outcomes(&outcomes, extra_rounds)
    else {
        fb.note_retrain_failed();
        shared.recorder.record_control(Event::RetrainFailed);
        return;
    };
    // Publish through the artifact + reload path rather than swapping
    // in-memory: the on-disk artifact stays the source of truth (a daemon
    // restart or an operator `reload` sees the retrained model), and the
    // swap inherits reload's monotone-version guarantee.
    let path = retrain_artifact_path();
    let published = path
        .parent()
        .map(std::fs::create_dir_all)
        .transpose()
        .and_then(|_| retrained.save_json(&path))
        .and_then(|_| shared.model.reload(Some(&path)));
    match published {
        Ok(version) => {
            // The new model's accuracy starts from a clean slate: drop the
            // sliding error window along with the Page–Hinkley state, so
            // `windowed_mae` no longer reflects the replaced model's errors
            // and recovery shows up immediately. Reset *before* bumping
            // `retrains_ok` — anyone polling for retrain completion must
            // never observe the success with stale drift statistics.
            fb.reset_drift();
            fb.note_retrain_ok(
                shared.clock.now_us().saturating_sub(started_us) / 1_000,
                report.samples_used as u64,
            );
            shared.recorder.record_control(Event::RetrainOk {
                version,
                samples: report.samples_used as u64,
            });
        }
        Err(_) => {
            fb.note_retrain_failed();
            shared.recorder.record_control(Event::RetrainFailed);
        }
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.stats.note_connection();
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
                let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
                match shared.queue.push((stream, Instant::now())) {
                    Ok(()) => {}
                    Err(PushError::Full((mut rejected, _))) => {
                        // Transient: shed with a retry hint.
                        shared.stats.note_overloaded();
                        let retry = shared.config.retry_after.as_millis() as u64;
                        let _ = write_frame(
                            &mut rejected,
                            &Response::Overloaded {
                                retry_after_ms: retry,
                            },
                        );
                        shared.stats.note_connection_closed();
                        // Dropped: the client was told when to come back.
                    }
                    Err(PushError::Closed((mut rejected, _))) => {
                        // Terminal: the daemon is draining; a retry can
                        // never succeed, so say so instead of `Overloaded`.
                        shared.stats.note_shutdown_rejected();
                        let _ = write_frame(&mut rejected, &Response::ShuttingDown);
                        shared.stats.note_connection_closed();
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    // pop() drains the queue even after close, so connections admitted
    // before shutdown still get served.
    while let Some((stream, enqueued)) = shared.queue.pop() {
        let wait_us = elapsed_us(enqueued);
        shared.trace.record_stage(worker, Stage::QueueWait, wait_us);
        shared.windowed.record_queue_wait(worker, wait_us);
        serve_connection(shared, worker, stream);
        shared.stats.note_connection_closed();
    }
}

/// A pending admission made while handling the current request. If the
/// reply cannot be delivered, these are rolled back — a client that died
/// mid-request must not leak sessions into the fleet, and the score cache
/// must forget the admissions it pre-stored under the admit contract.
struct Admitted {
    session: u64,
    /// Global server index (shard base + local); rollback re-derives the
    /// shard from the session id and subtracts the base again.
    server: usize,
    version: u64,
    /// Admitted game id, carried into the flight-recorder `admit` event.
    game: u64,
    before_sum: f64,
    after_sum: f64,
}

/// Depart every admission whose reply never reached the client, newest
/// first, restoring the score cache to its bit-exact pre-admit state. Lost
/// placements thus become net no-ops: occupancy, cached sums and therefore
/// every later placement decision are identical to a run in which the lost
/// request never happened (the chaos harness's replay oracle relies on
/// exactly this).
///
/// Admissions are grouped by owning shard — one lock acquisition per shard
/// that has anything to undo. Shards hold disjoint sessions, so only the
/// within-shard unwind order (newest first) matters.
fn rollback_admissions(shared: &Shared, admitted: &[Admitted]) {
    if admitted.is_empty() {
        return;
    }
    for s in 0..shared.shards.len() {
        if !admitted
            .iter()
            .any(|a| shared.shard_of_session(a.session) == s)
        {
            continue;
        }
        let base = shared.shard_base[s];
        let mut shard = shared.shards[s].lock();
        let Shard {
            cluster,
            scores,
            epoch,
        } = &mut *shard;
        for a in admitted
            .iter()
            .rev()
            .filter(|a| shared.shard_of_session(a.session) == s)
        {
            if cluster.depart(a.session).is_some() {
                scores.rollback(a.server - base, a.version, a.after_sum, a.before_sum);
                *epoch += 1;
                shared.stats.note_rolled_back();
            }
        }
    }
}

/// Write one reply frame, applying reply-side fault injection when the
/// request is a placement (`faultable`). Restricting injection to placement
/// replies keeps control-plane round-trips (stats polling in particular)
/// from drawing on the injector's stream, which the chaos harness's
/// determinism depends on.
fn write_reply(
    shared: &Shared,
    stream: &mut TcpStream,
    response: &Response,
    faultable: bool,
    trace: &mut RequestTrace,
) -> io::Result<()> {
    if faultable {
        if let Some(injector) = &shared.config.fault {
            match injector.decide(InjectionPoint::Reply) {
                FaultAction::DropConnection => {
                    // Nothing was encoded or written: the request's encode
                    // and write-reply stages keep zero-duration samples.
                    shared.recorder.record_control(Event::Fault { point: 0 });
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "injected reply drop",
                    ));
                }
                FaultAction::TornFrame => {
                    shared.recorder.record_control(Event::Fault { point: 1 });
                    let encode_started = Instant::now();
                    let payload = serde_json::to_string(response)
                        .map_err(io::Error::other)?
                        .into_bytes();
                    trace.add(Stage::Encode, elapsed_us(encode_started));
                    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
                    frame.extend_from_slice(&payload);
                    let cut = frame.len() / 2;
                    let write_started = Instant::now();
                    let _ = stream.write_all(&frame[..cut]);
                    let _ = stream.flush();
                    trace.add(Stage::WriteReply, elapsed_us(write_started));
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "injected torn reply",
                    ));
                }
                FaultAction::Stall(ms) => {
                    // The stall models a stalled reply write, so its wait is
                    // honest reply-delivery time.
                    shared.recorder.record_control(Event::Fault { point: 2 });
                    let stall_started = Instant::now();
                    std::thread::sleep(Duration::from_millis(ms));
                    trace.add(Stage::WriteReply, elapsed_us(stall_started));
                }
                _ => {}
            }
        }
    }
    let encode_started = Instant::now();
    let payload = serde_json::to_string(response)
        .map_err(io::Error::other)?
        .into_bytes();
    trace.add(Stage::Encode, elapsed_us(encode_started));
    debug_assert!(payload.len() <= wire::MAX_FRAME_LEN);
    let write_started = Instant::now();
    let result = stream
        .write_all(&(payload.len() as u32).to_be_bytes())
        .and_then(|()| stream.write_all(&payload))
        .and_then(|()| stream.flush());
    trace.add(Stage::WriteReply, elapsed_us(write_started));
    result
}

fn serve_connection(shared: &Shared, worker: usize, mut stream: TcpStream) {
    let draining_timeout = Duration::from_millis(100);
    let mut admitted: Vec<Admitted> = Vec::new();
    loop {
        let draining = shared.shutdown.load(Ordering::SeqCst);
        if draining {
            // Drain mode: answer frames already on the wire, but do not
            // wait long for new ones.
            let _ = stream.set_read_timeout(Some(draining_timeout));
        }
        let payload = match read_frame_bytes_capped(&mut stream, shared.config.max_frame_len) {
            Ok(p) => p,
            Err(FrameError::Eof) | Err(FrameError::Io(_)) => return,
            Err(e @ FrameError::TooLarge { .. }) => {
                // Cannot resync after a length violation: error then close.
                shared.stats.note_malformed();
                let _ = write_frame(
                    &mut stream,
                    &Response::Error {
                        message: e.to_string(),
                    },
                );
                return;
            }
            Err(FrameError::Malformed(_)) => unreachable!("raw read does not parse"),
        };
        let decode_started = Instant::now();
        let decoded: Result<Request, FrameError> = wire::decode_payload(&payload);
        let decode_us = elapsed_us(decode_started);
        let request: Request = match decoded {
            Ok(r) => r,
            Err(e) => {
                // The frame was length-delimited, so the stream is intact:
                // reply with an error and keep the connection. Undecodable
                // frames have no request kind and are not traced.
                shared.stats.note_malformed();
                let _ = write_frame(
                    &mut stream,
                    &Response::Error {
                        message: e.to_string(),
                    },
                );
                continue;
            }
        };

        let kind = request_kind(&request);
        let mut trace = RequestTrace::new();
        trace.add(Stage::Decode, decode_us);
        let started = Instant::now();
        admitted.clear();
        let mut effects = RequestSideEffects::default();
        let (response, ok) = handle_request(
            shared,
            worker,
            &request,
            &mut admitted,
            &mut trace,
            &mut effects,
        );
        let latency_us = started.elapsed().as_micros() as u64;
        shared.stats.record(kind, ok, latency_us);

        let faultable = matches!(request, Request::Place { .. } | Request::PlaceBatch { .. });
        let delivered = write_reply(shared, &mut stream, &response, faultable, &mut trace);
        // Stage samples flush after the write attempt so a `Stats` or
        // `Metrics` request's own snapshot excludes itself on both the
        // per-op and the per-stage side — the accounting stays reconciled
        // at every sequential observation point.
        shared
            .trace
            .record_request(worker, kind, &trace, effects.meta);
        shared
            .windowed
            .record_request(worker, ok, faultable, &trace);
        if delivered.is_ok() {
            // Admit events exist exactly when the client learned its
            // sessions do — the flight recorder's event stream mirrors the
            // conservation oracle (admitted = confirmed + rolled back).
            for a in admitted.iter() {
                shared.recorder.record(
                    worker,
                    Event::Admit {
                        session: a.session,
                        server: a.server as u64,
                        shard: shared.shard_of_session(a.session) as u64,
                        version: a.version,
                        game: a.game,
                    },
                );
            }
        } else {
            // The client never learned its sessions exist; un-admit them.
            rollback_admissions(shared, &admitted);
            for a in admitted.iter() {
                shared.recorder.record(
                    worker,
                    Event::Rollback {
                        session: a.session,
                        server: a.server as u64,
                        shard: shared.shard_of_session(a.session) as u64,
                    },
                );
            }
        }
        // Non-placement side effects (departs, reloads) happened whether or
        // not the reply made it out, so they are recorded unconditionally.
        for ev in effects.events.drain(..) {
            shared.recorder.record(worker, ev);
        }
        // At most one worker a second pays for a full SLO evaluation, so
        // alerts fire during steady traffic without any dedicated thread.
        if shared.slo_engine.tick_due(shared.windowed.now_sec()) {
            let _ = shared.evaluate_slo();
        }
        if delivered.is_err() {
            return;
        }
        if matches!(request, Request::Shutdown) {
            let _ = stream.flush();
            return;
        }
    }
}

/// Observability side effects of one handled request, applied by the worker
/// *after* the reply write so the recorder's admit/rollback accounting can
/// depend on delivery.
#[derive(Default)]
struct RequestSideEffects {
    /// Identity attached to the slow-request ring entry.
    meta: SlowMeta,
    /// Flight-recorder events to emit post-write (departs, reloads).
    events: Vec<Event>,
}

/// Per-worker buffers for the multi-shard two-phase admit: one candidate
/// slot per shard, the epochs those candidates were scored at, and the
/// cross-shard ranking. Lives beside [`SCRATCH`] so the multi-shard path
/// stays allocation-free in steady state too.
struct ShardScratch {
    candidates: Vec<Option<Selection>>,
    epochs: Vec<u64>,
    order: Vec<usize>,
}

thread_local! {
    /// Per-worker placement scratch: colocation batches, degradation query
    /// plans, feature buffers. Each daemon worker thread owns one, so the
    /// steady-state `Place`/`PlaceBatch`/`Predict` path allocates nothing —
    /// buffers grow on the first request and are reused for the thread's
    /// lifetime.
    static SCRATCH: RefCell<PlacementScratch> = RefCell::new(PlacementScratch::new());

    /// Per-worker two-phase admit buffers (see [`ShardScratch`]).
    static SHARD_SCRATCH: RefCell<ShardScratch> = const {
        RefCell::new(ShardScratch {
            candidates: Vec::new(),
            epochs: Vec::new(),
            order: Vec::new(),
        })
    };
}

/// Lost-race budget for the two-phase admit: how many times a `Place` will
/// re-score the fleet after its winning shard's occupancy changed under it
/// before settling for the best shard that still admits.
const MAX_ADMIT_RETRIES: u32 = 3;

/// Choose a server incrementally, predict the new session's FPS against the
/// pre-admit co-runners, and admit it — the shared core of `Place` and
/// `PlaceBatch`. The caller holds this shard's lock and has validated the
/// game; the returned server index is global (`shard_base` + local). All
/// model queries route through the batch API via the worker's `scratch`.
#[allow(clippy::too_many_arguments)]
fn admit_one_in_shard(
    shared: &Shared,
    model: &LoadedModel,
    shard: &mut Shard,
    shard_base: usize,
    scratch: &mut PlacementScratch,
    placement: Placement,
    admitted: &mut Vec<Admitted>,
    trace: &mut RequestTrace,
) -> Option<(u64, usize, f64)> {
    let fps_model = MemoizedFps {
        model,
        memo: &shared.memo,
        qos: shared.config.qos,
    };
    let Shard {
        cluster,
        scores,
        epoch,
    } = shard;
    let place_started = Instant::now();
    let sel = select_server_incremental_with(
        &*cluster,
        placement,
        &fps_model,
        model.version,
        scores,
        scratch,
    );
    trace.add(Stage::Place, elapsed_us(place_started));
    let sel = sel?;
    // Co-runners of the new session = the server's pre-admit occupancy, so
    // predict before admitting (borrowed — no fleet clone on the hot path).
    let predict_started = Instant::now();
    let (prediction, _) = shared.memo.predict_with(
        model,
        shared.config.qos,
        placement,
        cluster.members(sel.server),
        &mut scratch.predict,
    );
    trace.add(Stage::Predict, elapsed_us(predict_started));
    let session = cluster.admit(sel.server, placement);
    *epoch += 1;
    shared.stats.note_admitted();
    admitted.push(Admitted {
        session,
        server: shard_base + sel.server,
        version: model.version,
        game: placement.0 .0 as u64,
        before_sum: sel.before_sum,
        after_sum: sel.server_sum,
    });
    Some((session, shard_base + sel.server, prediction.fps))
}

/// Two-phase admit across >1 shards. Phase 1 scores every shard under that
/// shard's own (briefly held) lock, invalidating the speculative winner
/// entry before unlocking — the score cache's admit-or-invalidate contract
/// does not survive a lock release. Phase 2 ranks the candidates and admits
/// under only the winning shard's lock, re-validating via the shard epoch
/// that the occupancy the ranking was computed from is still in force; a
/// lost race re-scores (bounded by [`MAX_ADMIT_RETRIES`]), after which the
/// request settles for the best-ranked shard that still admits.
#[allow(clippy::too_many_arguments)]
fn place_multi(
    shared: &Shared,
    worker: usize,
    model: &LoadedModel,
    scratch: &mut PlacementScratch,
    ss: &mut ShardScratch,
    placement: Placement,
    admitted: &mut Vec<Admitted>,
    trace: &mut RequestTrace,
) -> Option<(u64, usize, f64)> {
    let fps_model = MemoizedFps {
        model,
        memo: &shared.memo,
        qos: shared.config.qos,
    };
    for attempt in 0..=MAX_ADMIT_RETRIES {
        ss.candidates.clear();
        ss.epochs.clear();
        for s in 0..shared.shards.len() {
            let wait_started = Instant::now();
            let mut shard = shared.shards[s].lock();
            trace.add(Stage::PlaceAdmitWait, elapsed_us(wait_started));
            let place_started = Instant::now();
            let Shard {
                cluster,
                scores,
                epoch,
            } = &mut *shard;
            let sel = select_server_incremental_with(
                &*cluster,
                placement,
                &fps_model,
                model.version,
                scores,
                scratch,
            );
            if let Some(sel) = &sel {
                // We may never come back to this shard: drop the
                // speculatively stored post-admit sum now, under the lock.
                scores.invalidate(sel.server);
            }
            trace.add(Stage::Place, elapsed_us(place_started));
            ss.epochs.push(*epoch);
            ss.candidates.push(sel);
        }
        rank_shard_selections(&ss.candidates, &mut ss.order);
        let Some(&winner) = ss.order.first() else {
            return None; // every shard is saturated for this game
        };
        let wait_started = Instant::now();
        let mut shard = shared.shards[winner].lock();
        trace.add(Stage::PlaceAdmitWait, elapsed_us(wait_started));
        if shard.epoch == ss.epochs[winner] {
            // Occupancy unchanged since scoring, so the under-lock re-score
            // deterministically reproduces the phase-1 selection (and
            // restores the cache entry invalidated above) before admitting.
            return admit_one_in_shard(
                shared,
                model,
                &mut shard,
                shared.shard_base[winner],
                scratch,
                placement,
                admitted,
                trace,
            );
        }
        drop(shard);
        if attempt < MAX_ADMIT_RETRIES {
            shared.stats.note_admit_retry();
        }
    }
    // Out of retries under sustained contention: give up on cross-shard
    // optimality and take the best-ranked shard that still admits.
    shared.stats.note_admit_fallback();
    for i in 0..ss.order.len() {
        let s = ss.order[i];
        let wait_started = Instant::now();
        let mut shard = shared.shards[s].lock();
        trace.add(Stage::PlaceAdmitWait, elapsed_us(wait_started));
        if let Some(placed) = admit_one_in_shard(
            shared,
            model,
            &mut shard,
            shared.shard_base[s],
            scratch,
            placement,
            admitted,
            trace,
        ) {
            shared.windowed.record_fallback(worker, s);
            return Some(placed);
        }
    }
    None
}

/// Place one session: the single-shard fast path is exactly the classic
/// single-lock daemon — one lock held across choose + admit, no speculative
/// invalidation — so its decisions, predictions and score-cache hit/miss
/// streams are bit-identical to the unsharded implementation. Multi-shard
/// fleets go through the two-phase [`place_multi`].
fn place_one(
    shared: &Shared,
    worker: usize,
    model: &LoadedModel,
    scratch: &mut PlacementScratch,
    placement: Placement,
    admitted: &mut Vec<Admitted>,
    trace: &mut RequestTrace,
) -> Option<(u64, usize, f64)> {
    if shared.shards.len() == 1 {
        let wait_started = Instant::now();
        let mut shard = shared.shards[0].lock();
        trace.add(Stage::PlaceAdmitWait, elapsed_us(wait_started));
        return admit_one_in_shard(
            shared, model, &mut shard, 0, scratch, placement, admitted, trace,
        );
    }
    SHARD_SCRATCH.with(|ss| {
        place_multi(
            shared,
            worker,
            model,
            scratch,
            &mut ss.borrow_mut(),
            placement,
            admitted,
            trace,
        )
    })
}

/// Ingest a batch of outcome reports (the shared body of `ReportOutcome`
/// and `ReportOutcomeBatch`). Each report's session is resolved against the
/// live fleet to recover the colocation the observation belongs to; unknown
/// sessions (already departed, or never placed) and non-finite frame rates
/// are dropped. Reports tagged with an older model version are buffered as
/// training data but kept out of the drift statistics — their prediction
/// error describes a model that is no longer serving.
fn ingest_reports(shared: &Shared, worker: usize, reports: &[OutcomeReport]) -> (Response, bool) {
    let current_version = shared.model.version();
    let mut accepted = 0u64;
    let mut stale_count = 0u64;
    let mut dropped = 0u64;
    let mut tripped = false;
    for report in reports {
        if !report.observed_fps.is_finite() || report.observed_fps <= 0.0 {
            shared.feedback.note_dropped();
            dropped += 1;
            continue;
        }
        // Resolve under the owning shard's lock only, ingest outside it:
        // ingestion takes its own (feedback) locks and must not extend any
        // placement critical section.
        let resolved = {
            let shard = shared.shards[shared.shard_of_session(report.session)].lock();
            shard.cluster.lookup(report.session).map(|placed| {
                // Co-runners = the server's occupancy minus the session
                // itself (game ids are unique per server by invariant).
                let others: Vec<Placement> = shard
                    .cluster
                    .members(placed.server)
                    .iter()
                    .filter(|&&(g, _)| g != placed.placement.0)
                    .copied()
                    .collect();
                (placed.placement, others)
            })
        };
        match resolved {
            Some((target, others)) => {
                let stale = report.model_version < current_version;
                tripped |= shared.feedback.ingest(
                    OutcomeRecord {
                        target,
                        others,
                        observed_fps: report.observed_fps,
                    },
                    report.predicted_fps,
                    stale,
                );
                // The observed-FPS SLO objective and the windowed MAE both
                // feed off every accepted report (observed_fps > 0 was
                // checked above, so the relative error is well-defined).
                shared.windowed.record_outcome(
                    worker,
                    target.0 .0 as u64,
                    report.observed_fps < shared.config.qos,
                    (report.predicted_fps - report.observed_fps).abs() / report.observed_fps,
                );
                accepted += 1;
                if stale {
                    stale_count += 1;
                }
            }
            None => {
                shared.feedback.note_dropped();
                dropped += 1;
            }
        }
    }
    if tripped && shared.feedback.config().auto_retrain {
        let _ = shared.queue_retrain(RetrainJob {
            min_samples: None,
            extra_rounds: None,
        });
    }
    (
        Response::OutcomeRecorded {
            accepted,
            stale: stale_count,
            dropped,
        },
        true,
    )
}

fn handle_request(
    shared: &Shared,
    worker: usize,
    request: &Request,
    admitted: &mut Vec<Admitted>,
    trace: &mut RequestTrace,
    effects: &mut RequestSideEffects,
) -> (Response, bool) {
    match request {
        Request::Place { game, resolution } => {
            let model = shared.model.get();
            effects.meta.model_version = Some(model.version);
            if !model.knows_game(*game) {
                return (
                    Response::Error {
                        message: format!("unknown game {}", game.0),
                    },
                    false,
                );
            }
            match SCRATCH.with(|s| {
                place_one(
                    shared,
                    worker,
                    &model,
                    &mut s.borrow_mut(),
                    (*game, *resolution),
                    admitted,
                    trace,
                )
            }) {
                Some((session, server, predicted_fps)) => {
                    let shard = shared.shard_of_session(session);
                    shared
                        .windowed
                        .record_place_attempt(worker, game.0 as u64, Some(shard));
                    effects.meta.session = Some(session);
                    effects.meta.shard = Some(shard as u64);
                    (
                        Response::Placed {
                            session,
                            server,
                            predicted_fps,
                            model_version: model.version,
                        },
                        true,
                    )
                }
                None => {
                    // Saturation *is* the QoS floor biting: no server keeps
                    // this game above its floor — the admit-time SLO signal.
                    shared
                        .windowed
                        .record_place_attempt(worker, game.0 as u64, None);
                    (
                        Response::Rejected {
                            reason: "no eligible server (fleet saturated)".into(),
                        },
                        true,
                    )
                }
            }
        }
        Request::PlaceBatch { requests } => {
            let model = shared.model.get();
            effects.meta.model_version = Some(model.version);
            // Items place in order and fail independently (unknown game or
            // saturation). Single-shard fleets take one lock acquisition
            // (and one scratch borrow) for the whole burst — the classic
            // batch path; sharded fleets run each item's two-phase admit so
            // a long burst never pins any one shard.
            let results: Vec<BatchPlaceResult> = SCRATCH.with(|s| {
                let scratch = &mut *s.borrow_mut();
                let mut single = (shared.shards.len() == 1).then(|| {
                    let wait_started = Instant::now();
                    let shard = shared.shards[0].lock();
                    trace.add(Stage::PlaceAdmitWait, elapsed_us(wait_started));
                    shard
                });
                requests
                    .iter()
                    .map(|&(game, resolution)| {
                        if !model.knows_game(game) {
                            return BatchPlaceResult::Rejected {
                                reason: format!("unknown game {}", game.0),
                            };
                        }
                        let placed = match &mut single {
                            Some(shard) => admit_one_in_shard(
                                shared,
                                &model,
                                shard,
                                0,
                                scratch,
                                (game, resolution),
                                admitted,
                                trace,
                            ),
                            None => SHARD_SCRATCH.with(|ss| {
                                place_multi(
                                    shared,
                                    worker,
                                    &model,
                                    scratch,
                                    &mut ss.borrow_mut(),
                                    (game, resolution),
                                    admitted,
                                    trace,
                                )
                            }),
                        };
                        match placed {
                            Some((session, server, predicted_fps)) => {
                                let shard = shared.shard_of_session(session);
                                shared.windowed.record_place_attempt(
                                    worker,
                                    game.0 as u64,
                                    Some(shard),
                                );
                                // The ring entry points at the batch's first
                                // admitted session — one concrete session to
                                // start debugging a slow burst from.
                                if effects.meta.session.is_none() {
                                    effects.meta.session = Some(session);
                                    effects.meta.shard = Some(shard as u64);
                                }
                                BatchPlaceResult::Placed {
                                    session,
                                    server,
                                    predicted_fps,
                                }
                            }
                            None => {
                                shared
                                    .windowed
                                    .record_place_attempt(worker, game.0 as u64, None);
                                BatchPlaceResult::Rejected {
                                    reason: "no eligible server (fleet saturated)".into(),
                                }
                            }
                        }
                    })
                    .collect()
            });
            (
                Response::PlacedBatch {
                    model_version: model.version,
                    results,
                },
                true,
            )
        }
        Request::Depart { session } => {
            // The id scheme routes every session to exactly one shard, so a
            // depart touches one lock — never the whole fleet.
            let owner = shared.shard_of_session(*session);
            let wait_started = Instant::now();
            let mut shard = shared.shards[owner].lock();
            trace.add(Stage::PlaceAdmitWait, elapsed_us(wait_started));
            let Shard {
                cluster,
                scores,
                epoch,
            } = &mut *shard;
            match cluster.depart(*session) {
                Some(placed) => {
                    scores.invalidate(placed.server);
                    *epoch += 1;
                    let server = shared.shard_base[owner] + placed.server;
                    effects.meta.session = Some(*session);
                    effects.meta.shard = Some(owner as u64);
                    effects.events.push(Event::Depart {
                        session: *session,
                        server: server as u64,
                        shard: owner as u64,
                    });
                    (
                        Response::Departed {
                            session: *session,
                            server,
                        },
                        true,
                    )
                }
                None => {
                    // Typed, counted, and not a protocol error: departing an
                    // id that is already gone (double-depart, rolled back,
                    // or never issued) is a client-visible state, not noise.
                    shared.stats.note_depart_unknown();
                    (Response::UnknownSession { session: *session }, false)
                }
            }
        }
        Request::Predict {
            game,
            resolution,
            others,
            qos,
        } => {
            let model = shared.model.get();
            if !model.knows_game(*game) {
                return (
                    Response::Error {
                        message: format!("unknown game {}", game.0),
                    },
                    false,
                );
            }
            if let Some(bad) = others.iter().find(|(g, _)| !model.knows_game(*g)) {
                return (
                    Response::Error {
                        message: format!("unknown co-runner game {}", bad.0 .0),
                    },
                    false,
                );
            }
            if !qos.is_finite() || *qos < 0.0 {
                return (
                    Response::Error {
                        message: format!("invalid qos {qos}"),
                    },
                    false,
                );
            }
            let predict_started = Instant::now();
            let (prediction, cached) = SCRATCH.with(|s| {
                shared.memo.predict_with(
                    &model,
                    *qos,
                    (*game, *resolution),
                    others,
                    &mut s.borrow_mut().predict,
                )
            });
            trace.add(Stage::Predict, elapsed_us(predict_started));
            (
                Response::Prediction {
                    feasible: prediction.feasible,
                    degradation: prediction.degradation,
                    fps: prediction.fps,
                    model_version: model.version,
                    cached,
                },
                true,
            )
        }
        Request::ReportOutcome { report } => {
            ingest_reports(shared, worker, std::slice::from_ref(report))
        }
        Request::ReportOutcomeBatch { reports } => ingest_reports(shared, worker, reports),
        Request::TriggerRetrain {
            min_samples,
            extra_rounds,
        } => {
            let queued = shared.queue_retrain(RetrainJob {
                min_samples: *min_samples,
                extra_rounds: *extra_rounds,
            });
            (Response::RetrainQueued { queued }, queued)
        }
        Request::Stats => (Response::Stats(Box::new(shared.snapshot())), true),
        Request::Metrics => (
            // Control-plane like `Stats`: rendered from the same snapshot,
            // never fault-injected, so scrapes cannot perturb chaos replay.
            Response::Metrics {
                text: crate::trace::render_prometheus(&shared.snapshot()),
            },
            true,
        ),
        Request::SloStatus => (Response::Slo(Box::new(shared.evaluate_slo())), true),
        Request::DumpRecorder { deterministic } => {
            let dump = shared.recorder.dump(*deterministic);
            (
                Response::RecorderDump {
                    jsonl: dump.jsonl,
                    events: dump.events,
                    truncated: dump.truncated,
                },
                true,
            )
        }
        Request::ReloadModel { path } => {
            match shared.model.reload(path.as_deref().map(Path::new)) {
                Ok(version) => {
                    effects.meta.model_version = Some(version);
                    effects.events.push(Event::Reload { version });
                    (Response::Reloaded { version }, true)
                }
                Err(e) => (
                    Response::Error {
                        message: format!("reload failed: {e}"),
                    },
                    false,
                ),
            }
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue.close();
            (Response::ShuttingDown, true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugur_gamesim::{GameCatalog, Server};

    /// `DaemonHandle` is not `Debug` (it owns join handles), so
    /// `expect_err` can't be used directly on `start_with`'s result.
    fn must_fail(r: io::Result<DaemonHandle>, what: &str) -> io::Error {
        match r {
            Ok(_) => panic!("{what}: expected a spawn failure, daemon started"),
            Err(e) => e,
        }
    }

    fn test_model() -> ModelHandle {
        let server = Server::reference(7);
        let catalog = GameCatalog::generate(42, 6);
        let config = gaugur_core::GAugurConfig {
            plan: gaugur_core::ColocationPlan {
                pairs: 12,
                triples: 4,
                quads: 2,
                seed: 3,
            },
            ..Default::default()
        };
        ModelHandle::from_model(gaugur_core::GAugur::build(&server, &catalog, config))
    }

    // A thread-spawn failure used to `.expect()` (panic) *after* the
    // listener was bound, leaking the already-spawned threads. It must be a
    // returned error with every spawned thread joined and the port released.
    #[test]
    fn worker_spawn_failure_tears_down_cleanly_and_frees_the_port() {
        // Reserve a concrete port so the release is provable afterwards.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);

        let config = DaemonConfig {
            bind: addr.to_string(),
            workers: 4,
            print_stats_on_shutdown: false,
            ..Default::default()
        };
        let mut spawned = 0u32;
        let err = must_fail(
            start_with(config, test_model(), &mut |name, body| {
                spawned += 1;
                // Call 1 is the retrainer; fail on the third worker. The
                // first two workers really run, so teardown must make them
                // exit.
                if spawned == 4 {
                    assert!(name.contains("worker"), "{name}");
                    return Err(io::Error::new(
                        io::ErrorKind::WouldBlock,
                        "thread limit reached",
                    ));
                }
                std::thread::Builder::new().name(name).spawn(body)
            }),
            "worker spawn",
        );
        assert!(err.to_string().contains("worker"), "{err}");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        // start_with returned, so teardown joined the live workers and the
        // retrainer; the listener dropped with it — the port binds again.
        TcpListener::bind(addr).expect("port released after teardown");
    }

    #[test]
    fn acceptor_spawn_failure_is_an_error_not_a_panic() {
        let mut calls = 0u32;
        let err = must_fail(
            start_with(
                DaemonConfig {
                    workers: 2,
                    print_stats_on_shutdown: false,
                    ..Default::default()
                },
                test_model(),
                &mut |name, body| {
                    calls += 1;
                    if name.contains("acceptor") {
                        return Err(io::Error::other("no more threads"));
                    }
                    std::thread::Builder::new().name(name).spawn(body)
                },
            ),
            "acceptor spawn",
        );
        assert!(err.to_string().contains("acceptor"), "{err}");
        // Retrainer + both workers were attempted before the acceptor.
        assert_eq!(calls, 4);
    }

    #[test]
    fn retrainer_spawn_failure_fails_fast_without_spawning_workers() {
        let mut calls = 0u32;
        let err = must_fail(
            start_with(
                DaemonConfig {
                    print_stats_on_shutdown: false,
                    ..Default::default()
                },
                test_model(),
                &mut |_name, _body| {
                    calls += 1;
                    Err(io::Error::other("nope"))
                },
            ),
            "retrainer spawn",
        );
        assert!(err.to_string().contains("retrainer"), "{err}");
        assert_eq!(calls, 1, "no workers attempted after the retrainer fails");
    }
}
