//! Per-request stage tracing: where does a request's time go?
//!
//! The whole-request latency histograms in [`crate::stats`] say *how slow* a
//! request was; this module says *why*. Every handled request is split into
//! pipeline stages — queue wait, decode, predict, place, admit-lock wait,
//! encode, write-reply — and each stage's duration lands in a fixed-bucket
//! histogram sharded per worker thread, so the hot path touches only its own
//! cache lines with relaxed atomics. Shards merge on demand into
//! [`crate::StatsSnapshot`].
//!
//! Accounting contract (the "stage-sum invariant", oracle-checked by the
//! chaos suite): [`TraceCollector::record_request`] records exactly one
//! sample for *each* of the six request stages per handled request — a
//! stage that did not run (e.g. `predict` on a `Depart`) contributes a
//! zero-duration sample. Therefore every request stage's `count` equals the
//! total of `per_request` ok + errors at any quiesced snapshot. `queue_wait`
//! is sampled once per *connection* when a worker dequeues it, so its count
//! equals accepted connections minus those shed at the acceptor.
//!
//! Determinism: tracing draws no randomness, takes no fault-injection
//! decisions, and influences no placement — it only reads the clock and
//! bumps atomics — so fault-free chaos replay stays byte-identical with
//! tracing enabled. The slow-request ring keeps the worst-N requests by
//! total service time under a mutex that is only taken when a request beats
//! the current floor; entries are ordered by a monotone admission sequence,
//! never wall-clock identity.

use crate::stats::{bucket_index, histogram_percentile_us, StatsSnapshot, N_BUCKETS};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of traced stages.
pub const N_STAGES: usize = 7;

/// Stage names in pipeline order; index is `Stage as usize`.
pub const STAGES: [&str; N_STAGES] = [
    "queue_wait",
    "decode",
    "predict",
    "place",
    "place_admit_wait",
    "encode",
    "write_reply",
];

/// One timed slice of the request pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Accepted-to-dequeued wait in the bounded work queue (per connection).
    QueueWait = 0,
    /// JSON payload decode of an already-read frame.
    Decode = 1,
    /// Model inference (memoized FPS predictions).
    Predict = 2,
    /// Placement scoring: picking the best server per shard.
    Place = 3,
    /// Waiting to acquire fleet/shard locks on the admit and depart paths —
    /// the contention signal the sharded fleet exists to shrink.
    PlaceAdmitWait = 4,
    /// Response serialization.
    Encode = 5,
    /// Writing the reply frame to the socket.
    WriteReply = 6,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; N_STAGES] = [
        Stage::QueueWait,
        Stage::Decode,
        Stage::Predict,
        Stage::Place,
        Stage::PlaceAdmitWait,
        Stage::Encode,
        Stage::WriteReply,
    ];

    /// Exposition/snapshot name of this stage.
    pub fn name(self) -> &'static str {
        STAGES[self as usize]
    }
}

/// The six per-request stages — everything except [`Stage::QueueWait`],
/// which is sampled once per connection rather than once per request.
pub const REQUEST_STAGES: [Stage; 6] = [
    Stage::Decode,
    Stage::Predict,
    Stage::Place,
    Stage::PlaceAdmitWait,
    Stage::Encode,
    Stage::WriteReply,
];

/// Microseconds elapsed since `t` (saturating; u64 µs is ~584k years).
pub fn elapsed_us(t: Instant) -> u64 {
    t.elapsed().as_micros() as u64
}

/// Merged per-stage timing statistics in snapshot (wire) form.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    /// Samples recorded for this stage.
    pub count: u64,
    /// Sum of all sample durations (µs).
    pub total_us: u64,
    /// Largest observed sample (µs).
    pub max_us: u64,
    /// Histogram counts per bucket of
    /// [`crate::stats::LATENCY_BUCKETS_US`] (+ overflow).
    pub buckets: Vec<u64>,
}

impl StageStats {
    /// Mean sample duration (µs); 0 with no samples.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }

    /// Approximate duration percentile (0..=100) — same semantics as
    /// [`crate::RequestStats::percentile_us`]: the upper bound of the bucket
    /// holding the p-th sample, the observed max in the overflow bucket, 0
    /// with no samples.
    pub fn percentile_us(&self, p: f64) -> u64 {
        histogram_percentile_us(&self.buckets, self.max_us, p)
    }
}

/// One entry of the slow-request ring: a whole-request trace with its
/// per-stage breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowRequest {
    /// Monotone admission sequence number (arrival order of handled
    /// requests, 0-based) — stable across identical runs, unlike wall-clock.
    pub seq: u64,
    /// Request kind (see [`crate::wire::REQUEST_KINDS`]).
    pub kind: String,
    /// Whole-request service time: sum of the request stages (µs).
    pub total_us: u64,
    /// Per-stage durations (µs), indexed like [`STAGES`]; the `queue_wait`
    /// slot is always 0 (it is per-connection, not per-request).
    pub stage_us: Vec<u64>,
    /// Session id the request touched (admitted/departed), if any.
    pub session: Option<u64>,
    /// Placement shard the request landed on, if any.
    pub shard: Option<u64>,
    /// Model version that served the request, when one was involved.
    pub model_version: Option<u64>,
}

/// Request identity attached to a slow-ring entry so `gaugur top` output is
/// actionable on sharded fleets: which session, which shard, which model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlowMeta {
    /// Session id the request touched, if any.
    pub session: Option<u64>,
    /// Placement shard the request landed on, if any.
    pub shard: Option<u64>,
    /// Model version that served the request, when one was involved.
    pub model_version: Option<u64>,
}

/// Per-request stage accumulator, filled on a worker's stack while the
/// request is handled and flushed once via
/// [`TraceCollector::record_request`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestTrace {
    us: [u64; N_STAGES],
}

impl RequestTrace {
    /// Fresh all-zero trace.
    pub fn new() -> RequestTrace {
        RequestTrace::default()
    }

    /// Add `us` microseconds to `stage` (accumulates — a batched placement
    /// sums its per-item predict/place slices into one sample each).
    pub fn add(&mut self, stage: Stage, us: u64) {
        self.us[stage as usize] += us;
    }

    /// Accumulated duration of `stage` (µs).
    pub fn get(&self, stage: Stage) -> u64 {
        self.us[stage as usize]
    }

    /// Whole-request service time: sum over the request stages (excludes
    /// `queue_wait`, which is per-connection).
    pub fn total_us(&self) -> u64 {
        REQUEST_STAGES.iter().map(|&s| self.us[s as usize]).sum()
    }
}

struct StageShard {
    counts: [AtomicU64; N_STAGES],
    totals: [AtomicU64; N_STAGES],
    maxes: [AtomicU64; N_STAGES],
    buckets: [[AtomicU64; N_BUCKETS]; N_STAGES],
}

impl StageShard {
    fn new() -> StageShard {
        StageShard {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            totals: std::array::from_fn(|_| AtomicU64::new(0)),
            maxes: std::array::from_fn(|_| AtomicU64::new(0)),
            buckets: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }

    fn record(&self, stage: Stage, us: u64) {
        let i = stage as usize;
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        self.totals[i].fetch_add(us, Ordering::Relaxed);
        self.maxes[i].fetch_max(us, Ordering::Relaxed);
        self.buckets[i][bucket_index(us)].fetch_add(1, Ordering::Relaxed);
    }
}

struct SlowEntry {
    seq: u64,
    kind: &'static str,
    total_us: u64,
    us: [u64; N_STAGES],
    meta: SlowMeta,
}

/// Worst-N requests by total service time. The `floor_us` fast path skips
/// the lock for requests that cannot displace anything once the ring is
/// full; ties keep the incumbent, so admission is deterministic given the
/// offered sequence.
struct SlowLog {
    capacity: usize,
    seq: AtomicU64,
    floor_us: AtomicU64,
    ring: Mutex<Vec<SlowEntry>>,
}

impl SlowLog {
    fn new(capacity: usize) -> SlowLog {
        SlowLog {
            capacity,
            seq: AtomicU64::new(0),
            floor_us: AtomicU64::new(0),
            ring: Mutex::new(Vec::with_capacity(capacity)),
        }
    }

    fn offer(&self, kind: &'static str, trace: &RequestTrace, meta: SlowMeta) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if self.capacity == 0 {
            return;
        }
        let total_us = trace.total_us();
        // floor_us stays 0 until the ring fills, so this never rejects early.
        if total_us > 0 && total_us <= self.floor_us.load(Ordering::Relaxed) {
            return;
        }
        let entry = SlowEntry {
            seq,
            kind,
            total_us,
            us: trace.us,
            meta,
        };
        let mut ring = self.ring.lock();
        if ring.len() < self.capacity {
            ring.push(entry);
            if ring.len() == self.capacity {
                let floor = ring.iter().map(|e| e.total_us).min().unwrap_or(0);
                self.floor_us.store(floor, Ordering::Relaxed);
            }
            return;
        }
        let (min_idx, min_total) = ring
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.total_us, std::cmp::Reverse(e.seq)))
            .map(|(i, e)| (i, e.total_us))
            .expect("non-empty full ring");
        if total_us > min_total {
            ring[min_idx] = entry;
            let floor = ring.iter().map(|e| e.total_us).min().unwrap_or(0);
            self.floor_us.store(floor, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> Vec<SlowRequest> {
        let ring = self.ring.lock();
        let mut entries: Vec<SlowRequest> = ring
            .iter()
            .map(|e| SlowRequest {
                seq: e.seq,
                kind: e.kind.to_string(),
                total_us: e.total_us,
                stage_us: e.us.to_vec(),
                session: e.meta.session,
                shard: e.meta.shard,
                model_version: e.meta.model_version,
            })
            .collect();
        drop(ring);
        entries.sort_by_key(|e| (std::cmp::Reverse(e.total_us), e.seq));
        entries
    }
}

/// Per-worker sharded stage histograms plus the slow-request ring. One
/// instance lives in the daemon's shared state; workers record into their
/// own shard by index.
pub struct TraceCollector {
    shards: Vec<StageShard>,
    slow: SlowLog,
}

impl TraceCollector {
    /// Collector with one shard per worker and a worst-`slow_capacity`
    /// slow-request ring.
    pub fn new(workers: usize, slow_capacity: usize) -> TraceCollector {
        TraceCollector {
            shards: (0..workers.max(1)).map(|_| StageShard::new()).collect(),
            slow: SlowLog::new(slow_capacity),
        }
    }

    /// Record a single stage sample into `worker`'s shard (used for
    /// `queue_wait`, which has no surrounding request).
    pub fn record_stage(&self, worker: usize, stage: Stage, us: u64) {
        self.shards[worker % self.shards.len()].record(stage, us);
    }

    /// Record a fully handled request: one sample per request stage (stages
    /// that did not run contribute zero-duration samples, keeping all six
    /// request-stage counts equal to the number of handled requests), and an
    /// offer to the slow-request ring carrying the request's identity
    /// (`meta`: session, shard, model version).
    pub fn record_request(
        &self,
        worker: usize,
        kind: &'static str,
        trace: &RequestTrace,
        meta: SlowMeta,
    ) {
        let shard = &self.shards[worker % self.shards.len()];
        for &stage in REQUEST_STAGES.iter() {
            shard.record(stage, trace.get(stage));
        }
        self.slow.offer(kind, trace, meta);
    }

    /// Merge every shard into per-stage snapshot statistics. All stages are
    /// always present (zeroed when unobserved) so consumers see a stable key
    /// set.
    pub fn stage_snapshot(&self) -> BTreeMap<String, StageStats> {
        Stage::ALL
            .iter()
            .map(|&stage| {
                let i = stage as usize;
                let mut st = StageStats {
                    buckets: vec![0; N_BUCKETS],
                    ..StageStats::default()
                };
                for shard in &self.shards {
                    st.count += shard.counts[i].load(Ordering::Relaxed);
                    st.total_us += shard.totals[i].load(Ordering::Relaxed);
                    st.max_us = st.max_us.max(shard.maxes[i].load(Ordering::Relaxed));
                    for (b, bucket) in shard.buckets[i].iter().enumerate() {
                        st.buckets[b] += bucket.load(Ordering::Relaxed);
                    }
                }
                (stage.name().to_string(), st)
            })
            .collect()
    }

    /// The current worst-N slow requests, slowest first (ties by arrival).
    pub fn slow_snapshot(&self) -> Vec<SlowRequest> {
        self.slow.snapshot()
    }
}

/// Check the stage accounting contract on a **quiesced** snapshot (no
/// requests mid-flight — e.g. post-drain in the chaos harness, or after a
/// load run finished): every request stage's count equals the per-op
/// request total, bucket sums equal counts, and `queue_wait` samples equal
/// connections that reached a worker.
pub fn verify_stage_accounting(s: &StatsSnapshot) -> Result<(), String> {
    let handled: u64 = s.per_request.values().map(|r| r.total()).sum();
    for &stage in REQUEST_STAGES.iter() {
        let st = s.per_stage.get(stage.name()).cloned().unwrap_or_default();
        if st.count != handled {
            return Err(format!(
                "stage `{}` count {} != {} handled requests",
                stage.name(),
                st.count,
                handled
            ));
        }
        let in_buckets: u64 = st.buckets.iter().sum();
        if in_buckets != st.count {
            return Err(format!(
                "stage `{}` bucket sum {} != count {}",
                stage.name(),
                in_buckets,
                st.count
            ));
        }
    }
    let served = s
        .connections_accepted
        .saturating_sub(s.overloaded_rejections)
        .saturating_sub(s.shutdown_rejections);
    let qw = s
        .per_stage
        .get(Stage::QueueWait.name())
        .cloned()
        .unwrap_or_default();
    if qw.count != served {
        return Err(format!(
            "queue_wait count {} != {} worker-served connections",
            qw.count, served
        ));
    }
    Ok(())
}

fn write_metric(out: &mut String, name: &str, labels: &str, value: impl std::fmt::Display) {
    use std::fmt::Write as _;
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {value}");
    }
}

fn write_header(out: &mut String, name: &str, kind: &str, help: &str) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn write_histogram(
    out: &mut String,
    name: &str,
    label: &str,
    buckets: &[u64],
    sum_us: u64,
    count: u64,
) {
    use std::fmt::Write as _;
    let mut cumulative = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cumulative += c;
        let le = crate::stats::LATENCY_BUCKETS_US
            .get(i)
            .map(|b| b.to_string())
            .unwrap_or_else(|| "+Inf".to_string());
        let _ = writeln!(out, "{name}_bucket{{{label},le=\"{le}\"}} {cumulative}");
    }
    write_metric(out, &format!("{name}_sum"), label, sum_us);
    write_metric(out, &format!("{name}_count"), label, count);
}

/// Render a snapshot in Prometheus text-exposition format (version 0.0.4):
/// counters, per-op and per-stage histograms, feedback/drift gauges,
/// score-cache and retrain counters. Served by the `Metrics` wire op.
pub fn render_prometheus(s: &StatsSnapshot) -> String {
    let mut out = String::with_capacity(16 * 1024);

    write_header(
        &mut out,
        "gaugur_build_info",
        "gauge",
        "Build metadata of the running daemon; value is always 1.",
    );
    write_metric(
        &mut out,
        "gaugur_build_info",
        &format!(
            "version=\"{}\",profile=\"{}\"",
            env!("CARGO_PKG_VERSION"),
            if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            }
        ),
        1,
    );
    write_header(
        &mut out,
        "gaugur_uptime_seconds",
        "gauge",
        "Seconds since the daemon started.",
    );
    write_metric(
        &mut out,
        "gaugur_uptime_seconds",
        "",
        s.uptime_ms as f64 / 1e3,
    );
    write_header(
        &mut out,
        "gaugur_model_version",
        "gauge",
        "Version of the currently loaded model.",
    );
    write_metric(&mut out, "gaugur_model_version", "", s.model_version);
    write_header(
        &mut out,
        "gaugur_active_sessions",
        "gauge",
        "Sessions currently placed on the fleet.",
    );
    write_metric(&mut out, "gaugur_active_sessions", "", s.active_sessions);
    write_header(
        &mut out,
        "gaugur_servers",
        "gauge",
        "Configured fleet size.",
    );
    write_metric(&mut out, "gaugur_servers", "", s.servers);

    let counters: [(&str, &str, u64); 13] = [
        (
            "gaugur_connections_accepted_total",
            "Connections the acceptor admitted.",
            s.connections_accepted,
        ),
        (
            "gaugur_connections_closed_total",
            "Connections fully disposed of.",
            s.connections_closed,
        ),
        (
            "gaugur_overloaded_rejections_total",
            "Connections turned away with Overloaded.",
            s.overloaded_rejections,
        ),
        (
            "gaugur_shutdown_rejections_total",
            "Connections turned away during drain.",
            s.shutdown_rejections,
        ),
        (
            "gaugur_malformed_frames_total",
            "Frames that failed to decode.",
            s.malformed_frames,
        ),
        (
            "gaugur_placements_admitted_total",
            "Sessions admitted into the fleet.",
            s.placements_admitted,
        ),
        (
            "gaugur_placements_rolled_back_total",
            "Admissions undone after undeliverable replies.",
            s.placements_rolled_back,
        ),
        (
            "gaugur_place_admit_retries_total",
            "Two-phase admits that lost the re-validation race and re-scored.",
            s.place_admit_retries,
        ),
        (
            "gaugur_place_admit_fallbacks_total",
            "Two-phase admits that fell back to a next-best shard.",
            s.place_admit_fallbacks,
        ),
        (
            "gaugur_depart_unknown_sessions_total",
            "Depart requests naming an unknown session id.",
            s.depart_unknown_sessions,
        ),
        (
            "gaugur_shard_misrouted_sessions_total",
            "Sessions whose id routed to the wrong shard (must be 0).",
            s.shard_misrouted_sessions,
        ),
        (
            "gaugur_feedback_evicted_total",
            "Outcome records evicted from full ring shards.",
            s.feedback_evicted,
        ),
        (
            "gaugur_drift_trips_total",
            "Times the drift detector tripped.",
            s.drift_trips,
        ),
    ];
    for (name, help, v) in counters {
        write_header(&mut out, name, "counter", help);
        write_metric(&mut out, name, "", v);
    }

    write_header(
        &mut out,
        "gaugur_prediction_memo_total",
        "counter",
        "Prediction-memo lookups by result.",
    );
    write_metric(
        &mut out,
        "gaugur_prediction_memo_total",
        "result=\"hit\"",
        s.cache_hits,
    );
    write_metric(
        &mut out,
        "gaugur_prediction_memo_total",
        "result=\"miss\"",
        s.cache_misses,
    );
    write_header(
        &mut out,
        "gaugur_score_cache_total",
        "counter",
        "Per-server score-cache lookups by result.",
    );
    write_metric(
        &mut out,
        "gaugur_score_cache_total",
        "result=\"hit\"",
        s.score_hits,
    );
    write_metric(
        &mut out,
        "gaugur_score_cache_total",
        "result=\"miss\"",
        s.score_misses,
    );
    write_header(
        &mut out,
        "gaugur_feedback_reports_total",
        "counter",
        "Outcome reports by disposition (fresh+stale are buffered).",
    );
    write_metric(
        &mut out,
        "gaugur_feedback_reports_total",
        "result=\"fresh\"",
        s.feedback_accepted.saturating_sub(s.feedback_stale),
    );
    write_metric(
        &mut out,
        "gaugur_feedback_reports_total",
        "result=\"stale\"",
        s.feedback_stale,
    );
    write_metric(
        &mut out,
        "gaugur_feedback_reports_total",
        "result=\"dropped\"",
        s.feedback_dropped,
    );
    write_header(
        &mut out,
        "gaugur_retrains_total",
        "counter",
        "Background retrains by outcome.",
    );
    write_metric(
        &mut out,
        "gaugur_retrains_total",
        "result=\"ok\"",
        s.retrains_ok,
    );
    write_metric(
        &mut out,
        "gaugur_retrains_total",
        "result=\"failed\"",
        s.retrains_failed,
    );

    let gauges: [(&str, &str, f64); 5] = [
        (
            "gaugur_feedback_buffered",
            "Outcome records buffered for the next retrain.",
            s.feedback_buffered as f64,
        ),
        (
            "gaugur_feedback_pairs",
            "Distinct colocation pairs with outcome aggregates.",
            s.feedback_pairs as f64,
        ),
        (
            "gaugur_drift_score",
            "Current overall Page-Hinkley drift score.",
            s.drift_score,
        ),
        (
            "gaugur_drift_windowed_mae",
            "Mean absolute relative FPS error over the sliding window.",
            s.windowed_mae,
        ),
        (
            "gaugur_last_retrain_ms",
            "Duration of the most recent successful retrain.",
            s.last_retrain_ms as f64,
        ),
    ];
    for (name, help, v) in gauges {
        write_header(&mut out, name, "gauge", help);
        write_metric(&mut out, name, "", v);
    }

    write_header(
        &mut out,
        "gaugur_placement_shards",
        "gauge",
        "Placement shards the fleet is partitioned into.",
    );
    write_metric(&mut out, "gaugur_placement_shards", "", s.shards);
    write_header(
        &mut out,
        "gaugur_shard_active_sessions",
        "gauge",
        "Sessions currently placed, per placement shard.",
    );
    for (shard, active) in s.shard_active_sessions.iter().enumerate() {
        write_metric(
            &mut out,
            "gaugur_shard_active_sessions",
            &format!("shard=\"{shard}\""),
            active,
        );
    }

    write_header(
        &mut out,
        "gaugur_requests_total",
        "counter",
        "Handled requests by kind and outcome.",
    );
    for (kind, rs) in &s.per_request {
        write_metric(
            &mut out,
            "gaugur_requests_total",
            &format!("kind=\"{kind}\",outcome=\"ok\""),
            rs.ok,
        );
        write_metric(
            &mut out,
            "gaugur_requests_total",
            &format!("kind=\"{kind}\",outcome=\"error\""),
            rs.errors,
        );
    }
    write_header(
        &mut out,
        "gaugur_request_latency_us",
        "histogram",
        "Whole-request handler latency by kind (microseconds).",
    );
    for (kind, rs) in &s.per_request {
        write_histogram(
            &mut out,
            "gaugur_request_latency_us",
            &format!("kind=\"{kind}\""),
            &rs.latency_us,
            rs.sum_us,
            rs.total(),
        );
    }
    write_header(
        &mut out,
        "gaugur_stage_duration_us",
        "histogram",
        "Per-stage request pipeline durations (microseconds).",
    );
    for (stage, st) in &s.per_stage {
        write_histogram(
            &mut out,
            "gaugur_stage_duration_us",
            &format!("stage=\"{stage}\""),
            &st.buckets,
            st.total_us,
            st.count,
        );
    }

    if let Some(slo) = &s.slo {
        render_slo(&mut out, slo);
    }
    out
}

/// Human label for a rolling-window length (10 → "10s", 60 → "1m",
/// 300 → "5m").
fn window_label(secs: u64) -> String {
    if secs >= 60 && secs.is_multiple_of(60) {
        format!("{}m", secs / 60)
    } else {
        format!("{secs}s")
    }
}

/// Append the `gaugur_slo_*` gauges and windowed `gaugur_window_*` series
/// for an evaluated [`crate::SloReport`].
fn render_slo(out: &mut String, slo: &crate::slo::SloReport) {
    write_header(
        out,
        "gaugur_slo_state",
        "gauge",
        "Alert severity per objective (0 = ok, 1 = warn, 2 = critical).",
    );
    for o in &slo.objectives {
        write_metric(
            out,
            "gaugur_slo_state",
            &format!("objective=\"{}\"", o.name),
            o.state.as_u8(),
        );
    }
    write_metric(
        out,
        "gaugur_slo_state",
        "objective=\"fleet\"",
        slo.state.as_u8(),
    );
    write_header(
        out,
        "gaugur_slo_burn_rate",
        "gauge",
        "Error-budget burn rate per objective and evaluation window.",
    );
    write_header(
        out,
        "gaugur_slo_objective_value",
        "gauge",
        "Raw objective value (ratio, or p99 µs) per evaluation window.",
    );
    for o in &slo.objectives {
        for (window, burn, value) in [
            ("10s", o.fast_burn, o.fast_value),
            ("5m", o.slow_burn, o.slow_value),
        ] {
            write_metric(
                out,
                "gaugur_slo_burn_rate",
                &format!("objective=\"{}\",window=\"{window}\"", o.name),
                burn,
            );
            write_metric(
                out,
                "gaugur_slo_objective_value",
                &format!("objective=\"{}\",window=\"{window}\"", o.name),
                value,
            );
        }
    }
    write_header(
        out,
        "gaugur_slo_target",
        "gauge",
        "Error budget / target the burn rates are measured against.",
    );
    for o in &slo.objectives {
        write_metric(
            out,
            "gaugur_slo_target",
            &format!("objective=\"{}\"", o.name),
            o.target,
        );
    }
    write_header(
        out,
        "gaugur_slo_transitions_total",
        "counter",
        "Alert state transitions since startup.",
    );
    write_metric(out, "gaugur_slo_transitions_total", "", slo.transitions);

    type WindowGauge = fn(&crate::slo::WindowView) -> f64;
    let windowed: [(&str, &str, WindowGauge); 7] = [
        (
            "gaugur_window_request_rate",
            "Handled requests per second over the rolling window.",
            |w| w.request_rate(),
        ),
        (
            "gaugur_window_error_rate",
            "Error responses per second over the rolling window.",
            |w| w.error_rate(),
        ),
        (
            "gaugur_window_place_p99_us",
            "p99 place service time over the rolling window (µs).",
            |w| w.place_p99_us() as f64,
        ),
        (
            "gaugur_window_qos_reject_ratio",
            "Fraction of placement attempts rejected at the QoS floor.",
            |w| w.qos_reject_ratio(),
        ),
        (
            "gaugur_window_outcome_below_floor_ratio",
            "Fraction of reported outcomes below the QoS floor.",
            |w| w.outcome_below_floor_ratio(),
        ),
        (
            "gaugur_window_mae",
            "Mean absolute relative FPS error over the rolling window.",
            |w| w.windowed_mae(),
        ),
        (
            "gaugur_window_active_seconds",
            "Seconds inside the rolling window that recorded telemetry.",
            |w| w.active_secs as f64,
        ),
    ];
    for (name, help, f) in windowed {
        write_header(out, name, "gauge", help);
        for w in &slo.windows {
            write_metric(
                out,
                name,
                &format!("window=\"{}\"", window_label(w.window_secs)),
                f(w),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{RequestStats, LATENCY_BUCKETS_US};

    fn trace_with(decode: u64, predict: u64, place: u64, encode: u64, write: u64) -> RequestTrace {
        let mut t = RequestTrace::new();
        t.add(Stage::Decode, decode);
        t.add(Stage::Predict, predict);
        t.add(Stage::Place, place);
        t.add(Stage::Encode, encode);
        t.add(Stage::WriteReply, write);
        t
    }

    #[test]
    fn request_total_excludes_queue_wait() {
        let mut t = trace_with(1, 2, 3, 4, 5);
        t.add(Stage::QueueWait, 1_000);
        assert_eq!(t.total_us(), 15);
        assert_eq!(t.get(Stage::QueueWait), 1_000);
        // Admit-lock wait is a request stage: it counts toward the total.
        t.add(Stage::PlaceAdmitWait, 6);
        assert_eq!(t.total_us(), 21);
    }

    #[test]
    fn admit_wait_is_a_first_class_request_stage() {
        let c = TraceCollector::new(1, 4);
        let mut t = trace_with(1, 2, 3, 0, 0);
        t.add(Stage::PlaceAdmitWait, 9);
        c.record_request(0, "place", &t, SlowMeta::default());
        // A request that never touched a shard lock still contributes a
        // zero-duration sample, so the stage-sum invariant holds.
        c.record_request(0, "stats", &trace_with(1, 0, 0, 1, 1), SlowMeta::default());
        let snap = c.stage_snapshot();
        assert_eq!(snap["place_admit_wait"].count, 2);
        assert_eq!(snap["place_admit_wait"].total_us, 9);
        assert_eq!(snap["place_admit_wait"].max_us, 9);
    }

    #[test]
    fn every_request_stage_gets_one_sample_per_request() {
        let c = TraceCollector::new(3, 4);
        // A request that never predicts or places still contributes
        // zero-duration samples to those stages.
        c.record_request(0, "depart", &trace_with(7, 0, 0, 2, 3), SlowMeta::default());
        c.record_request(
            1,
            "place",
            &trace_with(5, 40, 60, 3, 4),
            SlowMeta::default(),
        );
        c.record_request(
            2,
            "place",
            &trace_with(6, 30, 50, 2, 9),
            SlowMeta::default(),
        );
        let snap = c.stage_snapshot();
        for stage in REQUEST_STAGES {
            assert_eq!(snap[stage.name()].count, 3, "{}", stage.name());
            let bucket_sum: u64 = snap[stage.name()].buckets.iter().sum();
            assert_eq!(bucket_sum, 3);
        }
        assert_eq!(snap["predict"].total_us, 70);
        assert_eq!(snap["place"].max_us, 60);
        assert_eq!(snap["queue_wait"].count, 0);
        // Shards merge: workers 0..3 each recorded one request.
        assert_eq!(snap["decode"].total_us, 18);
    }

    #[test]
    fn queue_wait_is_per_connection() {
        let c = TraceCollector::new(2, 4);
        c.record_stage(0, Stage::QueueWait, 11);
        c.record_stage(1, Stage::QueueWait, 3);
        let snap = c.stage_snapshot();
        assert_eq!(snap["queue_wait"].count, 2);
        assert_eq!(snap["queue_wait"].total_us, 14);
        assert_eq!(snap["queue_wait"].max_us, 11);
    }

    #[test]
    fn slow_ring_keeps_the_worst_n_in_order() {
        let c = TraceCollector::new(1, 3);
        for (i, total) in [10u64, 50, 20, 90, 5, 50].into_iter().enumerate() {
            let kind = if i % 2 == 0 { "place" } else { "predict" };
            c.record_request(0, kind, &trace_with(total, 0, 0, 0, 0), SlowMeta::default());
        }
        let slow = c.slow_snapshot();
        assert_eq!(slow.len(), 3);
        // Worst three of [10, 50, 20, 90, 5, 50] are 90, 50, 50; the seq-1
        // entry was admitted first and keeps its slot on the tie.
        assert_eq!(
            slow.iter().map(|e| e.total_us).collect::<Vec<_>>(),
            vec![90, 50, 50]
        );
        assert_eq!(slow[0].seq, 3);
        assert_eq!(slow[1].seq, 1); // earlier arrival sorts first on ties
        assert_eq!(slow[0].kind, "predict");
        assert_eq!(slow[0].stage_us[Stage::Decode as usize], 90);
    }

    #[test]
    fn zero_capacity_slow_ring_records_nothing() {
        let c = TraceCollector::new(1, 0);
        c.record_request(0, "place", &trace_with(99, 0, 0, 0, 0), SlowMeta::default());
        assert!(c.slow_snapshot().is_empty());
        // Stage histograms still work.
        assert_eq!(c.stage_snapshot()["decode"].count, 1);
    }

    // Satellite: percentile bucket-boundary behavior for stage histograms,
    // mirroring the per-op cases in `stats::tests`.
    #[test]
    fn stage_percentile_bucket_boundaries() {
        let c = TraceCollector::new(1, 0);
        // 10 samples at 5µs (exactly on bucket 0's upper bound) and 10 at
        // 6µs (bucket 1).
        for _ in 0..10 {
            c.record_request(0, "place", &trace_with(5, 0, 0, 0, 0), SlowMeta::default());
        }
        for _ in 0..10 {
            c.record_request(0, "place", &trace_with(6, 0, 0, 0, 0), SlowMeta::default());
        }
        let st = c.stage_snapshot()["decode"].clone();
        // p=50 → rank 10, the last sample of bucket 0: boundary stays in the
        // lower bucket.
        assert_eq!(st.percentile_us(50.0), 5);
        // One sample past the edge crosses into bucket 1's bound.
        assert_eq!(st.percentile_us(50.1), 10);
        // p=0 clamps to rank 1 (the fastest bucket with samples).
        assert_eq!(st.percentile_us(0.0), 5);
        // p=100 is the last bucket with samples.
        assert_eq!(st.percentile_us(100.0), 10);
        // Empty stage → 0.
        assert_eq!(StageStats::default().percentile_us(50.0), 0);

        // Overflow bucket reports the observed max, not a bucket bound.
        let c = TraceCollector::new(1, 0);
        c.record_request(
            0,
            "place",
            &trace_with(2_000_000, 0, 0, 0, 0),
            SlowMeta::default(),
        );
        let st = c.stage_snapshot()["decode"].clone();
        assert_eq!(st.max_us, 2_000_000);
        assert_eq!(st.percentile_us(50.0), 2_000_000);
        assert_eq!(st.percentile_us(100.0), 2_000_000);
        assert_eq!(
            st.buckets[crate::stats::N_BUCKETS - 1],
            1,
            "lands in the overflow bucket"
        );
    }

    #[test]
    fn stage_and_op_percentiles_share_semantics() {
        // The shared helper keeps RequestStats and StageStats in lockstep on
        // every boundary case.
        let mut buckets = vec![0u64; N_BUCKETS];
        buckets[0] = 4;
        buckets[3] = 4; // ≤50µs bucket
        let rs = RequestStats {
            ok: 8,
            errors: 0,
            latency_us: buckets.clone(),
            max_us: 48,
            sum_us: 0,
        };
        let st = StageStats {
            count: 8,
            total_us: 0,
            max_us: 48,
            buckets,
        };
        for p in [0.0, 12.5, 50.0, 50.1, 99.9, 100.0] {
            assert_eq!(rs.percentile_us(p), st.percentile_us(p), "p={p}");
        }
    }

    fn populated_snapshot() -> StatsSnapshot {
        let stats = crate::stats::AtomicStats::new();
        stats.note_connection();
        stats.note_connection();
        stats.record("place", true, 40);
        stats.record("depart", true, 7);
        stats.record("stats", false, 3);
        let c = TraceCollector::new(2, 4);
        c.record_stage(0, Stage::QueueWait, 2);
        c.record_stage(1, Stage::QueueWait, 4);
        c.record_request(
            0,
            "place",
            &trace_with(5, 20, 10, 2, 3),
            SlowMeta::default(),
        );
        c.record_request(1, "depart", &trace_with(4, 0, 0, 1, 2), SlowMeta::default());
        c.record_request(0, "stats", &trace_with(2, 0, 0, 1, 0), SlowMeta::default());
        let mut snap = stats.snapshot(3, 1, 8);
        snap.per_stage = c.stage_snapshot();
        snap.slow_requests = c.slow_snapshot();
        snap
    }

    #[test]
    fn stage_accounting_reconciles_on_a_quiesced_snapshot() {
        let snap = populated_snapshot();
        verify_stage_accounting(&snap).expect("accounting holds");
    }

    #[test]
    fn stage_accounting_catches_missing_samples() {
        let mut snap = populated_snapshot();
        snap.per_stage.get_mut("encode").unwrap().count -= 1;
        let err = verify_stage_accounting(&snap).unwrap_err();
        assert!(err.contains("encode"), "{err}");

        let mut snap = populated_snapshot();
        snap.per_stage.get_mut("queue_wait").unwrap().count += 1;
        let err = verify_stage_accounting(&snap).unwrap_err();
        assert!(err.contains("queue_wait"), "{err}");
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let snap = populated_snapshot();
        let text = render_prometheus(&snap);
        let mut seen_series = 0usize;
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "{line}"
                );
                continue;
            }
            // Every sample line is `name[{labels}] value` with a finite value.
            let (series, value) = line.rsplit_once(' ').expect(line);
            assert!(!series.is_empty(), "{line}");
            let name = series.split('{').next().unwrap();
            assert!(
                name.starts_with("gaugur_")
                    && name
                        .chars()
                        .all(|ch| ch.is_ascii_alphanumeric() || ch == '_'),
                "{line}"
            );
            assert!(value.parse::<f64>().expect(line).is_finite(), "{line}");
            seen_series += 1;
        }
        assert!(seen_series > 50, "exposition too small: {seen_series}");

        // Spot checks: the series the CI smoke job validates.
        assert!(text.contains("gaugur_requests_total{kind=\"place\",outcome=\"ok\"} 1"));
        assert!(text.contains("gaugur_stage_duration_us_count{stage=\"decode\"} 3"));
        assert!(text.contains("gaugur_stage_duration_us_count{stage=\"queue_wait\"} 2"));
        assert!(text.contains("gaugur_retrains_total{result=\"ok\"} 0"));
        assert!(text.contains("gaugur_score_cache_total{result=\"hit\"} 0"));
        assert!(text.contains("gaugur_drift_windowed_mae"));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let snap = populated_snapshot();
        let text = render_prometheus(&snap);
        let mut last: Option<u64> = None;
        let mut inf: Option<u64> = None;
        for line in text.lines() {
            if let Some(rest) =
                line.strip_prefix("gaugur_stage_duration_us_bucket{stage=\"decode\",le=\"")
            {
                let (le, v) = rest.split_once("\"} ").unwrap();
                let v: u64 = v.parse().unwrap();
                if let Some(prev) = last {
                    assert!(v >= prev, "bucket counts must be cumulative: {line}");
                }
                last = Some(v);
                if le == "+Inf" {
                    inf = Some(v);
                }
            }
        }
        assert_eq!(inf, Some(3), "+Inf bucket equals the sample count");
        assert_eq!(LATENCY_BUCKETS_US.len() + 1, N_BUCKETS);
    }

    #[test]
    fn slow_requests_survive_the_snapshot_roundtrip() {
        let snap = populated_snapshot();
        assert_eq!(snap.slow_requests.len(), 3);
        assert_eq!(snap.slow_requests[0].total_us, 40);
        let json = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn slow_meta_propagates_to_the_snapshot() {
        let c = TraceCollector::new(1, 4);
        let meta = SlowMeta {
            session: Some(41),
            shard: Some(2),
            model_version: Some(3),
        };
        c.record_request(0, "place", &trace_with(9, 0, 0, 0, 0), meta);
        c.record_request(0, "stats", &trace_with(1, 0, 0, 0, 0), SlowMeta::default());
        let slow = c.slow_snapshot();
        assert_eq!(slow[0].session, Some(41));
        assert_eq!(slow[0].shard, Some(2));
        assert_eq!(slow[0].model_version, Some(3));
        assert_eq!(slow[1].session, None);
        assert_eq!(slow[1].shard, None);
        assert_eq!(slow[1].model_version, None);
    }

    #[test]
    fn slow_request_decodes_pre_meta_json() {
        // Snapshots serialized before the identity fields existed must still
        // deserialize (serde defaults).
        let old = r#"{"seq":4,"kind":"place","total_us":12,"stage_us":[0,12,0,0,0,0,0]}"#;
        let back: SlowRequest = serde_json::from_str(old).unwrap();
        assert_eq!(back.session, None);
        assert_eq!(back.shard, None);
        assert_eq!(back.model_version, None);
    }

    #[test]
    fn prometheus_exposes_build_info() {
        let text = render_prometheus(&populated_snapshot());
        let line = text
            .lines()
            .find(|l| l.starts_with("gaugur_build_info{"))
            .expect("build_info series present");
        assert!(line.contains(&format!("version=\"{}\"", env!("CARGO_PKG_VERSION"))));
        assert!(line.contains("profile=\""));
        assert!(line.ends_with(" 1"));
    }

    #[test]
    fn prometheus_slo_section_renders_when_evaluated() {
        use crate::slo::{ManualClock, SloConfig, SloEngine, WindowedCollector};
        use std::sync::Arc;

        let mut snap = populated_snapshot();
        // Without an SLO report the section is absent entirely.
        assert!(!render_prometheus(&snap).contains("gaugur_slo_state"));

        let clock = Arc::new(ManualClock::new(0));
        let w = WindowedCollector::new(2, 2, clock.clone());
        w.record_place_attempt(0, 1, Some(0));
        w.record_place_attempt(1, 1, None); // QoS-rejected
        w.record_outcome(0, 1, true, 0.5);
        let engine = SloEngine::new(SloConfig::default());
        let (report, _) = engine.evaluate(&w.views(), w.per_game());
        snap.slo = Some(report);

        let text = render_prometheus(&snap);
        assert!(text.contains("gaugur_slo_state{objective=\"fleet\"}"));
        assert!(text.contains("gaugur_slo_state{objective=\"admit_qos\"}"));
        assert!(text.contains("gaugur_slo_burn_rate{objective=\"observed_fps\",window=\"10s\"}"));
        assert!(text.contains("gaugur_slo_burn_rate{objective=\"place_latency\",window=\"5m\"}"));
        assert!(
            text.contains("gaugur_slo_objective_value{objective=\"admit_qos\",window=\"10s\"} 0.5")
        );
        assert!(text.contains("gaugur_slo_transitions_total "));
        assert!(text.contains("gaugur_window_request_rate{window=\"10s\"}"));
        assert!(text.contains("gaugur_window_qos_reject_ratio{window=\"1m\"} 0.5"));
        assert!(text.contains("gaugur_window_outcome_below_floor_ratio{window=\"5m\"} 1"));
        assert!(text.contains("gaugur_window_active_seconds{window=\"5m\"} 1"));
        // The well-formedness contract holds with the section present.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect(line);
            assert!(value.parse::<f64>().expect(line).is_finite(), "{line}");
        }
    }

    #[test]
    fn window_labels_are_humanized() {
        assert_eq!(window_label(10), "10s");
        assert_eq!(window_label(60), "1m");
        assert_eq!(window_label(300), "5m");
        assert_eq!(window_label(45), "45s");
    }
}
