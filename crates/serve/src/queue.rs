//! Bounded MPMC work queue for the daemon: the acceptor pushes accepted
//! connections, the worker pool pops them. Rejecting at the bound (instead
//! of queueing without limit) is what turns overload into fast `Overloaded`
//! replies rather than unbounded latency.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Why a push was refused; the item is handed back either way so the caller
/// can still answer the connection. The two cases demand different replies:
/// a full queue is transient (`Overloaded` + retry hint), a closed queue is
/// terminal (`ShuttingDown` — no retry will ever succeed).
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; shed load and invite a retry.
    Full(T),
    /// The queue is closed (the daemon is draining).
    Closed(T),
}

impl<T> PushError<T> {
    /// The rejected item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

/// A bounded queue with blocking pop and non-blocking bounded push.
pub struct WorkQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> WorkQueue<T> {
    /// Queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> WorkQueue<T> {
        WorkQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue, or give the item back when the queue is full or closed —
    /// the error says which, so the caller can shed with the right reply.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Block until an item is available or the queue is closed *and* empty
    /// (so closing drains: queued items are still handed out).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            self.available.wait(&mut inner);
        }
    }

    /// Close the queue: pushes start failing, pops drain what remains and
    /// then return `None`.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.available.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_respects_the_bound() {
        let q = WorkQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok());
    }

    #[test]
    fn close_drains_then_stops() {
        let q = WorkQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        // A closed queue is distinguishable from a full one: the daemon
        // answers `ShuttingDown` here, `Overloaded` there.
        assert_eq!(q.push(3), Err(PushError::Closed(3)));
        assert_eq!(q.push(3).unwrap_err().into_inner(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_beats_closed_only_when_open() {
        // Closed wins even when the queue is also at capacity: there is no
        // point inviting a retry that can never succeed.
        let q = WorkQueue::new(1);
        q.push(1).unwrap();
        assert_eq!(q.push(2), Err(PushError::Full(2)));
        q.close();
        assert_eq!(q.push(2), Err(PushError::Closed(2)));
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_close() {
        let q = Arc::new(WorkQueue::new(4));
        let q2 = q.clone();
        let popper = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = q2.pop() {
                got.push(v);
            }
            got
        });
        for i in 0..10 {
            while q.push(i).is_err() {
                std::thread::yield_now();
            }
        }
        // Give the popper time to drain, then close to end it.
        while !q.is_empty() {
            std::thread::yield_now();
        }
        q.close();
        let got = popper.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
