//! Bounded MPMC work queue for the daemon: the acceptor pushes accepted
//! connections, the worker pool pops them. Rejecting at the bound (instead
//! of queueing without limit) is what turns overload into fast `Overloaded`
//! replies rather than unbounded latency.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded queue with blocking pop and non-blocking bounded push.
pub struct WorkQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> WorkQueue<T> {
    /// Queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> WorkQueue<T> {
        WorkQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue, or give the item back when the queue is full or closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock();
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Block until an item is available or the queue is closed *and* empty
    /// (so closing drains: queued items are still handed out).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            self.available.wait(&mut inner);
        }
    }

    /// Close the queue: pushes start failing, pops drain what remains and
    /// then return `None`.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.available.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_respects_the_bound() {
        let q = WorkQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok());
    }

    #[test]
    fn close_drains_then_stops() {
        let q = WorkQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_close() {
        let q = Arc::new(WorkQueue::new(4));
        let q2 = q.clone();
        let popper = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = q2.pop() {
                got.push(v);
            }
            got
        });
        for i in 0..10 {
            while q.push(i).is_err() {
                std::thread::yield_now();
            }
        }
        // Give the popper time to drain, then close to end it.
        while !q.is_empty() {
            std::thread::yield_now();
        }
        q.close();
        let got = popper.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
